//! Criterion bench: pipelined NCL replication (`record_nowait` +
//! `wait_durable`) versus the synchronous per-record baseline.
//!
//! Two measurements:
//!
//! 1. **Window sweep** — 128 B records on the calibrated testbed with the
//!    threaded NIC (`inline_nic = false`, so work requests have a real
//!    in-flight period the pipeline can overlap) and the fabric propagation
//!    term scaled so the modelled bandwidth-delay product is resolvable
//!    above host scheduler jitter (see `pipeline_lib`). Depth 1 is the
//!    paper's baseline protocol (synchronous `record`); deeper windows post
//!    batches through `record_nowait` and fence once with `fsync`. The
//!    bench asserts the ≥2x throughput win at window ≥ 4 the pipelining is
//!    for.
//! 2. **Allocation count** — the record hot path assembles one shared wire
//!    image per record (header + payload in a single `Bytes`), so posting
//!    to any number of peers costs a constant number of heap allocations.
//!    A counting global allocator holds the line against regressions such
//!    as re-introducing per-peer or per-WR copies.
//!
//! Emits `BENCH_ncl_pipeline.json` for CI trend tracking.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use bench::{BenchJson, NCL_STAGES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ncl::NclLib;
use splitfs::{Testbed, TestbedConfig};
use telemetry::Telemetry;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const RECORD_SIZE: usize = 128;
const BATCH: u64 = 64;
const CAPACITY: usize = 32 << 20;

fn pipeline_lib(tb: &Testbed, window: u64, tag: &str, telemetry: Telemetry) -> NclLib {
    let mut config = tb.config().ncl.clone();
    config.telemetry = telemetry;
    // Threaded NIC: work requests spend their modelled latency genuinely in
    // flight, which is what a deeper window overlaps. (The inline NIC
    // executes at post time, where pipelining cannot help by construction.)
    config.inline_nic = false;
    // The calibrated 1.5 µs fabric latency is charged by spinning, so on an
    // oversubscribed host the measured per-record time is dominated by
    // cross-thread scheduler wake-ups, which hit depth 1 and depth 16 alike.
    // Scale the propagation term up (same 25 Gb/s bandwidth, no jitter) so
    // the in-flight period is sleep-based and resolvable above that noise:
    // the sweep then measures the modelled bandwidth-delay overlap — the
    // effect pipelining exists to exploit — rather than scheduler jitter.
    config.rdma = sim::LatencyModel::from_nanos(100_000, 25.0, 0.0);
    config.pipeline_window = window;
    let node = tb.add_app_node(tag);
    NclLib::new(&tb.cluster, node, tag, config, &tb.controller, &tb.registry).unwrap()
}

fn window_sweep(c: &mut Criterion) {
    let tb = Testbed::start(TestbedConfig::calibrated(3));
    let mut group = c.benchmark_group("ncl_pipeline");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(3));
    let data = vec![0xA5u8; RECORD_SIZE];
    for window in [1u64, 2, 4, 8, 16] {
        let lib = pipeline_lib(
            &tb,
            window,
            &format!("bench-pipe-{window}"),
            tb.config().ncl.telemetry.clone(),
        );
        let file = lib.create("wal", CAPACITY).unwrap();
        let mut offset = 0usize;
        group.throughput(Throughput::Elements(BATCH));
        group.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &w| {
            b.iter(|| {
                for _ in 0..BATCH {
                    if offset + RECORD_SIZE > CAPACITY {
                        offset = 0;
                    }
                    if w == 1 {
                        // The paper's baseline: one synchronous record.
                        file.record(offset as u64, &data).unwrap();
                    } else {
                        file.record_nowait(offset as u64, &data).unwrap();
                    }
                    offset += RECORD_SIZE;
                }
                file.fsync().unwrap();
            });
        });
        file.release().unwrap();
    }
    group.finish();

    let per_second = |id: &str| -> f64 {
        c.measurements()
            .iter()
            .find(|m| m.id == format!("ncl_pipeline/{id}"))
            .and_then(|m| m.per_second())
            .expect("measurement present")
    };
    let baseline = per_second("1");
    let deep = per_second("4");
    let speedup = deep / baseline;
    println!("ncl_pipeline: window 4 vs 1 speedup = {speedup:.2}x");
    assert!(
        speedup >= 2.0,
        "pipelining must be >=2x over the synchronous baseline at window 4 \
         (got {speedup:.2}x: {baseline:.0} vs {deep:.0} records/s)"
    );
}

fn allocation_count(c: &mut Criterion) {
    // Zero latencies and the inline NIC: nothing sleeps, so the allocation
    // count per record is stable and dominated by the record path itself.
    let mut config = TestbedConfig::zero(3);
    config.ncl.inline_nic = true;
    let tb = Testbed::start(config);
    let node = tb.add_app_node("bench-pipe-alloc");
    let lib = NclLib::new(
        &tb.cluster,
        node,
        "bench-pipe-alloc",
        tb.config().ncl.clone(),
        &tb.controller,
        &tb.registry,
    )
    .unwrap();
    let file = lib.create("wal", CAPACITY).unwrap();
    let data = vec![0xA5u8; RECORD_SIZE];

    let rounds = 2_000u64;
    let record_all = |start: u64| {
        for i in 0..rounds {
            file.record(((start + i) as usize * RECORD_SIZE) as u64, &data)
                .unwrap();
        }
    };
    record_all(0); // Warm up caches, completion vectors, etc.
    let before = ALLOCS.load(Ordering::Relaxed);
    record_all(rounds);
    let per_record = (ALLOCS.load(Ordering::Relaxed) - before) as f64 / rounds as f64;
    println!("ncl_pipeline: {per_record:.2} heap allocations per 3-peer record");
    // The wire image (Vec + its Arc) plus completion-queue traffic. The old
    // path's separate header/payload `Bytes` cost 2 more per record;
    // anything above this bound means a copy crept back in.
    assert!(
        per_record <= 8.0,
        "record path allocation regression: {per_record:.2} allocs/record"
    );
    file.release().unwrap();
    let _ = c; // Allocation check is an assertion, not a timing measurement.
}

/// One clean window-16 pipelined run against a private telemetry handle,
/// returning the per-stage latency snapshot for the `stage_breakdown` JSON
/// section. The stage/doorbell/wire/ack spans partition the end-to-end
/// interval by construction, so their means must re-add to the e2e mean.
fn collect_stage_breakdown(tb: &Testbed) -> telemetry::TelemetrySnapshot {
    let telemetry = Telemetry::new();
    let lib = pipeline_lib(tb, 16, "bench-pipe-breakdown", telemetry.clone());
    let file = lib.create("wal", CAPACITY).unwrap();
    let data = vec![0xA5u8; RECORD_SIZE];
    let mut offset = 0usize;
    for _ in 0..(BATCH * 8) {
        if offset + RECORD_SIZE > CAPACITY {
            offset = 0;
        }
        file.record_nowait(offset as u64, &data).unwrap();
        offset += RECORD_SIZE;
    }
    file.fsync().unwrap();
    file.release().unwrap();
    let snap = telemetry.snapshot();
    for stage in NCL_STAGES {
        let count = snap.summary(stage).map(|s| s.count).unwrap_or(0);
        assert!(count > 0, "stage histogram {stage} is empty");
    }
    snap
}

fn emit_json(c: &mut Criterion) {
    let tb = Testbed::start(TestbedConfig::calibrated(3));
    let snap = collect_stage_breakdown(&tb);
    let mut json = BenchJson::new("ncl_pipeline");
    for m in c.measurements() {
        json.result(&m.id, m.mean_ns, m.per_second().unwrap_or(0.0));
    }
    json.stage_breakdown(&snap, &NCL_STAGES);
    json.write();
}

criterion_group!(benches, window_sweep, allocation_count, emit_json);
criterion_main!(benches);
