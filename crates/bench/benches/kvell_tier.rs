//! Criterion bench — §6 extension ablation: random writes with and without
//! the NCL absorption tier.
//!
//! A KVell-style no-log store issues random slot writes. Without NCL each
//! write is a synchronous DFS flush (milliseconds); with the NCL tier the
//! write is absorbed in microseconds and reaches the slab later as part of
//! a coalesced bulk pass.

use apps::minikvell::{KvellOptions, MiniKvell};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim::Xoshiro256StarStar;
use splitfs::{Mode, Testbed, TestbedConfig};

fn kvell_tier(c: &mut Criterion) {
    let mut group = c.benchmark_group("kvell_random_writes");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, ncl_tier) in [("dfs_sync", false), ("ncl_tier", true)] {
        let tb = Testbed::start(TestbedConfig::calibrated(3));
        let (fs, _) = tb.mount(Mode::SplitFt, &format!("kvell-{name}"));
        let opts = KvellOptions {
            ncl_tier,
            ..KvellOptions::default()
        };
        let db = MiniKvell::open(fs, "kv/", opts).unwrap();
        let mut rng = Xoshiro256StarStar::new(0x004B_4559_u64);
        group.bench_with_input(BenchmarkId::from_parameter(name), &ncl_tier, |b, _| {
            b.iter(|| {
                let k = rng.next_below(10_000);
                db.put(format!("key{k:08}").as_bytes(), &[0x5Au8; 100])
                    .unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, kvell_tier);
criterion_main!(benches);
