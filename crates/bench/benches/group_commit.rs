//! Criterion bench — group-commit batch size ablation (MiniRocks).
//!
//! The paper's applications batch concurrent updates into one log write
//! (§5). This bench measures the per-entry cost of a WAL commit as the
//! batch grows: larger batches amortise the fixed replication latency.

use apps::minirocks::{MiniRocks, RocksOptions};
use apps::Entry;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use splitfs::{Mode, Testbed, TestbedConfig};

fn group_commit(c: &mut Criterion) {
    let tb = Testbed::start(TestbedConfig::calibrated(3));
    let (fs, _) = tb.mount(Mode::SplitFt, "bench-gc");
    let db = MiniRocks::open(fs, "db/", RocksOptions::default()).unwrap();

    let mut group = c.benchmark_group("group_commit");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(5));
    for batch in [1usize, 8, 64] {
        group.throughput(Throughput::Elements(batch as u64));
        group.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            let mut n = 0u64;
            b.iter(|| {
                let entries: Vec<Entry> = (0..batch)
                    .map(|i| Entry::Put {
                        key: format!("key{:012}", n + i as u64).into_bytes(),
                        value: vec![0x44u8; 100],
                    })
                    .collect();
                n += batch as u64;
                db.write_batch(entries).unwrap();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, group_commit);
criterion_main!(benches);
