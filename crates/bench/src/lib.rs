//! Shared harness support for the benchmark binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md's experiment index). This library provides
//! the common plumbing: the calibrated testbed, application factories with
//! evaluation-scale options, table formatting, and the scale knob.
//!
//! ## Scale
//!
//! The paper's runs use 100 M records and 120 s per data point on a real
//! cluster. The simulation reproduces *shapes*, not absolute durations, so
//! the defaults here are scaled down (documented per binary). Set
//! `SPLITFT_QUICK=1` to shrink runs further for smoke-testing, or
//! `SPLITFT_SECS=<n>` to lengthen the measured window.

use std::sync::Arc;
use std::time::Duration;

use apps::{KvApp, MiniRedis, MiniRocks, MiniSql, RedisOptions, RocksOptions, SqlOptions};
use splitfs::{Mode, SplitFs, Testbed, TestbedConfig};

/// Which application to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// MiniRocks (RocksDB stand-in).
    Rocks,
    /// MiniRedis (Redis stand-in).
    Redis,
    /// MiniSql (SQLite stand-in).
    Sql,
}

impl AppKind {
    /// All three, in the paper's figure order.
    pub fn all() -> [AppKind; 3] {
        [AppKind::Rocks, AppKind::Redis, AppKind::Sql]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Rocks => "rocksdb",
            AppKind::Redis => "redis",
            AppKind::Sql => "sqlite",
        }
    }

    /// Client thread count the paper uses per app (20 for RocksDB/Redis,
    /// 1 for SQLite, §5).
    pub fn paper_threads(self) -> usize {
        match self {
            AppKind::Rocks | AppKind::Redis => 20,
            AppKind::Sql => 1,
        }
    }
}

/// The three paper configurations in figure order.
pub fn paper_modes() -> [(&'static str, Mode); 3] {
    [
        ("strong-app DFT", Mode::StrongDft),
        ("weak-app DFT", Mode::WeakDft),
        ("SplitFT", Mode::SplitFt),
    ]
}

/// True when `SPLITFT_QUICK=1` (smoke-test scale).
pub fn quick() -> bool {
    std::env::var("SPLITFT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Measured window per data point (default 2 s; 0.5 s in quick mode;
/// `SPLITFT_SECS` overrides).
pub fn run_secs() -> Duration {
    if let Ok(v) = std::env::var("SPLITFT_SECS") {
        if let Ok(s) = v.parse::<f64>() {
            return Duration::from_secs_f64(s);
        }
    }
    if quick() {
        Duration::from_millis(500)
    } else {
        Duration::from_secs(2)
    }
}

/// Records loaded before YCSB runs (paper: 100 M / 10 M; scaled).
pub fn record_count(kind: AppKind) -> u64 {
    let base = match kind {
        AppKind::Rocks | AppKind::Redis => 20_000,
        AppKind::Sql => 4_000,
    };
    if quick() {
        base / 10
    } else {
        base
    }
}

/// Starts the calibrated testbed used by all application benchmarks.
pub fn calibrated_testbed() -> Testbed {
    Testbed::start(TestbedConfig::calibrated(5))
}

/// Evaluation-scale options per app: sized so that flushes/compactions/
/// checkpoints occur during a run without dominating it.
pub fn open_app(fs: SplitFs, kind: AppKind, id: &str) -> Arc<dyn KvApp> {
    match kind {
        AppKind::Rocks => {
            let opts = RocksOptions {
                memtable_bytes: 8 << 20,
                wal_capacity: 24 << 20,
                ..RocksOptions::default()
            };
            Arc::new(MiniRocks::open(fs, &format!("{id}/"), opts).expect("open minirocks"))
        }
        AppKind::Redis => {
            let opts = RedisOptions {
                aof_capacity: 24 << 20,
                rewrite_threshold: 12 << 20,
                ..RedisOptions::default()
            };
            Arc::new(MiniRedis::open(fs, &format!("{id}/"), opts).expect("open miniredis"))
        }
        AppKind::Sql => {
            let opts = SqlOptions {
                npages: 2048,
                wal_capacity: 8 << 20,
                checkpoint_threshold: 4 << 20,
                ..SqlOptions::default()
            };
            Arc::new(MiniSql::open(fs, &format!("{id}/"), opts).expect("open minisql"))
        }
    }
}

/// Mounts `mode` for `(kind, tag)` and opens the app on it.
pub fn mount_app(tb: &Testbed, mode: Mode, kind: AppKind, tag: &str) -> Arc<dyn KvApp> {
    let app_id = format!("{}-{tag}", kind.name());
    let (fs, _) = tb.mount(mode, &app_id);
    open_app(fs, kind, &app_id)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned row of columns.
pub fn row(cols: &[String]) {
    let line = cols
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("{line}");
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats bytes in a human unit.
pub fn human_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.1}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

/// Percentile of a sorted `u64` slice.
pub fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_positive() {
        for kind in AppKind::all() {
            assert!(record_count(kind) > 0);
            assert!(!kind.name().is_empty());
            assert!(kind.paper_threads() >= 1);
        }
    }

    #[test]
    fn percentile_of_sorted_slice() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 50.0), 5);
        assert_eq!(percentile(&v, 100.0), 10);
        assert_eq!(percentile(&v, 1.0), 1);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512.0), "512B");
        assert_eq!(human_bytes(2048.0), "2.0KB");
        assert_eq!(human_bytes(3.5e6), "3.5MB");
        assert_eq!(human_bytes(2e9), "2.0GB");
    }
}
