//! Shared harness support for the benchmark binaries.
//!
//! Every table and figure of the paper's evaluation has a dedicated binary
//! in `src/bin/` (see DESIGN.md's experiment index). This library provides
//! the common plumbing: the calibrated testbed, application factories with
//! evaluation-scale options, table formatting, and the scale knob.
//!
//! ## Scale
//!
//! The paper's runs use 100 M records and 120 s per data point on a real
//! cluster. The simulation reproduces *shapes*, not absolute durations, so
//! the defaults here are scaled down (documented per binary). Set
//! `SPLITFT_QUICK=1` to shrink runs further for smoke-testing, or
//! `SPLITFT_SECS=<n>` to lengthen the measured window.

use std::sync::Arc;
use std::time::Duration;

use apps::{KvApp, MiniRedis, MiniRocks, MiniSql, RedisOptions, RocksOptions, SqlOptions};
use splitfs::{Mode, SplitFs, Testbed, TestbedConfig};

/// Which application to drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppKind {
    /// MiniRocks (RocksDB stand-in).
    Rocks,
    /// MiniRedis (Redis stand-in).
    Redis,
    /// MiniSql (SQLite stand-in).
    Sql,
}

impl AppKind {
    /// All three, in the paper's figure order.
    pub fn all() -> [AppKind; 3] {
        [AppKind::Rocks, AppKind::Redis, AppKind::Sql]
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Rocks => "rocksdb",
            AppKind::Redis => "redis",
            AppKind::Sql => "sqlite",
        }
    }

    /// Client thread count the paper uses per app (20 for RocksDB/Redis,
    /// 1 for SQLite, §5).
    pub fn paper_threads(self) -> usize {
        match self {
            AppKind::Rocks | AppKind::Redis => 20,
            AppKind::Sql => 1,
        }
    }
}

/// The three paper configurations in figure order.
pub fn paper_modes() -> [(&'static str, Mode); 3] {
    [
        ("strong-app DFT", Mode::StrongDft),
        ("weak-app DFT", Mode::WeakDft),
        ("SplitFT", Mode::SplitFt),
    ]
}

/// True when `SPLITFT_QUICK=1` (smoke-test scale).
pub fn quick() -> bool {
    std::env::var("SPLITFT_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}

/// Measured window per data point (default 2 s; 0.5 s in quick mode;
/// `SPLITFT_SECS` overrides).
pub fn run_secs() -> Duration {
    if let Ok(v) = std::env::var("SPLITFT_SECS") {
        if let Ok(s) = v.parse::<f64>() {
            return Duration::from_secs_f64(s);
        }
    }
    if quick() {
        Duration::from_millis(500)
    } else {
        Duration::from_secs(2)
    }
}

/// Records loaded before YCSB runs (paper: 100 M / 10 M; scaled).
pub fn record_count(kind: AppKind) -> u64 {
    let base = match kind {
        AppKind::Rocks | AppKind::Redis => 20_000,
        AppKind::Sql => 4_000,
    };
    if quick() {
        base / 10
    } else {
        base
    }
}

/// Starts the calibrated testbed used by all application benchmarks.
pub fn calibrated_testbed() -> Testbed {
    Testbed::start(TestbedConfig::calibrated(5))
}

/// Evaluation-scale options per app: sized so that flushes/compactions/
/// checkpoints occur during a run without dominating it.
pub fn open_app(fs: SplitFs, kind: AppKind, id: &str) -> Arc<dyn KvApp> {
    match kind {
        AppKind::Rocks => {
            let opts = RocksOptions {
                memtable_bytes: 8 << 20,
                wal_capacity: 24 << 20,
                ..RocksOptions::default()
            };
            Arc::new(MiniRocks::open(fs, &format!("{id}/"), opts).expect("open minirocks"))
        }
        AppKind::Redis => {
            let opts = RedisOptions {
                aof_capacity: 24 << 20,
                rewrite_threshold: 12 << 20,
                ..RedisOptions::default()
            };
            Arc::new(MiniRedis::open(fs, &format!("{id}/"), opts).expect("open miniredis"))
        }
        AppKind::Sql => {
            let opts = SqlOptions {
                npages: 2048,
                wal_capacity: 8 << 20,
                checkpoint_threshold: 4 << 20,
                ..SqlOptions::default()
            };
            Arc::new(MiniSql::open(fs, &format!("{id}/"), opts).expect("open minisql"))
        }
    }
}

/// Mounts `mode` for `(kind, tag)` and opens the app on it.
pub fn mount_app(tb: &Testbed, mode: Mode, kind: AppKind, tag: &str) -> Arc<dyn KvApp> {
    let app_id = format!("{}-{tag}", kind.name());
    let (fs, _) = tb.mount(mode, &app_id);
    open_app(fs, kind, &app_id)
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints an aligned row of columns.
pub fn row(cols: &[String]) {
    let line = cols
        .iter()
        .map(|c| format!("{c:>14}"))
        .collect::<Vec<_>>()
        .join("  ");
    println!("{line}");
}

/// Formats a float with 1 decimal.
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats bytes in a human unit.
pub fn human_bytes(b: f64) -> String {
    if b >= 1e9 {
        format!("{:.1}GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1}MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1}KB", b / 1e3)
    } else {
        format!("{b:.0}B")
    }
}

/// Schema version stamped into every `BENCH_*.json`. Bump when the file
/// layout changes so trend-tracking tooling can dispatch on it. Version 2
/// added `schema_version` itself and the `stage_breakdown` section.
pub const BENCH_SCHEMA_VERSION: u32 = 2;

/// Builder for the `BENCH_<name>.json` files the criterion benches emit for
/// CI trend tracking. Produces one schema-versioned JSON object and writes
/// it atomically (temp file + rename), so a bench killed mid-emit can never
/// leave a truncated file for CI to choke on.
pub struct BenchJson {
    bench: String,
    results: Vec<String>,
    sections: Vec<(String, String)>,
}

impl BenchJson {
    /// Starts a report for the bench called `bench`.
    pub fn new(bench: &str) -> Self {
        BenchJson {
            bench: bench.to_string(),
            results: Vec::new(),
            sections: Vec::new(),
        }
    }

    /// Appends one measurement row.
    pub fn result(&mut self, id: &str, mean_ns: f64, per_second: f64) {
        let id = telemetry::json_escape(id);
        self.results.push(format!(
            "    {{\"id\": \"{id}\", \"mean_ns\": {mean_ns:.1}, \"per_second\": {per_second:.1}}}"
        ));
    }

    /// Appends one measurement row that also carries latency percentiles —
    /// for harnesses whose headline result is a distribution, not a mean.
    pub fn result_with_percentiles(
        &mut self,
        id: &str,
        mean_ns: f64,
        per_second: f64,
        p50_ns: u64,
        p99_ns: u64,
    ) {
        let id = telemetry::json_escape(id);
        self.results.push(format!(
            "    {{\"id\": \"{id}\", \"mean_ns\": {mean_ns:.1}, \"per_second\": {per_second:.1}, \
             \"p50_ns\": {p50_ns}, \"p99_ns\": {p99_ns}}}"
        ));
    }

    /// Adds an extra top-level section. `value` must be rendered JSON.
    pub fn section(&mut self, key: &str, value: String) {
        self.sections.push((key.to_string(), value));
    }

    /// Adds a `stage_breakdown` section: per-stage latency summaries pulled
    /// from a telemetry snapshot, keyed by histogram name.
    pub fn stage_breakdown(&mut self, snap: &telemetry::TelemetrySnapshot, names: &[&str]) {
        let entries: Vec<String> = names
            .iter()
            .filter_map(|name| {
                snap.summary(name)
                    .map(|s| format!("    \"{}\": {}", telemetry::json_escape(name), s.to_json()))
            })
            .collect();
        self.section(
            "stage_breakdown",
            format!("{{\n{}\n  }}", entries.join(",\n")),
        );
    }

    /// Adds a `stage_breakdown` section carrying the per-shard dimension:
    /// the fleet-wide [`NCL_STAGES`] summaries first, then a `"shards"`
    /// object with one `"shard-<i>"` entry per reactor shard summarizing
    /// the `ncl.shard-<i>.record.*` twin histograms a hosted file stamps.
    pub fn shard_stage_breakdown(
        &mut self,
        snap: &telemetry::TelemetrySnapshot,
        names: &[&str],
        shards: usize,
    ) {
        let mut entries: Vec<String> = names
            .iter()
            .filter_map(|name| {
                snap.summary(name)
                    .map(|s| format!("    \"{}\": {}", telemetry::json_escape(name), s.to_json()))
            })
            .collect();
        let shard_lines: Vec<String> = (0..shards)
            .map(|i| {
                let stages: Vec<String> = names
                    .iter()
                    .filter_map(|name| {
                        let short = name.strip_prefix("ncl.record.").unwrap_or(name);
                        snap.summary(&format!("ncl.shard-{i}.record.{short}"))
                            .map(|s| {
                                format!("\"{}\": {}", telemetry::json_escape(name), s.to_json())
                            })
                    })
                    .collect();
                format!("      \"shard-{i}\": {{{}}}", stages.join(", "))
            })
            .collect();
        entries.push(format!(
            "    \"shards\": {{\n{}\n    }}",
            shard_lines.join(",\n")
        ));
        self.section(
            "stage_breakdown",
            format!("{{\n{}\n  }}", entries.join(",\n")),
        );
    }

    /// Renders the complete JSON document.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},\n  \"bench\": \"{}\",\n  \"results\": [\n{}\n  ]",
            self.bench,
            self.results.join(",\n")
        );
        for (key, value) in &self.sections {
            out.push_str(&format!(",\n  \"{key}\": {value}"));
        }
        out.push_str("\n}\n");
        out
    }

    /// Writes the report to `path` atomically: the document lands in a
    /// sibling temp file first and is renamed into place, so readers only
    /// ever observe a complete file.
    pub fn write_to(&self, path: &str) {
        let tmp = format!("{path}.tmp");
        std::fs::write(&tmp, self.render()).expect("write bench json temp");
        std::fs::rename(&tmp, path).expect("rename bench json into place");
        println!("{}: wrote {path}", self.bench);
    }

    /// Writes to `BENCH_JSON_PATH` if set, else `BENCH_<bench>.json` at the
    /// repo root (deterministic regardless of the harness's working
    /// directory — cargo bench runs with cwd = the crate directory).
    pub fn write(&self) {
        let path = std::env::var("BENCH_JSON_PATH").unwrap_or_else(|_| {
            format!(
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_{}.json"),
                self.bench
            )
        });
        self.write_to(&path);
    }
}

/// The five-phase recovery breakdown the recovery bins stamp into their
/// `recovery_phases` section, all in nanoseconds: `detect` (failure or
/// crash noticed → recovery begins), `acquire` (new peer from the
/// controller + connect/MR setup), `catch_up` (replaying the image onto
/// the replacement / RDMA-reading it back), `ap_map` (publishing the new
/// placement), `first_ack` (recovery done → the application's next write
/// acks, or the replayed app is serving again).
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryPhases {
    pub detect_ns: u64,
    pub acquire_ns: u64,
    pub catch_up_ns: u64,
    pub ap_map_ns: u64,
    pub first_ack_ns: u64,
}

impl RecoveryPhases {
    /// Sum of the five phases.
    pub fn total_ns(&self) -> u64 {
        self.detect_ns + self.acquire_ns + self.catch_up_ns + self.ap_map_ns + self.first_ack_ns
    }

    /// Renders the breakdown as one JSON object (one line, phase order).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"detect_ns\": {}, \"acquire_ns\": {}, \"catch_up_ns\": {}, \
             \"ap_map_ns\": {}, \"first_ack_ns\": {}, \"total_ns\": {}}}",
            self.detect_ns,
            self.acquire_ns,
            self.catch_up_ns,
            self.ap_map_ns,
            self.first_ack_ns,
            self.total_ns()
        )
    }
}

/// The per-record NCL span histograms, in lifecycle order. `e2e` is the
/// whole submit-to-majority-durable interval; the first four partition it.
pub const NCL_STAGES: [&str; 5] = [
    "ncl.record.stage",
    "ncl.record.doorbell",
    "ncl.record.wire",
    "ncl.record.ack",
    "ncl.record.e2e",
];

/// Validates one `BENCH_*.json` trend file: current schema version, a
/// non-empty `results` array, a `stage_breakdown` section carrying every
/// [`NCL_STAGES`] histogram with a non-zero sample count, and an
/// untruncated document. This is the single source of truth for what CI
/// accepts (`cargo run -p bench --bin validate_bench_json`); the format is
/// the line-oriented JSON [`BenchJson`] emits, so the checks are
/// line-structural and dependency-free.
pub fn validate_bench_json(body: &str) -> Result<(), String> {
    if !body.trim_end().ends_with('}') {
        return Err("document truncated (no closing brace)".to_string());
    }
    if !body.contains(&format!("\"schema_version\": {BENCH_SCHEMA_VERSION}")) {
        return Err(format!(
            "wrong or missing schema_version (want {BENCH_SCHEMA_VERSION})"
        ));
    }
    if !body.contains("\"results\"") {
        return Err("no results section".to_string());
    }
    if !body.contains("\"mean_ns\"") {
        return Err("results array is empty".to_string());
    }
    if !body.contains("\"stage_breakdown\"") {
        return Err("no stage_breakdown section".to_string());
    }
    for stage in NCL_STAGES {
        let line = body
            .lines()
            .find(|l| l.contains(&format!("\"{stage}\"")))
            .ok_or_else(|| format!("missing {stage} in stage_breakdown"))?;
        if line.contains("\"count\": 0,") {
            return Err(format!("{stage} summary is empty: {}", line.trim()));
        }
    }
    // The multi-shard bench must report the per-shard dimension: a sweep
    // that silently stopped hosting files on the sharded runtime would
    // otherwise still validate on its aggregate histograms alone.
    if body.contains("\"bench\": \"ncl_mt\"") && !body.contains("\"shard-0\":") {
        return Err("ncl_mt stage_breakdown is missing the per-shard dimension".to_string());
    }
    // ... and the scaling-efficiency trend CI warns on.
    if body.contains("\"bench\": \"ncl_mt\"") && !body.contains("\"scaling_efficiency\"") {
        return Err("ncl_mt is missing the scaling_efficiency section".to_string());
    }
    // The open-loop sweep must carry both applications' load curves with a
    // strictly monotone offered-load axis and the p999 tails — the whole
    // point of the harness is the tail-vs-load shape, so a file that lost
    // either dimension is not a valid trend point.
    if body.contains("\"bench\": \"latency_under_load\"") {
        if !body.contains("\"load_curves\"") {
            return Err("latency_under_load is missing the load_curves section".to_string());
        }
        for app in ["rocksdb", "redis"] {
            if !body.contains(&format!("\"{app}\": [")) {
                return Err(format!("load_curves is missing the {app} sweep"));
            }
        }
        if !body.contains("\"corrected_p999_ns\"") {
            return Err("load-curve points are missing the corrected p999 tail".to_string());
        }
        let mut prev = 0.0f64;
        let mut points = 0usize;
        for line in body.lines() {
            if line.trim_end().ends_with(": [") {
                // A new curve starts; the axis resets per application.
                prev = 0.0;
                continue;
            }
            if let Some(rest) = line.split("\"offered_per_sec\": ").nth(1) {
                let offered: f64 = rest
                    .split([',', '}'])
                    .next()
                    .and_then(|s| s.trim().parse().ok())
                    .ok_or_else(|| format!("unparseable offered_per_sec: {}", line.trim()))?;
                if offered <= prev {
                    return Err(format!(
                        "offered-load axis not monotone: {offered} after {prev}"
                    ));
                }
                prev = offered;
                points += 1;
            }
        }
        if points < 4 {
            return Err(format!(
                "latency_under_load needs at least 2 points per app, found {points} total"
            ));
        }
    }
    // The peer-memory smoke bench must carry its three trend dimensions —
    // fleet population, allocator throughput and GC reclamation — with
    // sane floors, so a run that silently stopped hosting multi-tenant
    // regions (or whose GC reclaimed nothing) fails instead of shipping a
    // hollow trend point.
    if body.contains("\"bench\": \"peer_mem\"") {
        let line = body
            .lines()
            .find(|l| l.trim_start().starts_with("\"peer_mem\":"))
            .ok_or_else(|| "peer_mem is missing the peer_mem section".to_string())?;
        for field in ["region_count", "alloc_per_sec", "bytes_reclaimed_by_gc"] {
            if !line.contains(&format!("\"{field}\":")) {
                return Err(format!("peer_mem section is missing {field}"));
            }
        }
        let field_u64 = |field: &str| -> Result<u64, String> {
            line.split(&format!("\"{field}\": "))
                .nth(1)
                .and_then(|rest| rest.split([',', '}']).next())
                .and_then(|s| s.trim().parse().ok())
                .ok_or_else(|| format!("unparseable {field}: {}", line.trim()))
        };
        let regions = field_u64("region_count")?;
        if regions < 64 {
            return Err(format!(
                "peer_mem hosted only {regions} regions, need >= 64 (multi-tenant floor)"
            ));
        }
        if field_u64("bytes_reclaimed_by_gc")? == 0 {
            return Err("peer_mem GC reclaimed zero bytes".to_string());
        }
    }
    // The batch bench must carry the durability axis: every mode row with
    // its memory/wire/recovery accounting, so a run that silently dropped
    // the erasure-coding sweep fails validation instead of shipping a
    // trend file without the dimension.
    if body.contains("\"bench\": \"ncl_batch\"") {
        if !body.contains("\"durability\"") {
            return Err("ncl_batch is missing the durability section".to_string());
        }
        for mode in ["replicated", "ec_2of3", "ec_4of6"] {
            let line = body
                .lines()
                .find(|l| l.contains(&format!("\"{mode}\":")))
                .ok_or_else(|| format!("durability section is missing the {mode} row"))?;
            for field in ["copies_of_memory", "wire_bytes_per_record", "recovery_ms"] {
                if !line.contains(field) {
                    return Err(format!("durability row {mode} is missing {field}"));
                }
            }
        }
    }
    // The recovery bins must carry the five-phase breakdown (detect →
    // acquire → catch-up → ap-map → first-ack) for every expected row, so
    // a port that dropped a variant (or renamed a phase out from under the
    // trend tooling) fails instead of shipping a hollow trend point.
    let recovery_rows: &[(&str, &[&str])] = &[
        ("table3_peer_recovery", &["fresh", "pooled"]),
        (
            "fig11b_recovery_time",
            &[
                "rocksdb/SplitFT",
                "rocksdb/DFT",
                "rocksdb/local-ext4",
                "redis/SplitFT",
                "sqlite/SplitFT",
            ],
        ),
    ];
    for (bench, rows) in recovery_rows {
        if !body.contains(&format!("\"bench\": \"{bench}\"")) {
            continue;
        }
        if !body.contains("\"recovery_phases\"") {
            return Err(format!("{bench} is missing the recovery_phases section"));
        }
        for key in *rows {
            let line = body
                .lines()
                .find(|l| l.trim_start().starts_with(&format!("\"{key}\":")))
                .ok_or_else(|| format!("recovery_phases is missing the {key} row"))?;
            for phase in [
                "detect_ns",
                "acquire_ns",
                "catch_up_ns",
                "ap_map_ns",
                "first_ack_ns",
            ] {
                if !line.contains(&format!("\"{phase}\":")) {
                    return Err(format!("recovery_phases row {key} is missing {phase}"));
                }
            }
        }
    }
    Ok(())
}

/// Percentile of a sorted `u64` slice, or `None` when it is empty — the
/// same contract as [`telemetry::Histogram::percentile`], so a harness that
/// measured nothing reports "no data" instead of a fake zero-latency tail.
pub fn percentile(sorted: &[u64], p: f64) -> Option<u64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize - 1;
    Some(sorted[rank.min(sorted.len() - 1)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_counts_positive() {
        for kind in AppKind::all() {
            assert!(record_count(kind) > 0);
            assert!(!kind.name().is_empty());
            assert!(kind.paper_threads() >= 1);
        }
    }

    #[test]
    fn percentile_of_sorted_slice() {
        let v = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(percentile(&v, 50.0), Some(5));
        assert_eq!(percentile(&v, 100.0), Some(10));
        assert_eq!(percentile(&v, 1.0), Some(1));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512.0), "512B");
        assert_eq!(human_bytes(2048.0), "2.0KB");
        assert_eq!(human_bytes(3.5e6), "3.5MB");
        assert_eq!(human_bytes(2e9), "2.0GB");
    }

    #[test]
    fn bench_json_renders_schema_results_and_sections() {
        let mut json = BenchJson::new("demo");
        json.result("demo/1", 1234.5, 1_000_000.0);
        json.result("demo/2", 2469.0, 500_000.0);
        json.section("extra", "{\"k\": 1}".to_string());
        let body = json.render();
        assert!(body.starts_with(&format!(
            "{{\n  \"schema_version\": {BENCH_SCHEMA_VERSION},"
        )));
        assert!(body.contains("\"bench\": \"demo\""));
        assert!(body.contains("\"id\": \"demo/1\", \"mean_ns\": 1234.5"));
        assert!(body.contains("\"extra\": {\"k\": 1}"));
        assert!(body.ends_with("}\n"));
    }

    /// A result id (often built from free-form bench labels) with quotes,
    /// backslashes or control characters must not corrupt the document.
    #[test]
    fn bench_json_escapes_result_ids() {
        let mut json = BenchJson::new("demo");
        json.result("io/4KB \"quoted\" \\ tab\there", 1.0, 2.0);
        let body = json.render();
        assert!(body.contains(r#""id": "io/4KB \"quoted\" \\ tab\there""#));
        // Line-level sanity: the rendered row has balanced quotes.
        let row = body.lines().find(|l| l.contains("io/4KB")).unwrap();
        assert_eq!(row.matches('"').count() - row.matches("\\\"").count(), 8);
    }

    #[test]
    fn bench_json_write_is_atomic() {
        let dir = std::env::temp_dir().join("splitft-bench-json-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("out.json");
        let path_str = path.to_str().unwrap();
        let mut json = BenchJson::new("demo");
        json.result("demo/1", 1.0, 2.0);
        json.write_to(path_str);
        // The temp file must be renamed away, and the target complete.
        assert!(!path.with_extension("json.tmp").exists());
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, json.render());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The checked-in trend files must carry the current schema and a
    /// populated per-stage breakdown — CI's guard against a bench run that
    /// silently stopped exporting telemetry.
    #[test]
    fn checked_in_bench_jsons_carry_stage_breakdown() {
        for bench in [
            "ncl_pipeline",
            "ncl_batch",
            "ncl_mt",
            "latency_under_load",
            "fig10_ycsb",
            "fig11b_recovery_time",
            "table3_peer_recovery",
        ] {
            let path = format!(
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_{}.json"),
                bench
            );
            let body =
                std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("missing {path}: {e}"));
            validate_bench_json(&body).unwrap_or_else(|e| panic!("{bench}: {e}"));
        }
    }

    fn valid_bench_doc() -> String {
        let mut json = BenchJson::new("demo");
        json.result("demo/1", 1234.5, 1_000_000.0);
        let stages: Vec<String> = NCL_STAGES
            .iter()
            .map(|s| format!("    \"{s}\": {{\"count\": 10, \"mean_ns\": 5.0}}"))
            .collect();
        json.section(
            "stage_breakdown",
            format!("{{\n{}\n  }}", stages.join(",\n")),
        );
        json.render()
    }

    #[test]
    fn validator_accepts_a_complete_document() {
        validate_bench_json(&valid_bench_doc()).expect("complete doc must validate");
    }

    #[test]
    fn validator_rejects_structural_defects() {
        let good = valid_bench_doc();
        // Truncated document (cut mid-line: a crash during emit).
        assert!(validate_bench_json(&good[..good.len() / 2]).is_err());
        // Stale schema version.
        let stale = good.replace(
            &format!("\"schema_version\": {BENCH_SCHEMA_VERSION}"),
            "\"schema_version\": 1",
        );
        assert!(validate_bench_json(&stale).is_err());
        // A stage with zero samples.
        let empty_stage = good.replace("\"count\": 10,", "\"count\": 0,");
        assert!(validate_bench_json(&empty_stage)
            .unwrap_err()
            .contains("empty"));
        // A missing stage.
        let missing = good.replace("ncl.record.wire", "ncl.record.gone");
        assert!(validate_bench_json(&missing)
            .unwrap_err()
            .contains("ncl.record.wire"));
        // No results rows.
        let mut no_results = BenchJson::new("demo");
        no_results.section("stage_breakdown", "{}".to_string());
        assert!(validate_bench_json(&no_results.render()).is_err());
    }

    /// An `ncl_mt` document without the per-shard dimension must fail; the
    /// same document under another bench name passes (the rule is scoped).
    #[test]
    fn validator_requires_shard_dimension_for_ncl_mt() {
        let flat = valid_bench_doc();
        assert!(validate_bench_json(&flat).is_ok());
        let mt = flat.replace("\"bench\": \"demo\"", "\"bench\": \"ncl_mt\"");
        assert!(validate_bench_json(&mt)
            .unwrap_err()
            .contains("per-shard dimension"));
        let sharded = mt.replace(
            "\"stage_breakdown\": {",
            "\"stage_breakdown\": {\n    \"shards\": {\"shard-0\": {}},",
        );
        // Still short one dimension: the scaling-efficiency trend.
        assert!(validate_bench_json(&sharded)
            .unwrap_err()
            .contains("scaling_efficiency"));
        let efficient = sharded.replace(
            "\"stage_breakdown\": {",
            "\"scaling_efficiency\": {\"1\": 1.0, \"4\": 0.9},\n  \"stage_breakdown\": {",
        );
        assert!(validate_bench_json(&efficient).is_ok());
    }

    /// A `latency_under_load` document must carry both applications'
    /// curves, the p999 tails, and a monotone offered-load axis.
    #[test]
    fn validator_enforces_load_curve_shape() {
        let flat = valid_bench_doc();
        let lul = flat.replace("\"bench\": \"demo\"", "\"bench\": \"latency_under_load\"");
        assert!(validate_bench_json(&lul)
            .unwrap_err()
            .contains("load_curves"));

        let point = |offered: f64| {
            format!("      {{\"offered_per_sec\": {offered:.1}, \"corrected_p999_ns\": 9000}}")
        };
        let curves = format!(
            "\"load_curves\": {{\n    \"rocksdb\": [\n{},\n{}\n    ],\n    \"redis\": [\n{},\n{}\n    ]\n  }},",
            point(1000.0),
            point(2000.0),
            point(900.0),
            point(1800.0)
        );
        let with_curves = lul.replace(
            "\"stage_breakdown\": {",
            &format!("{curves}\n  \"stage_breakdown\": {{"),
        );
        validate_bench_json(&with_curves).expect("complete sweep must validate");

        // The axis resets between apps (redis starting below rocksdb's top
        // is fine), but must be strictly increasing within one app.
        let shuffled =
            with_curves.replace("\"offered_per_sec\": 1800.0", "\"offered_per_sec\": 900.0");
        assert!(validate_bench_json(&shuffled)
            .unwrap_err()
            .contains("not monotone"));

        // Losing one app's sweep fails by name.
        let one_app = with_curves.replace("\"redis\": [", "\"other\": [");
        assert!(validate_bench_json(&one_app).unwrap_err().contains("redis"));

        // Losing the tail percentiles fails.
        let no_tail = with_curves.replace("corrected_p999_ns", "corrected_p42_ns");
        assert!(validate_bench_json(&no_tail).unwrap_err().contains("p999"));

        // Too few points (a sweep that collapsed to one rate) fails.
        let mut short = lul.replace(
            "\"stage_breakdown\": {",
            &format!(
                "\"load_curves\": {{\n    \"rocksdb\": [\n{}\n    ],\n    \"redis\": [\n{}\n    ]\n  }},\n  \"stage_breakdown\": {{",
                point(1000.0),
                point(900.0)
            ),
        );
        short.truncate(short.len());
        assert!(validate_bench_json(&short)
            .unwrap_err()
            .contains("at least 2 points"));
    }

    /// An `ncl_batch` document must carry the durability axis with every
    /// mode row complete; other benches are exempt from the rule.
    #[test]
    fn validator_requires_durability_axis_for_ncl_batch() {
        let flat = valid_bench_doc();
        assert!(validate_bench_json(&flat).is_ok());
        let batch = flat.replace("\"bench\": \"demo\"", "\"bench\": \"ncl_batch\"");
        assert!(validate_bench_json(&batch)
            .unwrap_err()
            .contains("durability"));
        let rows = "\"durability\": {\n    \
             \"replicated\": {\"copies_of_memory\": 3.00, \"wire_bytes_per_record\": 780.0, \"per_second\": 1.0, \"recovery_ms\": 1.0},\n    \
             \"ec_2of3\": {\"copies_of_memory\": 1.50, \"wire_bytes_per_record\": 430.0, \"per_second\": 1.0, \"recovery_ms\": 1.0},\n    \
             \"ec_4of6\": {\"copies_of_memory\": 1.50, \"wire_bytes_per_record\": 447.0, \"per_second\": 1.0, \"recovery_ms\": 1.0}\n  },";
        let with_axis = batch.replace(
            "\"stage_breakdown\": {",
            &format!("{rows}\n  \"stage_breakdown\": {{"),
        );
        assert!(validate_bench_json(&with_axis).is_ok());
        // A row missing a required field fails by name.
        let incomplete = with_axis.replace(
            "\"ec_2of3\": {\"copies_of_memory\": 1.50, ",
            "\"ec_2of3\": {",
        );
        assert!(validate_bench_json(&incomplete)
            .unwrap_err()
            .contains("copies_of_memory"));
    }

    /// The recovery bins must carry a complete five-phase breakdown for
    /// every expected variant row; other benches are exempt.
    #[test]
    fn validator_requires_recovery_phase_breakdown() {
        let flat = valid_bench_doc();
        assert!(validate_bench_json(&flat).is_ok());
        let t3 = flat.replace("\"bench\": \"demo\"", "\"bench\": \"table3_peer_recovery\"");
        assert!(validate_bench_json(&t3)
            .unwrap_err()
            .contains("recovery_phases"));

        let phases = RecoveryPhases {
            detect_ns: 10,
            acquire_ns: 20,
            catch_up_ns: 30,
            ap_map_ns: 40,
            first_ack_ns: 50,
        };
        assert_eq!(phases.total_ns(), 150);
        let section = format!(
            "\"recovery_phases\": {{\n    \"fresh\": {},\n    \"pooled\": {}\n  }},",
            phases.to_json(),
            phases.to_json()
        );
        let with_phases = t3.replace(
            "\"stage_breakdown\": {",
            &format!("{section}\n  \"stage_breakdown\": {{"),
        );
        validate_bench_json(&with_phases).expect("complete breakdown must validate");

        // Losing a variant row fails by name.
        let no_pooled = with_phases.replace("\"pooled\":", "\"other\":");
        assert!(validate_bench_json(&no_pooled)
            .unwrap_err()
            .contains("pooled"));
        // A row missing a phase fails by phase name.
        let no_ap_map = with_phases.replace("\"ap_map_ns\":", "\"ap_nap_ns\":");
        assert!(validate_bench_json(&no_ap_map)
            .unwrap_err()
            .contains("ap_map_ns"));

        // The fig11b variant checks its own (app, config) rows.
        let f11 = flat.replace("\"bench\": \"demo\"", "\"bench\": \"fig11b_recovery_time\"");
        assert!(validate_bench_json(&f11)
            .unwrap_err()
            .contains("recovery_phases"));
        let rows: Vec<String> = [
            "rocksdb/SplitFT",
            "rocksdb/DFT",
            "rocksdb/local-ext4",
            "redis/SplitFT",
            "sqlite/SplitFT",
        ]
        .iter()
        .map(|k| format!("    \"{k}\": {}", phases.to_json()))
        .collect();
        let section = format!("\"recovery_phases\": {{\n{}\n  }},", rows.join(",\n"));
        let with_rows = f11.replace(
            "\"stage_breakdown\": {",
            &format!("{section}\n  \"stage_breakdown\": {{"),
        );
        validate_bench_json(&with_rows).expect("complete fig11b breakdown must validate");
        let lost_app = with_rows.replace("\"sqlite/SplitFT\":", "\"sqlite/Splat\":");
        assert!(validate_bench_json(&lost_app)
            .unwrap_err()
            .contains("sqlite/SplitFT"));
    }
}
