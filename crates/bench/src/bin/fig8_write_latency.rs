//! Figure 8 — NCL write latency (embedded mode).
//!
//! Sequentially writes a file with write sizes from 128 B to 8 KB in three
//! configurations and reports the average per-write latency:
//!
//! * `strong-bench DFS` — every write followed by an fdatasync to the DFS;
//! * `weak-bench DFS`   — buffered writes, never flushed in-band;
//! * `NCL`              — every write synchronously replicated to 3 peers.
//!
//! Paper reference (128 B): strong ≈ 2000 µs, weak ≈ 1.2 µs, NCL ≈ 4.6 µs —
//! NCL tracks the weak configuration while strong is two orders of
//! magnitude slower.
//!
//! A window-depth sweep (`NCL p1` / `p4` / `p16`) rides along on the
//! threaded NIC, where work requests are genuinely in flight: `p1` issues
//! one synchronous `record` at a time (the paper's baseline), deeper
//! windows post through `record_nowait` and fence once at the end, so the
//! reported figure is the amortized per-record latency the pipelined path
//! achieves at that depth. The p-columns keep one header write per record
//! (`coalesce_headers = false`, PR 1 behaviour); the `NCL batch` columns
//! (`b4` / `b16`) rerun the same depths with batched submission and
//! coalesced headers — one doorbell and one header write per flushed
//! burst — showing what the posting-side batching is worth on top of the
//! window overlap.

use bench::{calibrated_testbed, f1, header, quick, row, NCL_STAGES};
use ncl::NclLib;
use sim::Stopwatch;
use splitfs::{Mode, OpenOptions};
use telemetry::Telemetry;

fn main() {
    let tb = calibrated_testbed();
    let sizes = [128usize, 256, 512, 1024, 2048, 4096, 8192];
    let ops_strong = if quick() { 30 } else { 200 };
    let ops_fast = if quick() { 2_000 } else { 20_000 };

    header("Figure 8: write latency, embedded mode (average µs per write)");
    row(&[
        "size".into(),
        "strong DFS".into(),
        "weak DFS".into(),
        "NCL".into(),
        "NCL p1".into(),
        "NCL p4".into(),
        "NCL p16".into(),
        "NCL b4".into(),
        "NCL b16".into(),
    ]);

    for &size in &sizes {
        let data = vec![0xABu8; size];

        // Strong: write + fsync to the DFS per op.
        let (fs, _) = tb.mount(Mode::StrongDft, &format!("fig8-strong-{size}"));
        let f = fs.open("bench", OpenOptions::create()).unwrap();
        let sw = Stopwatch::start();
        for i in 0..ops_strong {
            f.write_at((i * size) as u64, &data).unwrap();
            f.fsync().unwrap();
        }
        let strong_us = sw.elapsed_micros_f64() / ops_strong as f64;

        // Weak: buffered write only.
        let (fs, _) = tb.mount(Mode::WeakDft, &format!("fig8-weak-{size}"));
        let f = fs.open("bench", OpenOptions::create()).unwrap();
        let sw = Stopwatch::start();
        for i in 0..ops_fast {
            f.write_at((i * size) as u64, &data).unwrap();
            f.fsync().unwrap(); // No-op in the weak configuration.
        }
        let weak_us = sw.elapsed_micros_f64() / ops_fast as f64;

        // NCL: synchronous replication per write, embedded (no server hop).
        let node = tb.add_app_node(&format!("fig8-ncl-{size}"));
        let ncl = NclLib::new(
            &tb.cluster,
            node,
            &format!("fig8-{size}"),
            tb.config().ncl.clone(),
            &tb.controller,
            &tb.registry,
        )
        .unwrap();
        let ncl_ops = ops_fast.min(4_000);
        let file = ncl.create("bench", ncl_ops * size).unwrap();
        let sw = Stopwatch::start();
        for i in 0..ncl_ops {
            file.record((i * size) as u64, &data).unwrap();
        }
        let ncl_us = sw.elapsed_micros_f64() / ncl_ops as f64;
        file.release().unwrap();

        // Window-depth sweep on the threaded NIC: amortized per-record
        // latency at pipeline depth 1 (synchronous baseline), 4, and 16.
        let pipe_ops = ncl_ops.min(2_000);
        let pipelined_us = |window: u64, coalesce: bool| {
            let tag = if coalesce { "b" } else { "p" };
            let mut config = tb.config().ncl.clone();
            config.inline_nic = false;
            config.pipeline_window = window;
            config.coalesce_headers = coalesce;
            let node = tb.add_app_node(&format!("fig8-{tag}{window}-{size}"));
            let ncl = NclLib::new(
                &tb.cluster,
                node,
                &format!("fig8-{tag}{window}-{size}"),
                config,
                &tb.controller,
                &tb.registry,
            )
            .unwrap();
            let file = ncl.create("bench", pipe_ops * size).unwrap();
            let sw = Stopwatch::start();
            for i in 0..pipe_ops {
                if window == 1 {
                    file.record((i * size) as u64, &data).unwrap();
                } else {
                    file.record_nowait((i * size) as u64, &data).unwrap();
                }
            }
            file.fsync().unwrap();
            let us = sw.elapsed_micros_f64() / pipe_ops as f64;
            file.release().unwrap();
            us
        };
        let p1_us = pipelined_us(1, false);
        let p4_us = pipelined_us(4, false);
        let p16_us = pipelined_us(16, false);
        let b4_us = pipelined_us(4, true);
        let b16_us = pipelined_us(16, true);

        row(&[
            format!("{size}B"),
            f1(strong_us),
            f1(weak_us),
            f1(ncl_us),
            f1(p1_us),
            f1(p4_us),
            f1(p16_us),
            f1(b4_us),
            f1(b16_us),
        ]);
    }

    // Where does an NCL record's latency go? One telemetry-instrumented
    // 128 B pipelined run (threaded NIC, window 16), decomposed into the
    // staging / doorbell / wire / ack spans the record path stamps.
    let telemetry = Telemetry::new();
    let mut config = tb.config().ncl.clone();
    config.inline_nic = false;
    config.pipeline_window = 16;
    config.telemetry = telemetry.clone();
    let node = tb.add_app_node("fig8-breakdown");
    let ncl = NclLib::new(
        &tb.cluster,
        node,
        "fig8-breakdown",
        config,
        &tb.controller,
        &tb.registry,
    )
    .unwrap();
    let data = vec![0xABu8; 128];
    let ops = if quick() { 500 } else { 2_000 };
    let file = ncl.create("bench", ops * 128).unwrap();
    for i in 0..ops {
        file.record_nowait((i * 128) as u64, &data).unwrap();
    }
    file.fsync().unwrap();
    file.release().unwrap();
    let snap = telemetry.snapshot();
    header("NCL per-record stage breakdown @128B, window 16 (µs)");
    row(&[
        "stage".into(),
        "count".into(),
        "mean".into(),
        "p50".into(),
        "p99".into(),
    ]);
    for stage in NCL_STAGES {
        if let Some(s) = snap.summary(stage) {
            row(&[
                stage.trim_start_matches("ncl.record.").to_string(),
                s.count.to_string(),
                f1(s.mean_ns / 1e3),
                f1(s.p50_ns as f64 / 1e3),
                f1(s.p99_ns as f64 / 1e3),
            ]);
        }
    }

    println!(
        "\npaper reference @128B: strong ≈ 2000 µs | weak ≈ 1.2 µs | NCL ≈ 4.6 µs\n\
         expectation: NCL within ~5x of weak; strong 2+ orders of magnitude above both\n\
         p-columns: threaded-NIC amortized latency at pipeline depth 1/4/16 with\n\
         per-record headers — deeper windows overlap the in-flight period\n\
         b-columns: batched submission at depth 4/16 — one doorbell and one\n\
         coalesced header write per flushed burst on top of the window overlap"
    );
}
