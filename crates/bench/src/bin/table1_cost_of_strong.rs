//! Table 1 — the cost of strong guarantees.
//!
//! RocksDB on the DFS, write-only workload, 12 clients: weak vs strong
//! configuration. The paper measures 232 KOps/s @ 50 µs (weak) against
//! ~4.3 KOps/s @ 4625 µs (strong) — a ~50x throughput drop and ~90x latency
//! blow-up. The absolute numbers here differ (simulated substrate, single
//! host), but the orders-of-magnitude gap must reproduce.

use bench::{calibrated_testbed, f1, header, mount_app, record_count, row, run_secs, AppKind};
use splitfs::Mode;
use ycsb::{LoadSpec, RunSpec, Runner, Workload};

fn main() {
    let tb = calibrated_testbed();
    let records = record_count(AppKind::Rocks) / 2;
    let clients = 12;

    header("Table 1: cost of strong guarantees (RocksDB, write-only, 12 clients)");
    row(&[
        "config".into(),
        "KOps/s".into(),
        "avg µs".into(),
        "p99 µs".into(),
    ]);

    let mut results = Vec::new();
    for (name, mode) in [("weak", Mode::WeakDft), ("strong", Mode::StrongDft)] {
        let app = mount_app(&tb, mode, AppKind::Rocks, &format!("t1-{name}"));
        Runner::load(
            app.as_ref(),
            &LoadSpec {
                record_count: records,
                value_size: 100,
                threads: clients,
            },
        )
        .expect("load");
        let report = Runner::run(
            app.as_ref(),
            &Workload::write_only(records),
            records,
            &RunSpec {
                threads: clients,
                duration: run_secs(),
                value_size: 100,
                sample_window: None,
                seed: 0x007A_B1E1,
            },
        );
        row(&[
            name.into(),
            f1(report.kops()),
            f1(report.latency.mean_us()),
            f1(report.latency.p99_ns as f64 / 1e3),
        ]);
        results.push((name, report.kops(), report.latency.mean_us()));
    }

    let drop = results[0].1 / results[1].1.max(0.001);
    let blowup = results[1].2 / results[0].2.max(0.001);
    println!(
        "\nthroughput drop {drop:.0}x (paper ~50x) | latency blow-up {blowup:.0}x (paper ~90x)"
    );
}
