//! Table 2 — write patterns of storage-centric applications.
//!
//! The paper surveys eight applications; this binary demonstrates the same
//! classification *empirically* for the three we implement: which files
//! receive the small synchronous writes, which receive bulk background
//! writes, and how the log is reclaimed (deletion vs overwrite), observed
//! from live runs rather than asserted.

use std::sync::Arc;

use apps::miniredis::{Command, MiniRedis, RedisOptions};
use apps::minirocks::{MiniRocks, RocksOptions};
use apps::minisql::{MiniSql, SqlOptions};
use bench::{header, row};
use dfs::IoTrace;
use splitfs::{Mode, Testbed, TestbedConfig};

fn main() {
    // Zero latencies: this experiment is about IO structure, not speed.
    let tb = Testbed::start(TestbedConfig::zero(3));

    header("Table 2: writes in storage-centric applications (observed)");
    row(&[
        "app".into(),
        "small sync writes".into(),
        "large bg writes".into(),
        "reclaim".into(),
        "evidence".into(),
    ]);

    // --- RocksDB stand-in: WAL deleted after each memtable flush. ---
    {
        let (fs, _) = tb.mount(Mode::StrongDft, "t2-rocks");
        let trace = IoTrace::new();
        trace.enable();
        fs.set_trace(Arc::clone(&trace));
        let db = MiniRocks::open(fs.clone(), "r/", RocksOptions::tiny()).unwrap();
        for i in 0..400u32 {
            db.put(format!("key{i:05}").as_bytes(), &[0x11; 100])
                .unwrap();
        }
        db.wait_for_flushes();
        let flushes = db.flush_count();
        let wals_left = fs.list("r/wal-").unwrap().len();
        row(&[
            "minirocks".into(),
            "write-ahead log (wal-*)".into(),
            "sorted tables (sst-*)".into(),
            "delete".into(),
            format!("{flushes} flushes, {wals_left} live WAL"),
        ]);
    }

    // --- Redis stand-in: AOF deleted after each RDB rewrite. ---
    {
        let (fs, _) = tb.mount(Mode::StrongDft, "t2-redis");
        let r = MiniRedis::open(fs.clone(), "d/", RedisOptions::tiny()).unwrap();
        for i in 0..2_000u32 {
            r.execute(Command::Set(format!("k{i}"), vec![0x22; 100]))
                .unwrap();
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while r.rewrite_count() == 0 && std::time::Instant::now() < deadline {
            r.execute(Command::Set("spin".into(), b"x".to_vec()))
                .unwrap();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let rewrites = r.rewrite_count();
        let aofs_left = fs.list("d/aof-").unwrap().len();
        row(&[
            "miniredis".into(),
            "append-only file (aof-*)".into(),
            "snapshot (rdb-*)".into(),
            "delete".into(),
            format!("{rewrites} rewrites, {aofs_left} live AOF"),
        ]);
    }

    // --- SQLite stand-in: the WAL is reset and overwritten in place. ---
    {
        let (fs, _) = tb.mount(Mode::StrongDft, "t2-sql");
        let db = MiniSql::open(fs.clone(), "s/", SqlOptions::tiny()).unwrap();
        for i in 0..400u32 {
            db.put(format!("key{i:05}").as_bytes(), &[0x33; 100])
                .unwrap();
        }
        let checkpoints = db.checkpoint_count();
        let wal_count = fs.list("s/db-wal").unwrap().len();
        row(&[
            "minisql".into(),
            "write-ahead log (db-wal)".into(),
            "database pages (db)".into(),
            "overwrite".into(),
            format!("{checkpoints} checkpoints, same {wal_count} WAL file reused"),
        ]);
    }

    println!(
        "\npaper Table 2: RocksDB/LevelDB/Redis/MongoDB delete their logs after \
         flush; SQLite/Postgres/HyperSQL/MariaDB reuse the log as a circular \
         buffer (overwrite). Both reclaim policies are exercised above."
    );
}
