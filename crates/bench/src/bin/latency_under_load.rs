//! Latency under load — open-loop offered-load sweep (the observability
//! counterpart of the paper's throughput figures).
//!
//! Closed-loop YCSB (Figure 10) reports throughput at whatever rate the
//! server sustains; it cannot show how the latency *distribution* degrades
//! as offered load approaches capacity, and its latencies suffer from
//! coordinated omission. This harness drives MiniRocks and MiniRedis —
//! mounted on one calibrated testbed so they share the same NCL peer pool —
//! with the open-loop runner: a Poisson arrival schedule at a fixed fraction
//! of the measured closed-loop capacity, corrected latencies charged from
//! intended arrival times.
//!
//! Expected shape: corrected p50 stays near the service time up to ~50% of
//! capacity, the p99/p999 tails lift first, and past capacity the corrected
//! distribution grows without bound (queueing) while the achieved rate
//! saturates. Per-point NCL stage windows (cumulative-histogram diffs)
//! attribute the lift to a pipeline stage.
//!
//! Emits `BENCH_latency_under_load.json` with one monotone offered-load
//! curve per application; `validate_bench_json` enforces the axis and the
//! p999 tails.

use bench::{
    calibrated_testbed, header, mount_app, record_count, row, run_secs, AppKind, BenchJson,
    NCL_STAGES,
};
use splitfs::Mode;
use std::collections::BTreeMap;
use std::time::Duration;
use telemetry::{Histogram, Telemetry};
use ycsb::{ArrivalSchedule, LoadSpec, OpenLoopSpec, RunSpec, Runner, Workload};

/// Offered load as fractions of the measured closed-loop capacity. The
/// absolute capacity is machine-dependent; the fractions pin the curve's
/// shape (under, near, and past the knee) on any machine.
fn load_fractions() -> Vec<f64> {
    if bench::quick() {
        vec![0.4, 1.3]
    } else {
        vec![0.25, 0.5, 1.0, 1.5]
    }
}

/// One measured point of an application's load curve.
struct CurvePoint {
    fraction: f64,
    offered: f64,
    achieved: f64,
    ops: u64,
    abandoned: u64,
    corrected: Histogram,
    service: Histogram,
    /// Per-stage latency windows covering exactly this point's run.
    stages: Vec<(String, Histogram)>,
}

impl CurvePoint {
    fn to_json_line(&self) -> String {
        let q = |h: &Histogram, p: f64| h.percentile(p).unwrap_or(0);
        let stages = self
            .stages
            .iter()
            .map(|(name, h)| {
                format!(
                    "\"{}\": {{\"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}}}",
                    telemetry::json_escape(name),
                    h.count(),
                    q(h, 50.0),
                    q(h, 99.0),
                    q(h, 99.9),
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "      {{\"offered_per_sec\": {:.1}, \"capacity_fraction\": {:.2}, \
             \"achieved_per_sec\": {:.1}, \"ops\": {}, \"abandoned\": {}, \
             \"corrected_p50_ns\": {}, \"corrected_p99_ns\": {}, \"corrected_p999_ns\": {}, \
             \"service_p50_ns\": {}, \"service_p99_ns\": {}, \"service_p999_ns\": {}, \
             \"stages\": {{{stages}}}}}",
            self.offered,
            self.fraction,
            self.achieved,
            self.ops,
            self.abandoned,
            q(&self.corrected, 50.0),
            q(&self.corrected, 99.0),
            q(&self.corrected, 99.9),
            q(&self.service, 50.0),
            q(&self.service, 99.0),
            q(&self.service, 99.9),
        )
    }
}

/// Cumulative NCL stage histograms right now, for windowing a run.
fn stage_snapshot(tel: &Telemetry) -> BTreeMap<String, Histogram> {
    tel.histograms_full()
        .into_iter()
        .filter(|(name, _)| NCL_STAGES.contains(&name.as_str()))
        .collect()
}

/// Diffs two stage snapshots into per-stage windows, in lifecycle order.
fn stage_window(
    before: &BTreeMap<String, Histogram>,
    after: &BTreeMap<String, Histogram>,
) -> Vec<(String, Histogram)> {
    NCL_STAGES
        .iter()
        .filter_map(|name| {
            let now = after.get(*name)?;
            let window = match before.get(*name) {
                Some(prev) => now.diff(prev),
                None => now.clone(),
            };
            Some((name.to_string(), window))
        })
        .collect()
}

fn main() {
    let tb = calibrated_testbed();
    let tel = tb.config().ncl.telemetry.clone();
    let mut json = BenchJson::new("latency_under_load");
    let mut curves: Vec<(AppKind, Vec<CurvePoint>)> = Vec::new();

    // SQLite's single-writer WAL makes its knee a different experiment; the
    // paper's latency discussion centers on the two log-structured apps.
    for kind in [AppKind::Rocks, AppKind::Redis] {
        let records = record_count(kind);
        let clients = 8;
        header(&format!(
            "Latency under load — {} on SplitFT ({} records, {} open-loop clients, shared peers)",
            kind.name(),
            records,
            clients
        ));
        let app = mount_app(&tb, Mode::SplitFt, kind, "lul");
        Runner::load(
            app.as_ref(),
            &LoadSpec {
                record_count: records,
                value_size: 100,
                threads: clients,
            },
        )
        .expect("load");
        app.quiesce();

        // Closed-loop capacity probe: the sweep's rates are fractions of
        // this, so the knee lands inside the sweep on any machine.
        let workload = Workload::a(records);
        let probe = Runner::run(
            app.as_ref(),
            &workload,
            records,
            &RunSpec {
                threads: clients,
                duration: run_secs(),
                value_size: 100,
                sample_window: None,
                seed: 0x10AD,
            },
        );
        app.quiesce();
        let capacity = probe.ops as f64 / probe.elapsed.as_secs_f64();
        println!("closed-loop capacity: {capacity:.0} ops/s");

        row(&[
            "offered/s".into(),
            "achieved/s".into(),
            "corr p50 µs".into(),
            "corr p99 µs".into(),
            "corr p999 µs".into(),
            "svc p99 µs".into(),
            "abandoned".into(),
        ]);
        let mut points = Vec::new();
        for fraction in load_fractions() {
            let rate = (capacity * fraction).max(50.0);
            let before = stage_snapshot(&tel);
            let report = Runner::run_open_loop(
                app.as_ref(),
                &workload,
                records,
                &OpenLoopSpec {
                    clients,
                    duration: run_secs(),
                    value_size: 100,
                    schedule: ArrivalSchedule::Poisson { rate_per_sec: rate },
                    seed: 0x10AD ^ (fraction * 1000.0) as u64,
                    max_overrun: run_secs() * 2 + Duration::from_secs(1),
                    sink: Some(tel.histogram(&format!("client.{}.corrected", kind.name()))),
                },
            );
            app.quiesce();
            let after = stage_snapshot(&tel);
            let q = |h: &Histogram, p: f64| h.percentile(p).unwrap_or(0) as f64 / 1e3;
            row(&[
                format!("{:.0}", report.offered_rate),
                format!("{:.0}", report.achieved_rate()),
                format!("{:.1}", q(&report.corrected, 50.0)),
                format!("{:.1}", q(&report.corrected, 99.0)),
                format!("{:.1}", q(&report.corrected, 99.9)),
                format!("{:.1}", q(&report.service, 99.0)),
                format!("{}", report.abandoned),
            ]);
            json.result(
                &format!("latency_under_load/{}/{:.2}x", kind.name(), fraction),
                report.corrected.mean(),
                report.achieved_rate(),
            );
            points.push(CurvePoint {
                fraction,
                offered: report.offered_rate,
                achieved: report.achieved_rate(),
                ops: report.ops,
                abandoned: report.abandoned,
                corrected: report.corrected,
                service: report.service,
                stages: stage_window(&before, &after),
            });
        }
        // The sweep orders fractions ascending; realized offered rates are
        // Poisson-noisy, so enforce the axis before emitting (a violation
        // means the sweep itself is broken, not just noisy).
        for pair in points.windows(2) {
            assert!(
                pair[1].offered > pair[0].offered,
                "offered-load axis not monotone for {}",
                kind.name()
            );
        }
        curves.push((kind, points));
    }

    let curve_json = curves
        .iter()
        .map(|(kind, points)| {
            let body = points
                .iter()
                .map(CurvePoint::to_json_line)
                .collect::<Vec<_>>()
                .join(",\n");
            format!("    \"{}\": [\n{body}\n    ]", kind.name())
        })
        .collect::<Vec<_>>()
        .join(",\n");
    json.section("load_curves", format!("{{\n{curve_json}\n  }}"));
    json.stage_breakdown(&tel.snapshot(), &NCL_STAGES);
    json.write();
}
