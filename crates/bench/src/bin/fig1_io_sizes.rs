//! Figure 1(a–c) — IO sizes of log writes vs background writes.
//!
//! Runs each application in the strong configuration with DFS-level IO
//! tracing enabled and reports the distribution of write sizes submitted
//! per fsync, split into the critical-path log files (`wal-*`, `aof-*`,
//! `db-wal`) and the background bulk files (`sst-*`, `rdb-*`, `db`).
//! The paper's observation: log writes are orders of magnitude smaller
//! than compaction/checkpoint writes (five orders for RocksDB).

use std::sync::Arc;

use apps::{KvApp, MiniRedis, MiniRocks, MiniSql, RedisOptions, RocksOptions, SqlOptions};
use bench::{calibrated_testbed, header, human_bytes, percentile, row, run_secs, AppKind};
use dfs::{IoKind, IoTrace};
use splitfs::{Mode, SplitFs};
use ycsb::{LoadSpec, RunSpec, Runner, Workload};

/// Opens the app with reduced flush/checkpoint thresholds so background
/// writes occur within the measured window (the paper's runs are 120 s on
/// real hardware; the simulated strong configuration writes far less per
/// second, so at default thresholds no compaction would trigger at all).
fn open_traced_app(fs: SplitFs, kind: AppKind, id: &str) -> Arc<dyn KvApp> {
    match kind {
        AppKind::Rocks => Arc::new(
            MiniRocks::open(
                fs,
                &format!("{id}/"),
                RocksOptions {
                    memtable_bytes: 256 << 10,
                    wal_capacity: 2 << 20,
                    ..RocksOptions::default()
                },
            )
            .expect("open"),
        ),
        AppKind::Redis => Arc::new(
            MiniRedis::open(
                fs,
                &format!("{id}/"),
                RedisOptions {
                    aof_capacity: 2 << 20,
                    rewrite_threshold: 256 << 10,
                    ..RedisOptions::default()
                },
            )
            .expect("open"),
        ),
        AppKind::Sql => Arc::new(
            MiniSql::open(
                fs,
                &format!("{id}/"),
                SqlOptions {
                    npages: 512,
                    wal_capacity: 2 << 20,
                    checkpoint_threshold: 512 << 10,
                    ..SqlOptions::default()
                },
            )
            .expect("open"),
        ),
    }
}

fn is_log_file(kind: AppKind, path: &str) -> bool {
    match kind {
        AppKind::Rocks => path.contains("wal-"),
        AppKind::Redis => path.contains("aof-"),
        AppKind::Sql => path.ends_with("db-wal"),
    }
}

fn is_bulk_file(kind: AppKind, path: &str) -> bool {
    match kind {
        AppKind::Rocks => path.contains("sst-"),
        AppKind::Redis => path.contains("rdb-"),
        AppKind::Sql => path.ends_with("/db"),
    }
}

fn main() {
    let tb = calibrated_testbed();

    for kind in AppKind::all() {
        header(&format!(
            "Figure 1: IO sizes, {} (strong config, write-only workload)",
            kind.name()
        ));
        // Mount through the testbed but attach a trace to the DFS client.
        let app_id = format!("fig1-{}", kind.name());
        let (fs, _) = tb.mount(Mode::StrongDft, &app_id);
        let trace = IoTrace::new();
        trace.enable();
        fs.set_trace(Arc::clone(&trace));
        let app = open_traced_app(fs, kind, &app_id);

        let records = bench::record_count(kind) / 4;
        Runner::load(
            app.as_ref(),
            &LoadSpec {
                record_count: records,
                value_size: 100,
                threads: 8,
            },
        )
        .expect("load");
        let _ = Runner::run(
            app.as_ref(),
            &Workload::write_only(records),
            records,
            &RunSpec {
                threads: kind.paper_threads().min(12),
                duration: run_secs() * 3,
                value_size: 100,
                sample_window: None,
                seed: 0xF1,
            },
        );
        // Let background flushes settle before reading the trace.
        std::thread::sleep(std::time::Duration::from_millis(300));

        let events = trace.events();
        let mut log_sizes: Vec<u64> = Vec::new();
        let mut bulk_sizes: Vec<u64> = Vec::new();
        for e in &events {
            if e.kind != IoKind::FlushWrite || e.bytes == 0 {
                continue;
            }
            if is_log_file(kind, &e.path) {
                log_sizes.push(e.bytes as u64);
            } else if is_bulk_file(kind, &e.path) {
                bulk_sizes.push(e.bytes as u64);
            }
        }
        log_sizes.sort_unstable();
        bulk_sizes.sort_unstable();

        row(&[
            "class".into(),
            "count".into(),
            "p50".into(),
            "p90".into(),
            "max".into(),
        ]);
        for (name, sizes) in [("log writes", &log_sizes), ("bg writes", &bulk_sizes)] {
            row(&[
                name.into(),
                sizes.len().to_string(),
                human_bytes(percentile(sizes, 50.0).unwrap_or(0) as f64),
                human_bytes(percentile(sizes, 90.0).unwrap_or(0) as f64),
                human_bytes(sizes.last().copied().unwrap_or(0) as f64),
            ]);
        }
        if let (Some(bulk_p50), Some(log_p50)) =
            (percentile(&bulk_sizes, 50.0), percentile(&log_sizes, 50.0))
        {
            let ratio = bulk_p50 as f64 / log_p50.max(1) as f64;
            println!("median background/log size ratio: {ratio:.0}x");
        }
    }
    println!(
        "\npaper shape: log writes are KB-scale (batched small records); background \
         compaction/checkpoint/snapshot writes are MB-scale — orders of magnitude larger"
    );
}
