//! Table 3 — latency breakdown of replacing a failed log peer.
//!
//! An NCL file holds a 60 MB log (as in the paper); one of its peers
//! crashes; the next record detects the failure and replaces the peer
//! inline. Reported phases match the paper's table: get new peer from the
//! controller, connect + set up the memory region, catch the new peer up,
//! update the ap-map.
//!
//! Paper: 3.6 ms / 64.9 ms / 23.4 ms / 4.7 ms, total ≈ 96.6 ms — dominated
//! by fresh memory-region registration, with the caveat that a pooled
//! pre-registered region makes the common case much cheaper (which the
//! pooled-allocation row demonstrates).
//!
//! Besides the console table, emits `BENCH_table3_peer_recovery.json`
//! (schema v2): one result row per variant plus a `recovery_phases`
//! section with the five-phase breakdown (detect → acquire → catch-up →
//! ap-map → first-ack). The middle three phases come from
//! [`repair_stats`]; the detect and first-ack edges are reconstructed from
//! the `ncl.repair` / `ncl.write` span roots of the tripping record.
//!
//! [`repair_stats`]: ncl::NclFile::repair_stats

use bench::{calibrated_testbed, f1, header, quick, row, BenchJson, RecoveryPhases, NCL_STAGES};
use ncl::NclLib;
use sim::Stopwatch;
use telemetry::spans;

/// Reconstructs the detect and first-ack edges of the five-phase breakdown
/// from the span ring: detect runs from the tripping record's staging until
/// the repair root opens; first-ack from the repair root closing until the
/// record's quorum ack (its `ncl.write` root closes). Falls back to the
/// wall-clock residual when a root is missing (tracing raced the ack).
fn edge_phases(ring: &[telemetry::Span], wall_ns: u64, middle_ns: u64) -> (u64, u64) {
    let repair = ring
        .iter()
        .rev()
        .find(|s| s.name == spans::NCL_REPAIR && s.parent == 0);
    let write = ring
        .iter()
        .rev()
        .find(|s| s.name == spans::NCL_WRITE && s.parent == 0);
    let staged = write.and_then(|w| {
        ring.iter()
            .find(|s| s.trace == w.trace && s.name == spans::NCL_STAGE)
    });
    let detect = match (repair, staged) {
        (Some(r), Some(s)) => r.start_ns.saturating_sub(s.start_ns),
        _ => 0,
    };
    let first_ack = match (repair, write) {
        (Some(r), Some(w)) => w.end_ns.saturating_sub(r.end_ns),
        _ => wall_ns.saturating_sub(middle_ns + detect),
    };
    (detect, first_ack)
}

fn main() {
    let tb = calibrated_testbed();
    let log_bytes: usize = if quick() { 6 << 20 } else { 60 << 20 };
    let tel = tb.config().ncl.telemetry.clone();

    header(&format!(
        "Table 3: peer replacement breakdown for a {} log",
        bench::human_bytes(log_bytes as f64)
    ));
    row(&[
        "step".into(),
        "fresh (µs)".into(),
        "pooled (µs)".into(),
        "paper (µs)".into(),
    ]);

    let mut results = Vec::new();
    for pooled in [false, true] {
        let node = tb.add_app_node(&format!("t3-app-{pooled}"));
        let ncl = NclLib::new(
            &tb.cluster,
            node,
            &format!("t3-{pooled}"),
            tb.config().ncl.clone(),
            &tb.controller,
            &tb.registry,
        )
        .unwrap();
        let file = ncl.create("log", log_bytes).unwrap();
        // Fill the log.
        let chunk = vec![0x99u8; 1 << 20];
        let mut off = 0;
        while off < log_bytes {
            file.record(off as u64, &chunk).unwrap();
            off += chunk.len();
        }
        if pooled {
            // Warm the spare peers' pools: allocate-and-free a same-sized
            // region so the replacement hits the recycled-region fast path.
            let assigned = file.peer_names();
            let spare = tb
                .peers
                .iter()
                .find(|p| !assigned.contains(&p.name().to_string()))
                .expect("spare peer");
            let warm = ncl.create("warm", log_bytes).unwrap();
            // `warm` may or may not land on the spare; force it by creating
            // then releasing — freed regions go to each involved peer's pool.
            warm.release().unwrap();
            let _ = spare;
        }
        // Crash one assigned peer; the next record performs the repair.
        // Spans trace only the tripping record (tracing flips on here), so
        // the ring holds exactly the repair chain the breakdown needs.
        let victim = file.peer_names()[0].clone();
        let victim_node = tb.peer_named(&victim).unwrap().node();
        tb.cluster.crash(victim_node);
        tel.set_tracing(true);
        let sw = Stopwatch::start();
        file.record(0, b"trigger-repair").unwrap();
        let wall = sw.elapsed();
        let stats = file.repair_stats();
        let ring = tel.spans();
        tel.set_tracing(false);

        let ns = |d: std::time::Duration| d.as_nanos() as u64;
        let middle_ns =
            ns(stats.get_peer + stats.connect_mr + stats.catch_up + stats.update_ap_map);
        let (detect_ns, first_ack_ns) = edge_phases(&ring, ns(wall), middle_ns);
        let phases = RecoveryPhases {
            detect_ns,
            acquire_ns: ns(stats.get_peer + stats.connect_mr),
            catch_up_ns: ns(stats.catch_up),
            ap_map_ns: ns(stats.update_ap_map),
            first_ack_ns,
        };
        results.push((pooled, stats, wall, phases));
        tb.cluster.restart(victim_node);
    }

    let (_, fresh, fresh_wall, fresh_phases) = results
        .iter()
        .find(|(p, _, _, _)| !*p)
        .cloned()
        .expect("fresh run");
    let (_, pooled, pooled_wall, pooled_phases) = results
        .iter()
        .find(|(p, _, _, _)| *p)
        .cloned()
        .expect("pooled run");

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    row(&[
        "get new peer".into(),
        f1(us(fresh.get_peer)),
        f1(us(pooled.get_peer)),
        "3586".into(),
    ]);
    row(&[
        "connect + MR".into(),
        f1(us(fresh.connect_mr)),
        f1(us(pooled.connect_mr)),
        "64871".into(),
    ]);
    row(&[
        "catch up".into(),
        f1(us(fresh.catch_up)),
        f1(us(pooled.catch_up)),
        "23368".into(),
    ]);
    row(&[
        "update ap-map".into(),
        f1(us(fresh.update_ap_map)),
        f1(us(pooled.update_ap_map)),
        "4734".into(),
    ]);
    row(&[
        "total (wall)".into(),
        f1(us(fresh_wall)),
        f1(us(pooled_wall)),
        "96559".into(),
    ]);
    println!(
        "\npaper shape: MR registration dominates a fresh replacement; a pooled \
         pre-registered region cuts it dramatically (§5.4.3's 'much lower' case)"
    );

    let mut json = BenchJson::new("table3_peer_recovery");
    for (name, wall) in [("fresh", fresh_wall), ("pooled", pooled_wall)] {
        let wall_ns = wall.as_nanos() as f64;
        json.result(
            &format!("table3_peer_recovery/{name}"),
            wall_ns,
            1e9 / wall_ns,
        );
    }
    json.section(
        "recovery_phases",
        format!(
            "{{\n    \"fresh\": {},\n    \"pooled\": {}\n  }}",
            fresh_phases.to_json(),
            pooled_phases.to_json()
        ),
    );
    // The log fill ran through the full record pipeline, so the cumulative
    // NCL stage summaries are populated for the schema gate.
    json.stage_breakdown(&tel.snapshot(), &NCL_STAGES);
    json.write();
}
