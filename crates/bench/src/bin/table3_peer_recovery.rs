//! Table 3 — latency breakdown of replacing a failed log peer.
//!
//! An NCL file holds a 60 MB log (as in the paper); one of its peers
//! crashes; the next record detects the failure and replaces the peer
//! inline. Reported phases match the paper's table: get new peer from the
//! controller, connect + set up the memory region, catch the new peer up,
//! update the ap-map.
//!
//! Paper: 3.6 ms / 64.9 ms / 23.4 ms / 4.7 ms, total ≈ 96.6 ms — dominated
//! by fresh memory-region registration, with the caveat that a pooled
//! pre-registered region makes the common case much cheaper (which the
//! pooled-allocation row demonstrates).

use bench::{calibrated_testbed, f1, header, quick, row};
use ncl::NclLib;
use sim::Stopwatch;

fn main() {
    let tb = calibrated_testbed();
    let log_bytes: usize = if quick() { 6 << 20 } else { 60 << 20 };

    header(&format!(
        "Table 3: peer replacement breakdown for a {} log",
        bench::human_bytes(log_bytes as f64)
    ));
    row(&[
        "step".into(),
        "fresh (µs)".into(),
        "pooled (µs)".into(),
        "paper (µs)".into(),
    ]);

    let mut results = Vec::new();
    for pooled in [false, true] {
        let node = tb.add_app_node(&format!("t3-app-{pooled}"));
        let ncl = NclLib::new(
            &tb.cluster,
            node,
            &format!("t3-{pooled}"),
            tb.config().ncl.clone(),
            &tb.controller,
            &tb.registry,
        )
        .unwrap();
        let file = ncl.create("log", log_bytes).unwrap();
        // Fill the log.
        let chunk = vec![0x99u8; 1 << 20];
        let mut off = 0;
        while off < log_bytes {
            file.record(off as u64, &chunk).unwrap();
            off += chunk.len();
        }
        if pooled {
            // Warm the spare peers' pools: allocate-and-free a same-sized
            // region so the replacement hits the recycled-region fast path.
            let assigned = file.peer_names();
            let spare = tb
                .peers
                .iter()
                .find(|p| !assigned.contains(&p.name().to_string()))
                .expect("spare peer");
            let warm = ncl.create("warm", log_bytes).unwrap();
            // `warm` may or may not land on the spare; force it by creating
            // then releasing — freed regions go to each involved peer's pool.
            warm.release().unwrap();
            let _ = spare;
        }
        // Crash one assigned peer; the next record performs the repair.
        let victim = file.peer_names()[0].clone();
        let victim_node = tb.peer_named(&victim).unwrap().node();
        tb.cluster.crash(victim_node);
        let sw = Stopwatch::start();
        file.record(0, b"trigger-repair").unwrap();
        let wall = sw.elapsed();
        let stats = file.repair_stats();
        results.push((pooled, stats, wall));
        tb.cluster.restart(victim_node);
    }

    let (_, fresh, fresh_wall) = results
        .iter()
        .find(|(p, _, _)| !*p)
        .cloned()
        .expect("fresh run");
    let (_, pooled, pooled_wall) = results
        .iter()
        .find(|(p, _, _)| *p)
        .cloned()
        .expect("pooled run");

    let us = |d: std::time::Duration| d.as_secs_f64() * 1e6;
    row(&[
        "get new peer".into(),
        f1(us(fresh.get_peer)),
        f1(us(pooled.get_peer)),
        "3586".into(),
    ]);
    row(&[
        "connect + MR".into(),
        f1(us(fresh.connect_mr)),
        f1(us(pooled.connect_mr)),
        "64871".into(),
    ]);
    row(&[
        "catch up".into(),
        f1(us(fresh.catch_up)),
        f1(us(pooled.catch_up)),
        "23368".into(),
    ]);
    row(&[
        "update ap-map".into(),
        f1(us(fresh.update_ap_map)),
        f1(us(pooled.update_ap_map)),
        "4734".into(),
    ]);
    row(&[
        "total (wall)".into(),
        f1(us(fresh_wall)),
        f1(us(pooled_wall)),
        "96559".into(),
    ]);
    println!(
        "\npaper shape: MR registration dominates a fresh replacement; a pooled \
         pre-registered region cuts it dramatically (§5.4.3's 'much lower' case)"
    );
}
