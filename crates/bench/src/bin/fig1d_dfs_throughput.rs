//! Figure 1(d) — DFS sequential write throughput vs IO size.
//!
//! Writes a fixed volume to the DFS with synchronous IOs of different
//! sizes. The paper measures ~250 KB/s at 512 B and ~3 orders of magnitude
//! more at 64 MB on CephFS; small synchronous writes are catastrophically
//! slow, which is the asymmetry SplitFT's split design exploits.

use bench::{header, human_bytes, quick, row};
use dfs::{DfsCluster, DfsConfig};
use sim::{Cluster, Stopwatch};

fn main() {
    let cluster = Cluster::new();
    let dfs = DfsCluster::start(&cluster, DfsConfig::calibrated());
    let app = cluster.add_node("app");

    header("Figure 1(d): DFS sequential write throughput vs block size");
    row(&["block".into(), "ops".into(), "throughput".into()]);

    let sizes: &[usize] = &[512, 8 << 10, 64 << 10, 1 << 20, 8 << 20, 64 << 20];
    let mut first: Option<f64> = None;
    let mut last = 0.0;
    for &size in sizes {
        // Write enough blocks to smooth jitter, capped for the small sizes.
        let target_bytes = if size <= 64 << 10 { 2 << 20 } else { 128 << 20 };
        let target_bytes = if quick() {
            target_bytes / 4
        } else {
            target_bytes
        };
        let ops = (target_bytes / size).clamp(2, 512);
        let client = dfs.client(app);
        client.create("stream").unwrap();
        let data = vec![0x5Au8; size];
        let sw = Stopwatch::start();
        for i in 0..ops {
            client.write("stream", (i * size) as u64, &data).unwrap();
            client.fsync("stream").unwrap();
        }
        let secs = sw.elapsed().as_secs_f64();
        let tput = (ops * size) as f64 / secs;
        if first.is_none() {
            first = Some(tput);
        }
        last = tput;
        row(&[
            human_bytes(size as f64),
            ops.to_string(),
            format!("{}/s", human_bytes(tput)),
        ]);
        client.delete("stream").unwrap();
    }

    let ratio = last / first.unwrap_or(1.0);
    println!(
        "\n64MB vs 512B throughput ratio: {ratio:.0}x \
         (paper: ~3 orders of magnitude)"
    );
}
