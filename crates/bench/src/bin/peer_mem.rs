//! Peer memory plane smoke bench: allocator throughput, fleet region
//! population, and GC reclamation — the `BENCH_peer_mem.json` trend file
//! CI gates on.
//!
//! Three phases on one zero-latency testbed:
//!
//! 1. **Populate** — four tenants open 16 NCL files each (64 concurrent
//!    regions × replicas across the fleet) and write through them, so the
//!    NCL stage histograms carry real samples.
//! 2. **Allocate** — a scratch tenant runs open → write → unlink cycles
//!    as fast as the slab allocator turns regions around; the free-list
//!    re-key path makes this the allocator's steady-state throughput.
//! 3. **Reclaim** — one tenant's node crashes and every peer runs a GC
//!    sweep under a zero lease; the swept bytes are the
//!    `bytes_reclaimed_by_gc` trend value.
//!
//! Emits `BENCH_peer_mem.json` (schema-checked by `validate_bench_json`,
//! which requires `region_count >= 64` and a non-zero reclaim).

use std::time::{Duration, Instant};

use bench::{header, row, BenchJson, NCL_STAGES};
use splitfs::{Mode, OpenOptions, SplitFs, Testbed, TestbedConfig};

const TENANTS: usize = 4;
const FILES_PER_TENANT: usize = 16;
const ALLOC_CYCLES: usize = 200;

fn main() {
    let mut cfg = TestbedConfig::zero(6);
    // Zero lease so the reclaim phase needs no wall-clock wait; sweeps are
    // driven manually, so no GC thread either.
    cfg.ncl.peer_lease = Duration::ZERO;
    let telemetry = cfg.ncl.telemetry.clone();
    let tb = Testbed::start(cfg);

    // Phase 1: populate 64 concurrent files across four tenants.
    let mut tenants: Vec<(SplitFs, sim::NodeId)> = Vec::new();
    for t in 0..TENANTS {
        let (fs, node) = tb.mount(Mode::SplitFt, &format!("bench-tenant-{t}"));
        for f in 0..FILES_PER_TENANT {
            let file = fs
                .open(&format!("wal-{f:02}"), OpenOptions::create_ncl(1 << 12))
                .expect("open");
            for r in 0..4u32 {
                let chunk = format!("t{t}f{f:02}r{r}|");
                file.write_at((r as u64) * chunk.len() as u64, chunk.as_bytes())
                    .expect("populate write");
            }
        }
        tenants.push((fs, node));
    }
    let region_count: usize = tb.peers.iter().map(|p| p.region_count()).sum();
    let fleet_used: u64 = tb.peers.iter().map(|p| p.mem_used()).sum();

    // Phase 2: allocator turnaround on a scratch tenant.
    let (scratch, _) = tb.mount(Mode::SplitFt, "bench-scratch");
    let t0 = Instant::now();
    for i in 0..ALLOC_CYCLES {
        let name = format!("scratch-{i:03}");
        let file = scratch
            .open(&name, OpenOptions::create_ncl(1 << 12))
            .expect("scratch open");
        file.write_at(0, b"alloc-cycle").expect("scratch write");
        drop(file);
        scratch.unlink(&name).expect("scratch unlink");
    }
    let elapsed = t0.elapsed();
    let alloc_per_sec = ALLOC_CYCLES as f64 / elapsed.as_secs_f64();
    let alloc_mean_ns = elapsed.as_nanos() as f64 / ALLOC_CYCLES as f64;

    // Phase 3: crash one tenant and sweep the fleet.
    let (dead_fs, dead_node) = tenants.pop().expect("tenant to kill");
    tb.cluster.crash(dead_node);
    drop(dead_fs);
    let used_before: u64 = tb.peers.iter().map(|p| p.mem_used()).sum();
    let swept: usize = tb.peers.iter().map(|p| p.gc_sweep()).sum();
    let used_after: u64 = tb.peers.iter().map(|p| p.mem_used()).sum();
    let bytes_reclaimed = used_before - used_after;

    header("peer memory plane: allocation, population, GC reclaim");
    row(&[
        "regions hosted".to_string(),
        region_count.to_string(),
        format!("{fleet_used} B used"),
    ]);
    row(&[
        "alloc cycles/s".to_string(),
        format!("{alloc_per_sec:.0}"),
        format!("{alloc_mean_ns:.0} ns/cycle"),
    ]);
    row(&[
        "gc reclaimed".to_string(),
        format!("{swept} regions"),
        format!("{bytes_reclaimed} B"),
    ]);

    let mut json = BenchJson::new("peer_mem");
    json.result("alloc_cycle", alloc_mean_ns, alloc_per_sec);
    json.section(
        "peer_mem",
        format!(
            "{{\"region_count\": {region_count}, \"fleet_used_bytes\": {fleet_used}, \
             \"alloc_per_sec\": {alloc_per_sec:.1}, \"gc_swept_regions\": {swept}, \
             \"bytes_reclaimed_by_gc\": {bytes_reclaimed}}}"
        ),
    );
    json.stage_breakdown(&telemetry.snapshot(), &NCL_STAGES);
    json.write();
}
