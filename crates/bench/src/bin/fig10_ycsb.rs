//! Figure 10 — YCSB throughput (workloads A, B, C, D, F).
//!
//! Each application is loaded once per configuration and then runs the five
//! paper workloads back to back. Expected shape (§5.3): SplitFT within a
//! few percent of weak-app DFT everywhere (paper worst cases: RocksDB 3.2%,
//! Redis 2.9%, SQLite 10.8%); strong-app DFT an order of magnitude slower
//! on the write-heavy mixes (A, F), converging on read-heavy ones and
//! matching on read-only C — except Redis, whose single-threaded loop
//! head-of-line-blocks reads behind write flushes on every mix but C.
//!
//! Besides the console tables, emits `BENCH_fig10_ycsb.json`: one result
//! row per (app, mode, workload) with throughput and p50/p99 latency, plus
//! the NCL `stage_breakdown` — the same schema-validated trend format the
//! criterion benches use, so CI tracks the YCSB matrix too.

use std::collections::BTreeMap;

use bench::{
    calibrated_testbed, f1, header, mount_app, paper_modes, record_count, row, run_secs, AppKind,
    BenchJson, NCL_STAGES,
};
use ycsb::{LoadSpec, RunSpec, Runner, Workload};

fn main() {
    let tb = calibrated_testbed();
    let mut json = BenchJson::new("fig10_ycsb");

    for kind in AppKind::all() {
        let records = record_count(kind);
        let threads = kind.paper_threads();
        header(&format!(
            "Figure 10: YCSB throughput (KOps/s) — {} ({} records, {} clients)",
            kind.name(),
            records,
            threads
        ));

        // mode -> workload -> kops
        let mut table: BTreeMap<&'static str, BTreeMap<String, f64>> = BTreeMap::new();
        for (mode_name, mode) in paper_modes() {
            let app = mount_app(
                &tb,
                mode,
                kind,
                &format!("f10-{mode_name}").replace(' ', ""),
            );
            Runner::load(
                app.as_ref(),
                &LoadSpec {
                    record_count: records,
                    value_size: 100,
                    threads: threads.max(4),
                },
            )
            .expect("load");
            let mut loaded = records;
            for workload in Workload::paper_suite(records) {
                let report = Runner::run(
                    app.as_ref(),
                    &workload,
                    loaded,
                    &RunSpec {
                        threads,
                        duration: run_secs(),
                        value_size: 100,
                        sample_window: None,
                        seed: 0xF10,
                    },
                );
                // Settle background flush/compaction debt so the next
                // phase measures its own workload, not this one's tail.
                app.quiesce();
                // Workload D inserts extend the keyspace for later runs.
                loaded += report.ops.min((report.ops as f64 * 0.06) as u64);
                json.result_with_percentiles(
                    &format!(
                        "fig10_ycsb/{}/{}/{}",
                        kind.name(),
                        mode_name.replace(' ', "-"),
                        workload.name
                    ),
                    report.latency.mean_ns,
                    report.ops as f64 / report.elapsed.as_secs_f64(),
                    report.latency.p50_ns,
                    report.latency.p99_ns,
                );
                table
                    .entry(mode_name)
                    .or_default()
                    .insert(workload.name.to_string(), report.kops());
            }
        }

        let mut cols = vec!["workload".to_string()];
        cols.extend(paper_modes().iter().map(|(n, _)| n.to_string()));
        row(&cols);
        for w in ["a", "b", "c", "d", "f"] {
            let mut cols = vec![w.to_string()];
            for (mode_name, _) in paper_modes() {
                cols.push(f1(table[mode_name].get(w).copied().unwrap_or(0.0)));
            }
            row(&cols);
        }
        // Overheads of SplitFT vs weak (the paper's headline percentages).
        let mut worst = 0.0f64;
        for w in ["a", "b", "c", "d", "f"] {
            let weak = table["weak-app DFT"][w];
            let split = table["SplitFT"][w];
            if weak > 0.0 {
                worst = worst.max((weak - split) / weak * 100.0);
            }
        }
        println!(
            "worst-case SplitFT overhead vs weak: {:.1}% (paper: {}%)",
            worst,
            match kind {
                AppKind::Rocks => "0.1–3.2",
                AppKind::Redis => "2.9",
                AppKind::Sql => "10.8",
            }
        );
    }

    // The SplitFT runs exercised every NCL stage; stamp their cumulative
    // summaries so the trend file passes the schema gate.
    json.stage_breakdown(&tb.config().ncl.telemetry.snapshot(), &NCL_STAGES);
    json.write();
}
