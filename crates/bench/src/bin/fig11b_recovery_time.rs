//! Figure 11(b) — application recovery time.
//!
//! Each application builds a log (no flush/checkpoint in between, so the
//! full state must be replayed), the application server "crashes", and a
//! fresh instance recovers. SplitFT recovers the log from NCL (with the
//! get-peer / connect / rdma-read / sync-peer / parse breakdown), DFT from
//! the DFS, and the unrealistic `local ext4` baseline from local disk.
//!
//! Paper shape: all three are comparable (hundreds of ms for a 60 MB log,
//! dominated by application-level parsing); NCL is modestly slower than
//! DFS (4%–2x) because of its extra protocol steps.

use std::time::Duration;

use apps::miniredis::{Command, MiniRedis, RedisOptions};
use apps::minirocks::{MiniRocks, RocksOptions};
use apps::minisql::{MiniSql, SqlOptions};
use bench::{calibrated_testbed, f1, header, quick, row, AppKind};
use sim::Stopwatch;
use splitfs::{Mode, SplitFs, Testbed};

/// Writes roughly `target_bytes` of per-key payload into the app's log
/// without triggering flush/checkpoint (options sized generously).
fn build_log(app: AppKind, fs: SplitFs, target_bytes: usize) {
    let value = vec![0x77u8; 100];
    // MiniSql logs full page images per transaction, so fewer keys produce
    // the same log volume.
    let keys = match app {
        AppKind::Sql => target_bytes / 4200,
        _ => target_bytes / 150,
    };
    match app {
        AppKind::Rocks => {
            let opts = RocksOptions {
                memtable_bytes: 1 << 30,
                wal_capacity: target_bytes * 3,
                ..RocksOptions::default()
            };
            let db = MiniRocks::open(fs, "app/", opts).unwrap();
            for i in 0..keys {
                db.put(format!("key{i:08}").as_bytes(), &value).unwrap();
            }
        }
        AppKind::Redis => {
            let opts = RedisOptions {
                aof_capacity: target_bytes * 3,
                rewrite_threshold: 1 << 30,
                ..RedisOptions::default()
            };
            let r = MiniRedis::open(fs, "app/", opts).unwrap();
            for i in 0..keys {
                r.execute(Command::Set(format!("key{i:08}"), value.clone()))
                    .unwrap();
            }
        }
        AppKind::Sql => {
            let opts = SqlOptions {
                npages: 512,
                wal_capacity: target_bytes * 3,
                checkpoint_threshold: 1 << 30,
                ..SqlOptions::default()
            };
            let db = MiniSql::open(fs, "app/", opts).unwrap();
            for i in 0..keys {
                db.put(format!("key{i:08}").as_bytes(), &value).unwrap();
            }
        }
    }
}

/// Reopens the application, timing the recovery.
fn recover(app: AppKind, fs: SplitFs, target_bytes: usize) -> Duration {
    let sw = Stopwatch::start();
    match app {
        AppKind::Rocks => {
            let opts = RocksOptions {
                memtable_bytes: 1 << 30,
                wal_capacity: target_bytes * 3,
                ..RocksOptions::default()
            };
            let _db = MiniRocks::open(fs, "app/", opts).unwrap();
        }
        AppKind::Redis => {
            let opts = RedisOptions {
                aof_capacity: target_bytes * 3,
                rewrite_threshold: 1 << 30,
                ..RedisOptions::default()
            };
            let _r = MiniRedis::open(fs, "app/", opts).unwrap();
        }
        AppKind::Sql => {
            let opts = SqlOptions {
                npages: 512,
                wal_capacity: target_bytes * 3,
                checkpoint_threshold: 1 << 30,
                ..SqlOptions::default()
            };
            let _db = MiniSql::open(fs, "app/", opts).unwrap();
        }
    }
    sw.elapsed()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    // The paper recovers a 60 MB log; scale down for the simulated host.
    let target = if quick() { 1 << 20 } else { 6 << 20 };

    header(&format!(
        "Figure 11(b): recovery time for a {} log (ms)",
        bench::human_bytes(target as f64)
    ));
    row(&[
        "app".into(),
        "config".into(),
        "total".into(),
        "get peer".into(),
        "connect".into(),
        "rdma read".into(),
        "sync peer".into(),
        "parse".into(),
    ]);

    for kind in AppKind::all() {
        for (name, mode) in [("SplitFT", Mode::SplitFt), ("DFT", Mode::StrongDft)] {
            let tb: Testbed = calibrated_testbed();
            let app_id = format!("f11b-{}-{name}", kind.name());
            let (fs, node) = tb.mount(mode, &app_id);
            build_log(kind, fs, target);
            tb.cluster.crash(node);
            let (fs2, _) = tb.mount(mode, &app_id);
            let total = recover(kind, fs2.clone(), target);
            if let Some(stats) = fs2.last_ncl_recovery() {
                let parse = total
                    .saturating_sub(stats.get_peer)
                    .saturating_sub(stats.connect)
                    .saturating_sub(stats.rdma_read)
                    .saturating_sub(stats.sync_peer);
                row(&[
                    kind.name().into(),
                    name.into(),
                    f1(ms(total)),
                    f1(ms(stats.get_peer)),
                    f1(ms(stats.connect)),
                    f1(ms(stats.rdma_read)),
                    f1(ms(stats.sync_peer)),
                    f1(ms(parse)),
                ]);
            } else {
                row(&[
                    kind.name().into(),
                    name.into(),
                    f1(ms(total)),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    f1(ms(total)),
                ]);
            }
        }
        // Local ext4 baseline: same store, cold page cache.
        let tb = calibrated_testbed();
        let (fs, _) = tb.mount(Mode::Local, &format!("f11b-{}-local", kind.name()));
        build_log(kind, fs.clone(), target);
        // Evict the page cache to model a reboot.
        for path in fs.list("").unwrap() {
            if let Some(local) = fs_local(&fs) {
                local.drop_cache(&path);
            }
        }
        let total = recover(kind, fs, target);
        row(&[
            kind.name().into(),
            "local ext4".into(),
            f1(ms(total)),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            f1(ms(total)),
        ]);
    }
    println!(
        "\npaper shape: NCL recovery within ~2x of DFS; both within the same order as \
         local ext4; application-level parse dominates"
    );
}

/// The Local mode facade shares one LocalFs; reach it for cache eviction.
fn fs_local(fs: &SplitFs) -> Option<dfs::LocalFs> {
    fs.local_store()
}
