//! Figure 11(b) — application recovery time.
//!
//! Each application builds a log (no flush/checkpoint in between, so the
//! full state must be replayed), the application server "crashes", and a
//! fresh instance recovers. SplitFT recovers the log from NCL (with the
//! get-peer / connect / rdma-read / sync-peer / parse breakdown), DFT from
//! the DFS, and the unrealistic `local ext4` baseline from local disk.
//!
//! Paper shape: all three are comparable (hundreds of ms for a 60 MB log,
//! dominated by application-level parsing); NCL is modestly slower than
//! DFS (4%–2x) because of its extra protocol steps.
//!
//! Besides the console table, emits `BENCH_fig11b_recovery_time.json`
//! (schema v2): one result row per (app, config) with the recovery wall
//! time, plus a `recovery_phases` section mapping each run onto the
//! five-phase breakdown (detect → acquire → catch-up → ap-map →
//! first-ack): detect is the crash-to-remount interval, acquire is
//! get-peer + connect, catch-up the RDMA read-back, ap-map the peer
//! resynchronisation ([`RecoveryStats::sync_peer`] — catch-up of stale
//! peers + the ap-map update), and first-ack the application-level parse
//! until it serves again. Non-NCL configs recover from a file image, so
//! everything lands in detect + first-ack.
//!
//! [`RecoveryStats::sync_peer`]: ncl::RecoveryStats

use std::time::Duration;

use apps::miniredis::{Command, MiniRedis, RedisOptions};
use apps::minirocks::{MiniRocks, RocksOptions};
use apps::minisql::{MiniSql, SqlOptions};
use bench::{
    calibrated_testbed, f1, header, quick, row, AppKind, BenchJson, RecoveryPhases, NCL_STAGES,
};
use sim::Stopwatch;
use splitfs::{Mode, SplitFs, Testbed};

/// Writes roughly `target_bytes` of per-key payload into the app's log
/// without triggering flush/checkpoint (options sized generously).
fn build_log(app: AppKind, fs: SplitFs, target_bytes: usize) {
    let value = vec![0x77u8; 100];
    // MiniSql logs full page images per transaction, so fewer keys produce
    // the same log volume.
    let keys = match app {
        AppKind::Sql => target_bytes / 4200,
        _ => target_bytes / 150,
    };
    match app {
        AppKind::Rocks => {
            let opts = RocksOptions {
                memtable_bytes: 1 << 30,
                wal_capacity: target_bytes * 3,
                ..RocksOptions::default()
            };
            let db = MiniRocks::open(fs, "app/", opts).unwrap();
            for i in 0..keys {
                db.put(format!("key{i:08}").as_bytes(), &value).unwrap();
            }
        }
        AppKind::Redis => {
            let opts = RedisOptions {
                aof_capacity: target_bytes * 3,
                rewrite_threshold: 1 << 30,
                ..RedisOptions::default()
            };
            let r = MiniRedis::open(fs, "app/", opts).unwrap();
            for i in 0..keys {
                r.execute(Command::Set(format!("key{i:08}"), value.clone()))
                    .unwrap();
            }
        }
        AppKind::Sql => {
            let opts = SqlOptions {
                npages: 512,
                wal_capacity: target_bytes * 3,
                checkpoint_threshold: 1 << 30,
                ..SqlOptions::default()
            };
            let db = MiniSql::open(fs, "app/", opts).unwrap();
            for i in 0..keys {
                db.put(format!("key{i:08}").as_bytes(), &value).unwrap();
            }
        }
    }
}

/// Reopens the application, timing the recovery.
fn recover(app: AppKind, fs: SplitFs, target_bytes: usize) -> Duration {
    let sw = Stopwatch::start();
    match app {
        AppKind::Rocks => {
            let opts = RocksOptions {
                memtable_bytes: 1 << 30,
                wal_capacity: target_bytes * 3,
                ..RocksOptions::default()
            };
            let _db = MiniRocks::open(fs, "app/", opts).unwrap();
        }
        AppKind::Redis => {
            let opts = RedisOptions {
                aof_capacity: target_bytes * 3,
                rewrite_threshold: 1 << 30,
                ..RedisOptions::default()
            };
            let _r = MiniRedis::open(fs, "app/", opts).unwrap();
        }
        AppKind::Sql => {
            let opts = SqlOptions {
                npages: 512,
                wal_capacity: target_bytes * 3,
                checkpoint_threshold: 1 << 30,
                ..SqlOptions::default()
            };
            let _db = MiniSql::open(fs, "app/", opts).unwrap();
        }
    }
    sw.elapsed()
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn ns(d: Duration) -> u64 {
    d.as_nanos() as u64
}

fn main() {
    // The paper recovers a 60 MB log; scale down for the simulated host.
    let target = if quick() { 1 << 20 } else { 6 << 20 };

    header(&format!(
        "Figure 11(b): recovery time for a {} log (ms)",
        bench::human_bytes(target as f64)
    ));
    row(&[
        "app".into(),
        "config".into(),
        "total".into(),
        "get peer".into(),
        "connect".into(),
        "rdma read".into(),
        "sync peer".into(),
        "parse".into(),
    ]);

    let mut json = BenchJson::new("fig11b_recovery_time");
    let mut phase_rows: Vec<(String, RecoveryPhases)> = Vec::new();
    // Snapshot of the last SplitFT testbed: its log build ran through the
    // full NCL record pipeline, populating every stage histogram for the
    // trend file's schema gate.
    let mut stage_snap: Option<telemetry::TelemetrySnapshot> = None;

    let mut emit =
        |json: &mut BenchJson, label: String, total: Duration, phases: RecoveryPhases| {
            let total_ns = ns(total) as f64;
            json.result(
                &format!("fig11b_recovery_time/{label}"),
                total_ns,
                1e9 / total_ns,
            );
            phase_rows.push((label, phases));
        };

    for kind in AppKind::all() {
        for (name, mode) in [("SplitFT", Mode::SplitFt), ("DFT", Mode::StrongDft)] {
            let tb: Testbed = calibrated_testbed();
            let app_id = format!("f11b-{}-{name}", kind.name());
            let (fs, node) = tb.mount(mode, &app_id);
            build_log(kind, fs, target);
            tb.cluster.crash(node);
            // The crash-to-remount interval is the breakdown's detect
            // phase: noticing the dead server and re-establishing a mount.
            let sw = Stopwatch::start();
            let (fs2, _) = tb.mount(mode, &app_id);
            let detect = sw.elapsed();
            let total = recover(kind, fs2.clone(), target);
            let label = format!("{}/{name}", kind.name());
            if let Some(stats) = fs2.last_ncl_recovery() {
                let parse = total
                    .saturating_sub(stats.get_peer)
                    .saturating_sub(stats.connect)
                    .saturating_sub(stats.rdma_read)
                    .saturating_sub(stats.sync_peer);
                row(&[
                    kind.name().into(),
                    name.into(),
                    f1(ms(total)),
                    f1(ms(stats.get_peer)),
                    f1(ms(stats.connect)),
                    f1(ms(stats.rdma_read)),
                    f1(ms(stats.sync_peer)),
                    f1(ms(parse)),
                ]);
                emit(
                    &mut json,
                    label,
                    total,
                    RecoveryPhases {
                        detect_ns: ns(detect),
                        acquire_ns: ns(stats.get_peer + stats.connect),
                        catch_up_ns: ns(stats.rdma_read),
                        ap_map_ns: ns(stats.sync_peer),
                        first_ack_ns: ns(parse),
                    },
                );
            } else {
                row(&[
                    kind.name().into(),
                    name.into(),
                    f1(ms(total)),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    f1(ms(total)),
                ]);
                emit(
                    &mut json,
                    label,
                    total,
                    RecoveryPhases {
                        detect_ns: ns(detect),
                        first_ack_ns: ns(total),
                        ..RecoveryPhases::default()
                    },
                );
            }
            if name == "SplitFT" {
                stage_snap = Some(tb.config().ncl.telemetry.snapshot());
            }
        }
        // Local ext4 baseline: same store, cold page cache.
        let tb = calibrated_testbed();
        let (fs, _) = tb.mount(Mode::Local, &format!("f11b-{}-local", kind.name()));
        build_log(kind, fs.clone(), target);
        // Evict the page cache to model a reboot.
        let sw = Stopwatch::start();
        for path in fs.list("").unwrap() {
            if let Some(local) = fs_local(&fs) {
                local.drop_cache(&path);
            }
        }
        let detect = sw.elapsed();
        let total = recover(kind, fs, target);
        row(&[
            kind.name().into(),
            "local ext4".into(),
            f1(ms(total)),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            f1(ms(total)),
        ]);
        emit(
            &mut json,
            format!("{}/local-ext4", kind.name()),
            total,
            RecoveryPhases {
                detect_ns: ns(detect),
                first_ack_ns: ns(total),
                ..RecoveryPhases::default()
            },
        );
    }
    println!(
        "\npaper shape: NCL recovery within ~2x of DFS; both within the same order as \
         local ext4; application-level parse dominates"
    );

    let rendered: Vec<String> = phase_rows
        .iter()
        .map(|(label, phases)| {
            format!(
                "    \"{}\": {}",
                telemetry::json_escape(label),
                phases.to_json()
            )
        })
        .collect();
    json.section(
        "recovery_phases",
        format!("{{\n{}\n  }}", rendered.join(",\n")),
    );
    json.stage_breakdown(
        stage_snap
            .as_ref()
            .expect("SplitFT runs populate NCL stages"),
        &NCL_STAGES,
    );
    json.write();
}

/// The Local mode facade shares one LocalFs; reach it for cache eviction.
fn fs_local(fs: &SplitFs) -> Option<dfs::LocalFs> {
    fs.local_store()
}
