//! Offline causal-trace analyzer for NCL JSONL trace files.
//!
//! Replays the `{"type":"span"}` / `{"type":"event"}` JSONL stream a run
//! wrote through `Telemetry::set_jsonl_sink` (the chaos harness and the
//! splitfs testbed both emit this format), groups spans by `trace_id`, and
//! verifies the per-write invariants of the protocol through
//! `telemetry::analyze` — the same checker the integration tests assert
//! with in-process:
//!
//! * every rooted span resolves its parent (no orphans);
//! * every acked write (an `ncl.write` root) carries staging, a doorbell,
//!   and wire/catch-up coverage on at least a write quorum of peers;
//! * no write roots inside a degraded window outside reattach replay;
//! * per epoch, catch-up finishes before the ap-map moves;
//! * ap-map epochs are monotone per file.
//!
//! Usage:
//!
//! ```text
//! trace_analyzer [--quorum N] FILE...           analyze files, print reports
//! trace_analyzer [--quorum N] --check DIR       analyze every trace-*.jsonl
//! trace_analyzer --chrome OUT.json FILE         also export a Chrome trace
//! trace_analyzer --selfcheck                    exercise exporters, no input
//! ```
//!
//! Exit status: 0 when every file is clean, 1 on any violation, orphan span
//! or malformed line, 2 on usage or I/O errors. CI runs `--check` over the
//! chaos matrix's trace artifacts and `--selfcheck` in the lint job.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use telemetry::analyze::{analyze, parse_jsonl, TraceReport};
use telemetry::export::chrome;
use telemetry::{spans, Telemetry};

struct Options {
    quorum: usize,
    check_dir: Option<PathBuf>,
    chrome_out: Option<PathBuf>,
    selfcheck: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        quorum: 2,
        check_dir: None,
        chrome_out: None,
        selfcheck: false,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quorum" => {
                let v = args.next().ok_or("--quorum needs a value")?;
                opts.quorum = v.parse().map_err(|_| format!("bad quorum: {v}"))?;
                if opts.quorum == 0 {
                    return Err("quorum must be at least 1".into());
                }
            }
            "--check" => {
                let v = args.next().ok_or("--check needs a directory")?;
                opts.check_dir = Some(PathBuf::from(v));
            }
            "--chrome" => {
                let v = args.next().ok_or("--chrome needs an output path")?;
                opts.chrome_out = Some(PathBuf::from(v));
            }
            "--selfcheck" => opts.selfcheck = true,
            "--help" | "-h" => {
                return Err(
                    "usage: trace_analyzer [--quorum N] [--check DIR | FILE...] \
                     [--chrome OUT.json] [--selfcheck]"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag: {other}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

/// Analyzes one trace file; returns the report, or an error string for
/// unreadable or malformed input (CI treats both as failures — a truncated
/// artifact must not pass as "no violations found").
fn analyze_file(path: &Path, quorum: usize) -> Result<TraceReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (spans, events) = parse_jsonl(&text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(analyze(&spans, &events, quorum))
}

/// Builds a tiny synthetic span tree through a real `Telemetry` handle and
/// round-trips it through both exporters: the Chrome trace must validate
/// and the analyzer must see one clean acked write. Guards the export
/// schema without needing a workload.
fn selfcheck() -> Result<(), String> {
    let tel = Telemetry::new();
    let t0 = std::time::Instant::now();
    let trace = tel.next_trace_id();
    tel.span_auto(trace, trace, spans::NCL_STAGE, "self/wal", 1, t0, t0);
    tel.span_auto(trace, trace, spans::NCL_DOORBELL, "self/wal", 1, t0, t0);
    tel.span_auto(trace, trace, spans::NCL_WIRE_PEER, "peer-0", 1, t0, t0);
    tel.span_auto(trace, trace, spans::NCL_WIRE_PEER, "peer-1", 1, t0, t0);
    tel.span_auto(trace, trace, spans::NCL_ACK, "self/wal", 1, t0, t0);
    tel.span(trace, trace, 0, spans::NCL_WRITE, "self/wal", 1, t0, t0);

    let all = tel.spans();
    let doc = chrome::render(&all);
    let n = chrome::validate(&doc).map_err(|e| format!("chrome trace invalid: {e}"))?;
    if n < all.len() {
        return Err(format!("chrome trace dropped spans: {n} < {}", all.len()));
    }
    let report = analyze(&all, &tel.events(), 2);
    if !report.ok() || report.acked_writes != 1 || report.orphan_spans != 0 {
        return Err(format!("analyzer selfcheck failed:\n{}", report.render()));
    }
    println!("selfcheck ok: {} spans exported and verified", all.len());
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    if opts.selfcheck {
        return match selfcheck() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut files = opts.files.clone();
    if let Some(dir) = &opts.check_dir {
        let entries = match std::fs::read_dir(dir) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("{}: {e}", dir.display());
                return ExitCode::from(2);
            }
        };
        let mut found: Vec<PathBuf> = entries
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("trace-") && n.ends_with(".jsonl"))
            })
            .collect();
        found.sort();
        if found.is_empty() {
            // An empty artifact directory means the run never wrote traces —
            // failing loudly here is the point of the CI check.
            eprintln!("{}: no trace-*.jsonl files found", dir.display());
            return ExitCode::FAILURE;
        }
        files.extend(found);
    }
    if files.is_empty() {
        eprintln!("no input; pass trace files, --check DIR, or --selfcheck");
        return ExitCode::from(2);
    }

    let mut failed = false;
    for path in &files {
        match analyze_file(path, opts.quorum) {
            Ok(report) => {
                let clean = report.ok() && report.orphan_spans == 0;
                println!(
                    "{}: {}",
                    path.display(),
                    if clean { "clean" } else { "FAILED" }
                );
                print!("{}", report.render());
                if !clean {
                    failed = true;
                }
                if let Some(out) = &opts.chrome_out {
                    let text = std::fs::read_to_string(path).expect("already read once");
                    let (spans, _) = parse_jsonl(&text).expect("already parsed once");
                    let doc = chrome::render(&spans);
                    if let Err(e) = chrome::validate(&doc) {
                        eprintln!("{}: chrome export invalid: {e}", out.display());
                        failed = true;
                    } else if let Err(e) = std::fs::write(out, doc) {
                        eprintln!("{}: {e}", out.display());
                        failed = true;
                    } else {
                        println!("chrome trace written to {}", out.display());
                    }
                }
            }
            Err(e) => {
                eprintln!("{e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
