//! Figure 11(a) — read latency during recovery.
//!
//! Log files are only read when an application recovers. This benchmark
//! sequentially reads a recovered log at sizes from 128 B to 8 KB through
//! four paths:
//!
//! * `NCL`            — the recovered local image (the prefetch cost — the
//!   recovery's RDMA read of the whole region — is amortised over the
//!   reads, as in the paper);
//! * `NCL no prefetch`— a 1-sided RDMA read per application read;
//! * `DFS`            — CephFS-style client with sequential readahead;
//! * `DFS direct IO`  — cache and readahead bypassed.
//!
//! Paper shape: NCL (with prefetch) beats DFS (4x at 128 B); without
//! prefetch it is worse than DFS (4.5x at 128 B); direct IO is far worse.

use bench::{calibrated_testbed, f1, header, quick, row};
use ncl::NclLib;
use sim::Stopwatch;
use splitfs::Mode;

fn main() {
    let tb = calibrated_testbed();
    let file_bytes: usize = if quick() { 1 << 20 } else { 4 << 20 };
    let sizes = [128usize, 512, 2048, 8192];
    let max_ops = if quick() { 1_000 } else { 8_000 };

    // Build the NCL log, then "crash" and recover it from a new node.
    let writer_node = tb.add_app_node("fig11a-writer");
    let writer = NclLib::new(
        &tb.cluster,
        writer_node,
        "fig11a",
        tb.config().ncl.clone(),
        &tb.controller,
        &tb.registry,
    )
    .unwrap();
    {
        let file = writer.create("log", file_bytes).unwrap();
        let chunk = vec![0x42u8; 64 << 10];
        let mut off = 0usize;
        while off < file_bytes {
            let n = chunk.len().min(file_bytes - off);
            file.record(off as u64, &chunk[..n]).unwrap();
            off += n;
        }
    }
    tb.cluster.crash(writer_node);
    drop(writer);

    let reader_node = tb.add_app_node("fig11a-reader");
    let reader = NclLib::new(
        &tb.cluster,
        reader_node,
        "fig11a",
        tb.config().ncl.clone(),
        &tb.controller,
        &tb.registry,
    )
    .unwrap();
    let recovered = reader.recover("log").unwrap();
    // The prefetch cost amortised over reads is the RDMA fetch of the file
    // image (the rest of recovery — peer lookup, catch-up, ap-map — happens
    // once per restart regardless of how the log is then read).
    let prefetch_total = recovered.recovery_stats().rdma_read;

    // Build the same log on the DFS for the comparison lines.
    let (dfs_fs, _) = tb.mount(Mode::StrongDft, "fig11a-dfs");
    let dfs_file = dfs_fs.open("log", splitfs::OpenOptions::create()).unwrap();
    {
        let chunk = vec![0x42u8; 256 << 10];
        let mut off = 0usize;
        while off < file_bytes {
            let n = chunk.len().min(file_bytes - off);
            dfs_file.write_at(off as u64, &chunk[..n]).unwrap();
            off += n;
        }
        dfs_file.fsync().unwrap();
    }

    header("Figure 11(a): recovery read latency (average µs per read)");
    row(&[
        "size".into(),
        "NCL".into(),
        "NCL no-prefetch".into(),
        "DFS".into(),
        "DFS direct".into(),
    ]);

    for &size in &sizes {
        let ops = (file_bytes / size).min(max_ops);

        // NCL with prefetch: local buffer reads + amortised prefetch.
        let sw = Stopwatch::start();
        for i in 0..ops {
            let _ = recovered.read((i * size) as u64, size);
        }
        // Amortise the prefetch over the number of reads a full-file pass
        // at this size would make (as the paper does).
        let full_pass_reads = (file_bytes / size).max(1);
        let ncl_us = sw.elapsed_micros_f64() / ops as f64
            + prefetch_total.as_secs_f64() * 1e6 / full_pass_reads as f64;

        // NCL without prefetch: one RDMA read per application read.
        let remote_ops = ops.min(1_000);
        let sw = Stopwatch::start();
        for i in 0..remote_ops {
            let _ = recovered.read_remote((i * size) as u64, size).unwrap();
        }
        let ncl_np_us = sw.elapsed_micros_f64() / remote_ops as f64;

        // DFS with readahead: fresh mount per size (cold cache).
        let (fs, _) = tb.mount(Mode::StrongDft, &format!("fig11a-dfs-{size}"));
        let f = fs.open("log", splitfs::OpenOptions::plain()).unwrap();
        let sw = Stopwatch::start();
        for i in 0..ops {
            let _ = f.read((i * size) as u64, size).unwrap();
        }
        let dfs_us = sw.elapsed_micros_f64() / ops as f64;

        // DFS direct IO (no cache, no readahead).
        let direct_ops = ops.min(200);
        let sw = Stopwatch::start();
        for i in 0..direct_ops {
            let _ = fs
                .dfs()
                .unwrap()
                .read_direct("log", (i * size) as u64, size)
                .unwrap();
        }
        let direct_us = sw.elapsed_micros_f64() / direct_ops as f64;

        row(&[
            format!("{size}B"),
            f1(ncl_us),
            f1(ncl_np_us),
            f1(dfs_us),
            f1(direct_us),
        ]);
    }

    println!(
        "\npaper shape @128B: NCL ≈ 4x faster than DFS; NCL-no-prefetch ≈ 4.5x slower \
         than DFS; DFS direct IO slowest by far"
    );
}
