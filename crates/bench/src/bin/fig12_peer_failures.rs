//! Figure 12 — application throughput under peer failures.
//!
//! RocksDB in SplitFT with f = 1 (three peers) runs a write-only workload
//! while the harness samples real-time throughput every 10 ms. Two peers
//! are crashed simultaneously (writes stall until NCL finds and catches up
//! replacements — the paper measures a ~100 ms stall), then a third peer is
//! crashed later (no availability impact, only a catch-up blip).

use std::time::Duration;

use bench::{calibrated_testbed, header, mount_app, quick, AppKind};
use splitfs::Mode;
use ycsb::{LoadSpec, RunSpec, Runner, Workload};

fn main() {
    let tb = calibrated_testbed(); // 5 peers: 3 assigned + 2 spares.
    let records = 2_000;
    let total = if quick() {
        Duration::from_secs(4)
    } else {
        Duration::from_secs(8)
    };
    let crash2_at = total / 4;
    let crash1_at = total / 2;

    let app = mount_app(&tb, Mode::SplitFt, AppKind::Rocks, "fig12");
    Runner::load(
        app.as_ref(),
        &LoadSpec {
            record_count: records,
            value_size: 100,
            threads: 8,
        },
    )
    .expect("load");

    header("Figure 12: real-time throughput under peer failures (10 ms samples)");
    println!(
        "events: t={:.1}s crash 2 peers simultaneously; t={:.1}s crash 1 more peer",
        crash2_at.as_secs_f64(),
        crash1_at.as_secs_f64()
    );

    // Failure injector runs alongside the workload.
    let cluster = tb.cluster.clone();
    let peer_nodes: Vec<_> = tb.peers.iter().map(|p| p.node()).collect();
    let injector = std::thread::spawn(move || {
        std::thread::sleep(crash2_at);
        // The WAL's three peers are the highest-memory ones: peers 0..3.
        cluster.crash(peer_nodes[0]);
        cluster.crash(peer_nodes[1]);
        std::thread::sleep(crash1_at - crash2_at);
        cluster.crash(peer_nodes[2]);
    });

    let report = Runner::run(
        app.as_ref(),
        &Workload::write_only(records),
        records,
        &RunSpec {
            threads: 12,
            duration: total,
            value_size: 100,
            sample_window: Some(Duration::from_millis(10)),
            seed: 0xF12,
        },
    );
    injector.join().unwrap();

    println!("\n   t(s)   KOps/s");
    let mut stall_windows = 0;
    let steady: f64 = {
        let pre: Vec<f64> = report
            .series
            .iter()
            .filter(|(t, _)| *t < crash2_at.as_secs_f64() - 0.1)
            .map(|(_, v)| *v)
            .collect();
        pre.iter().sum::<f64>() / pre.len().max(1) as f64
    };
    for (t, ops) in &report.series {
        println!("{t:7.2}  {:8.1}", ops / 1e3);
        if *t >= crash2_at.as_secs_f64() && ops / steady.max(1.0) < 0.05 {
            stall_windows += 1;
        }
    }
    println!(
        "\nsteady-state ≈ {:.1} KOps/s; ~{} stalled 10 ms windows after the double \
         crash (paper: ~100 ms stall, then full recovery; the single crash later \
         causes only a catch-up blip)",
        steady / 1e3,
        stall_windows
    );
}
