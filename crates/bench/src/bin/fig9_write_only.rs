//! Figure 9 — latency vs throughput for a write-only workload.
//!
//! RocksDB and Redis: client-count sweep under strong-app DFT, weak-app DFT
//! and SplitFT; SQLite: single client (its performance does not scale with
//! threads, §5). Expected shape: SplitFT tracks (or slightly beats) weak at
//! every point; strong sits ~2 orders of magnitude below with far higher
//! latency.

use bench::{
    calibrated_testbed, f1, header, mount_app, paper_modes, quick, record_count, row, run_secs,
    AppKind,
};
use ycsb::{LoadSpec, RunSpec, Runner, Workload};

fn main() {
    let tb = calibrated_testbed();
    let client_sweep: &[usize] = if quick() {
        &[4, 12]
    } else {
        &[1, 4, 8, 16, 24]
    };

    for kind in AppKind::all() {
        let records = record_count(kind) / 2;
        header(&format!(
            "Figure 9: write-only latency vs throughput — {}",
            kind.name()
        ));
        row(&[
            "config".into(),
            "clients".into(),
            "KOps/s".into(),
            "avg µs".into(),
            "p99 µs".into(),
        ]);
        let clients_list: Vec<usize> = match kind {
            AppKind::Sql => vec![1],
            _ => client_sweep.to_vec(),
        };
        for (mode_name, mode) in paper_modes() {
            for &clients in &clients_list {
                let app = mount_app(
                    &tb,
                    mode,
                    kind,
                    &format!("f9-{mode_name}-{clients}").replace(' ', ""),
                );
                Runner::load(
                    app.as_ref(),
                    &LoadSpec {
                        record_count: records,
                        value_size: 100,
                        threads: clients.max(4),
                    },
                )
                .expect("load");
                let report = Runner::run(
                    app.as_ref(),
                    &Workload::write_only(records),
                    records,
                    &RunSpec {
                        threads: clients,
                        duration: run_secs(),
                        value_size: 100,
                        sample_window: None,
                        seed: 0xF19,
                    },
                );
                row(&[
                    mode_name.to_string(),
                    clients.to_string(),
                    f1(report.kops()),
                    f1(report.latency.mean_us()),
                    f1(report.latency.p99_ns as f64 / 1e3),
                ]);
            }
        }
    }
    println!(
        "\npaper shape: SplitFT ≈ weak-app DFT (RocksDB peak 266 vs ~250 KOps/s; Redis 100 vs \
         ~108); strong-app DFT ~2 orders of magnitude below both"
    );
}
