//! CI gate for the `BENCH_*.json` trend files.
//!
//! Validates each file against the schema the `bench` crate itself defines
//! ([`bench::validate_bench_json`]): current `schema_version`, non-empty
//! `results`, and a `stage_breakdown` carrying every NCL stage histogram
//! with samples. Keeping the check next to the emitter means a schema bump
//! updates the writer, the validator and CI in one place.
//!
//! Usage: `cargo run -p bench --bin validate_bench_json [paths…]`
//! (defaults to the checked-in trend files at the repo root).

use bench::validate_bench_json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() {
        [
            "ncl_pipeline",
            "ncl_batch",
            "ncl_mt",
            "latency_under_load",
            "fig10_ycsb",
            "fig11b_recovery_time",
            "table3_peer_recovery",
        ]
        .iter()
        .map(|b| {
            format!(
                concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_{}.json"),
                b
            )
        })
        .collect()
    } else {
        args
    };

    let mut failed = false;
    for path in &paths {
        let outcome = std::fs::read_to_string(path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|body| validate_bench_json(&body).map(|()| body));
        match outcome {
            Ok(body) => {
                let results = body.matches("\"id\":").count();
                println!("{path}: ok ({results} results)");
            }
            Err(e) => {
                eprintln!("{path}: FAIL: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
