//! CI perf-trajectory gate: diff a freshly emitted `BENCH_*.json` against
//! the checked-in trend file and fail on regression.
//!
//! The trend files record where performance *was*; this gate makes CI
//! enforce where it *is*. Every result row present in the baseline must
//! still exist in the fresh file and stay inside its tolerance band:
//!
//! - `per_second` (throughput) must keep at least `1 - tol` of the
//!   baseline — a drop beyond the band is a regression;
//! - `mean_ns`, `p50_ns`, `p99_ns` (latency) must not exceed the baseline
//!   by more than their band — tails get a wider one because they are the
//!   noisiest metric the harnesses report.
//!
//! The bands are per-metric, not global, and deliberately wide by default:
//! CI hosts differ from the machines that produced the checked-in numbers,
//! and smoke runs use short criterion windows, so the default gate catches
//! cliffs (a lost fast path, an accidental O(n²)), not noise. Tighten with
//! the env knobs when comparing like-for-like runs:
//!
//! - `BENCH_DIFF_TOL_THROUGHPUT` (default 0.5: fresh >= 50% of baseline)
//! - `BENCH_DIFF_TOL_MEAN`       (default 1.0: fresh <= 2x baseline)
//! - `BENCH_DIFF_TOL_TAIL`       (default 2.0: fresh <= 3x baseline)
//!
//! A result row that disappears from the fresh file is a regression (a
//! bench that silently stopped measuring is worse than a slow one); new
//! rows are reported but never fail. Improvements never fail.
//!
//! Usage: `cargo run -p bench --bin bench_diff -- <fresh.json> <baseline.json>`
//! Exits 0 when every shared row is inside its band, 1 otherwise.

use std::collections::BTreeMap;

/// One parsed result row: metric name → value, from the line-oriented JSON
/// [`bench::BenchJson`] emits (one `{"id": ...}` object per line).
type Row = BTreeMap<String, f64>;

/// Parses every result row of a `BENCH_*.json` body into `id → metrics`.
fn parse_rows(body: &str) -> BTreeMap<String, Row> {
    let mut rows = BTreeMap::new();
    for line in body.lines() {
        let Some(id) = field_str(line, "id") else {
            continue;
        };
        let mut row = Row::new();
        for metric in ["mean_ns", "per_second", "p50_ns", "p99_ns"] {
            if let Some(v) = field_num(line, metric) {
                row.insert(metric.to_string(), v);
            }
        }
        if !row.is_empty() {
            rows.insert(id, row);
        }
    }
    rows
}

/// Extracts `"key": "value"` from one line, unescaping nothing: ids are
/// compared verbatim between the two files, so escapes cancel out.
fn field_str(line: &str, key: &str) -> Option<String> {
    let rest = line.split(&format!("\"{key}\": \"")).nth(1)?;
    // The id may contain escaped quotes; scan to the first unescaped one.
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '\\' => {
                out.push(c);
                if let Some(next) = chars.next() {
                    out.push(next);
                }
            }
            '"' => return Some(out),
            _ => out.push(c),
        }
    }
    None
}

/// Extracts `"key": <number>` from one line.
fn field_num(line: &str, key: &str) -> Option<f64> {
    line.split(&format!("\"{key}\": "))
        .nth(1)?
        .split([',', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

/// Tolerance band for one metric, from its env knob or the default.
fn tolerance(metric: &str) -> f64 {
    let (var, default) = match metric {
        "per_second" => ("BENCH_DIFF_TOL_THROUGHPUT", 0.5),
        "mean_ns" | "p50_ns" => ("BENCH_DIFF_TOL_MEAN", 1.0),
        _ => ("BENCH_DIFF_TOL_TAIL", 2.0),
    };
    std::env::var(var)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Checks one metric of one row; returns a human-readable verdict when it
/// regressed past its band, `None` when it is inside (or improved).
fn regression(metric: &str, fresh: f64, base: f64) -> Option<String> {
    if base <= 0.0 {
        return None; // Degenerate baseline; nothing meaningful to gate.
    }
    let tol = tolerance(metric);
    let ratio = fresh / base;
    let bad = if metric == "per_second" {
        ratio < 1.0 - tol
    } else {
        ratio > 1.0 + tol
    };
    bad.then(|| {
        format!(
            "{metric} {fresh:.1} vs baseline {base:.1} ({ratio:.2}x, band {}{:.0}%)",
            if metric == "per_second" { "-" } else { "+" },
            tol * 100.0
        )
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [fresh_path, base_path] = &args[..] else {
        eprintln!("usage: bench_diff <fresh.json> <baseline.json>");
        std::process::exit(2);
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("{path}: unreadable: {e}");
            std::process::exit(2);
        })
    };
    let fresh = parse_rows(&read(fresh_path));
    let base = parse_rows(&read(base_path));
    if base.is_empty() {
        eprintln!("{base_path}: no result rows — not a BenchJson trend file?");
        std::process::exit(2);
    }

    let mut regressions = 0usize;
    let mut compared = 0usize;
    for (id, base_row) in &base {
        let Some(fresh_row) = fresh.get(id) else {
            println!("REGRESSION {id}: present in baseline, missing from fresh run");
            regressions += 1;
            continue;
        };
        for (metric, base_val) in base_row {
            let Some(fresh_val) = fresh_row.get(metric) else {
                println!("REGRESSION {id}: metric {metric} disappeared");
                regressions += 1;
                continue;
            };
            compared += 1;
            if let Some(why) = regression(metric, *fresh_val, *base_val) {
                println!("REGRESSION {id}: {why}");
                regressions += 1;
            }
        }
    }
    for id in fresh.keys() {
        if !base.contains_key(id) {
            println!("new (not gated): {id}");
        }
    }

    println!(
        "bench_diff: {} rows, {compared} metrics compared, {regressions} regression(s)",
        base.len()
    );
    if regressions > 0 {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema_version": 2,
  "bench": "demo",
  "results": [
    {"id": "demo/a", "mean_ns": 100.0, "per_second": 1000.0},
    {"id": "demo/b", "mean_ns": 200.0, "per_second": 500.0, "p50_ns": 150, "p99_ns": 900}
  ]
}
"#;

    #[test]
    fn parses_rows_and_metrics() {
        let rows = parse_rows(DOC);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows["demo/a"]["per_second"], 1000.0);
        assert_eq!(rows["demo/b"]["p99_ns"], 900.0);
        assert!(!rows["demo/a"].contains_key("p99_ns"));
    }

    #[test]
    fn escaped_quotes_in_ids_survive() {
        let body = r#"    {"id": "io/4KB \"quoted\"", "mean_ns": 1.0, "per_second": 2.0}"#;
        let rows = parse_rows(body);
        assert_eq!(rows.len(), 1);
        assert!(rows.keys().next().unwrap().contains("quoted"));
    }

    #[test]
    fn bands_gate_the_right_direction() {
        // Throughput: a drop past the band fails, a gain never does.
        assert!(regression("per_second", 400.0, 1000.0).is_some());
        assert!(regression("per_second", 600.0, 1000.0).is_none());
        assert!(regression("per_second", 5000.0, 1000.0).is_none());
        // Latency: growth past the band fails, shrinkage never does.
        assert!(regression("mean_ns", 2100.0, 1000.0).is_some());
        assert!(regression("mean_ns", 1900.0, 1000.0).is_none());
        assert!(regression("mean_ns", 10.0, 1000.0).is_none());
        // Tails get the widest band.
        assert!(regression("p99_ns", 2900.0, 1000.0).is_none());
        assert!(regression("p99_ns", 3100.0, 1000.0).is_some());
        // A zero baseline gates nothing.
        assert!(regression("per_second", 0.0, 0.0).is_none());
    }
}
