//! §4.6 — model-checking report.
//!
//! Reproduces the paper's methodology: exhaustively explores the NCL
//! replication/recovery model (the paper reports >4 M states), asserting
//! the durability condition in every reachable recovery, then re-runs with
//! each seeded bug and prints the counterexample traces the checker finds.
//! Three passes: the synchronous baseline (window 1), the pipelined window
//! (multiple records in flight, as `record_nowait` permits), and the
//! pipelined window with coalesced headers (batched submission — one header
//! message per flushed burst). In every pass the correct protocol must
//! satisfy the invariant across the full interleaving space, and every
//! seeded bug must be caught.

use bench::{header, quick};
use modelcheck::{check, BugMode, ModelConfig};

const BUGS: [BugMode; 3] = [
    BugMode::SeqBeforeData,
    BugMode::ApMapBeforeCatchup,
    BugMode::NoCatchupOnRecovery,
];

fn run_pass(writes: u8, crashes: u8, cap: usize, window: u8, coalesce: bool) {
    let mode = if coalesce {
        format!("window {window}, coalesced headers")
    } else {
        format!("window {window}")
    };
    let config = ModelConfig {
        max_writes: writes,
        crash_budget: crashes,
        peers: 4,
        bug: BugMode::None,
        max_states: cap,
        window,
        coalesce,
    };
    let start = std::time::Instant::now();
    let result = check(&config);
    println!(
        "correct protocol ({mode}): {} states, {} transitions explored in {:.1}s — {}",
        result.states_explored,
        result.transitions,
        start.elapsed().as_secs_f64(),
        match &result.violation {
            None => "no violation (invariant holds)".to_string(),
            Some(v) => format!("UNEXPECTED violation: {}", v.reason),
        }
    );
    assert!(result.violation.is_none(), "the correct protocol must pass");

    for bug in BUGS {
        let config = ModelConfig {
            max_writes: writes,
            crash_budget: crashes,
            peers: 4,
            bug,
            max_states: cap,
            window,
            coalesce,
        };
        let result = check(&config);
        match result.violation {
            Some(v) => {
                println!(
                    "\nseeded bug {bug:?} ({mode}): caught after {} states\n  reason: {}\n  trace ({} events):",
                    result.states_explored,
                    v.reason,
                    v.trace.len()
                );
                for event in &v.trace {
                    println!("    {event}");
                }
            }
            None => {
                println!("\nseeded bug {bug:?} ({mode}): NOT caught — checker defect!");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let (writes, crashes, cap) = if quick() {
        (2, 2, 0)
    } else {
        (3, 3, 6_000_000)
    };

    header("Model checking the NCL replication/recovery protocol (§4.6)");
    run_pass(writes, crashes, cap, 1, false);

    println!("\n-- pipelined-interleaving mode (records in flight > 1) --");
    run_pass(writes, crashes, cap, 2, false);

    println!("\n-- coalesced-header mode (batched submission, one header per burst) --");
    run_pass(writes, crashes, cap, 2, true);

    println!(
        "\npaper: >4M states explored; all three seeded bugs (seq-before-data, \
         ap-map-before-catch-up, missing lagging-peer sync) flagged — reproduced, \
         in the synchronous, pipelined, and coalesced-header submission modes."
    );
}
