//! §4.6 — model-checking report.
//!
//! Reproduces the paper's methodology: exhaustively explores the NCL
//! replication/recovery model (the paper reports >4 M states), asserting
//! the durability condition in every reachable recovery, then re-runs with
//! each seeded bug and prints the counterexample traces the checker finds.
//! A second pass relaxes the issue guard to the pipelined window (multiple
//! records in flight, as `record_nowait` permits) and repeats both halves:
//! the correct protocol must still satisfy the invariant across the wider
//! interleaving space, and every seeded bug must still be caught.

use bench::{header, quick};
use modelcheck::{check, BugMode, ModelConfig};

const BUGS: [BugMode; 3] = [
    BugMode::SeqBeforeData,
    BugMode::ApMapBeforeCatchup,
    BugMode::NoCatchupOnRecovery,
];

fn run_pass(writes: u8, crashes: u8, cap: usize, window: u8) {
    let config = ModelConfig {
        max_writes: writes,
        crash_budget: crashes,
        peers: 4,
        bug: BugMode::None,
        max_states: cap,
        window,
    };
    let start = std::time::Instant::now();
    let result = check(&config);
    println!(
        "correct protocol (window {window}): {} states, {} transitions explored in {:.1}s — {}",
        result.states_explored,
        result.transitions,
        start.elapsed().as_secs_f64(),
        match &result.violation {
            None => "no violation (invariant holds)".to_string(),
            Some(v) => format!("UNEXPECTED violation: {}", v.reason),
        }
    );
    assert!(result.violation.is_none(), "the correct protocol must pass");

    for bug in BUGS {
        let config = ModelConfig {
            max_writes: writes,
            crash_budget: crashes,
            peers: 4,
            bug,
            max_states: cap,
            window,
        };
        let result = check(&config);
        match result.violation {
            Some(v) => {
                println!(
                    "\nseeded bug {bug:?} (window {window}): caught after {} states\n  reason: {}\n  trace ({} events):",
                    result.states_explored,
                    v.reason,
                    v.trace.len()
                );
                for event in &v.trace {
                    println!("    {event}");
                }
            }
            None => {
                println!("\nseeded bug {bug:?} (window {window}): NOT caught — checker defect!");
                std::process::exit(1);
            }
        }
    }
}

fn main() {
    let (writes, crashes, cap) = if quick() {
        (2, 2, 0)
    } else {
        (3, 3, 6_000_000)
    };

    header("Model checking the NCL replication/recovery protocol (§4.6)");
    run_pass(writes, crashes, cap, 1);

    println!("\n-- pipelined-interleaving mode (records in flight > 1) --");
    run_pass(writes, crashes, cap, 2);

    println!(
        "\npaper: >4M states explored; all three seeded bugs (seq-before-data, \
         ap-map-before-catch-up, missing lagging-peer sync) flagged — reproduced, \
         in both the synchronous and the pipelined issue modes."
    );
}
