//! Lock-free metrics: counters, gauges, and concurrent histograms.
//!
//! Handles are looked up (and interned) by name once, at component
//! construction time, then used on the hot path where every operation is a
//! handful of relaxed atomic ops — no locks, no allocation. A handle created
//! from a disabled [`crate::Telemetry`] is a no-op whose recording methods
//! compile down to a single branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::hist::{Histogram, NUM_BUCKETS, OVERFLOW_LIMIT};

/// Concurrent log-linear histogram: same bucket layout as [`Histogram`] but
/// every cell is an atomic, so any number of threads can record through a
/// shared handle without coordination.
pub(crate) struct AtomicHistogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    overflow: AtomicU64,
}

impl AtomicHistogram {
    pub(crate) fn new() -> Self {
        AtomicHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            overflow: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        if value > OVERFLOW_LIMIT {
            self.overflow.fetch_add(1, Ordering::Relaxed);
        }
        self.buckets[Histogram::bucket_index(value.min(OVERFLOW_LIMIT))]
            .fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Materialises an owned [`Histogram`] snapshot.
    pub(crate) fn load(&self) -> Histogram {
        let buckets = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        Histogram::from_parts(
            buckets,
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.min.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
            self.overflow.load(Ordering::Relaxed),
        )
    }
}

/// A monotonically increasing counter handle. Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A detached handle whose increments go nowhere (disabled telemetry).
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A signed gauge handle (set/adjust). Cloning shares the cell.
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A detached handle whose updates go nowhere (disabled telemetry).
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(cell) = &self.0 {
            cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adjusts the gauge by `delta` (may be negative).
    #[inline]
    pub fn adjust(&self, delta: i64) {
        if let Some(cell) = &self.0 {
            cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A shared histogram handle recording nanosecond samples.
#[derive(Clone, Default)]
pub struct HistHandle(Option<Arc<AtomicHistogram>>);

impl HistHandle {
    /// A detached handle whose samples go nowhere (disabled telemetry).
    pub fn noop() -> Self {
        HistHandle(None)
    }

    /// True when samples recorded through this handle are retained.
    #[inline]
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }

    /// Records one nanosecond sample.
    #[inline]
    pub fn record(&self, ns: u64) {
        if let Some(h) = &self.0 {
            h.record(ns);
        }
    }

    /// Records a [`Duration`].
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if self.0.is_some() {
            self.record(d.as_nanos() as u64);
        }
    }

    /// Records the time elapsed since `start`.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        if self.0.is_some() {
            self.record(start.elapsed().as_nanos() as u64);
        }
    }

    /// Materialises an owned snapshot (empty for a no-op handle).
    pub fn load(&self) -> Histogram {
        self.0.as_ref().map_or_else(Histogram::new, |h| h.load())
    }
}

/// Name-interning registry behind a [`crate::Telemetry`] handle.
///
/// Lookup/creation takes a mutex (cold path, at component construction);
/// the returned handles are lock-free.
#[derive(Default)]
pub(crate) struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, Arc<AtomicI64>>>,
    hists: Mutex<BTreeMap<String, Arc<AtomicHistogram>>>,
}

impl Registry {
    pub(crate) fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Some(Arc::clone(cell)))
    }

    pub(crate) fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicI64::new(0)));
        Gauge(Some(Arc::clone(cell)))
    }

    pub(crate) fn histogram(&self, name: &str) -> HistHandle {
        let mut map = self.hists.lock().expect("registry poisoned");
        let cell = map
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicHistogram::new()));
        HistHandle(Some(Arc::clone(cell)))
    }

    pub(crate) fn counter_values(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn gauge_values(&self) -> Vec<(String, i64)> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    pub(crate) fn histogram_summaries(&self) -> Vec<(String, crate::Summary)> {
        self.hists
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load().summary()))
            .collect()
    }

    /// Full bucket-level snapshots, for exporters that need cumulative
    /// bucket counts rather than a [`crate::Summary`].
    pub(crate) fn histogram_values(&self) -> Vec<(String, Histogram)> {
        self.hists
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interned_handles_share_cells() {
        let reg = Registry::default();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.counter_values(), vec![("x".to_string(), 3)]);
    }

    #[test]
    fn noop_handles_discard_everything() {
        let c = Counter::noop();
        c.inc();
        assert_eq!(c.get(), 0);
        let g = Gauge::noop();
        g.set(7);
        assert_eq!(g.get(), 0);
        let h = HistHandle::noop();
        h.record(123);
        assert!(!h.is_live());
        assert_eq!(h.load().count(), 0);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let reg = Registry::default();
        let g = reg.gauge("depth");
        g.set(10);
        g.adjust(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn concurrent_histogram_matches_serial() {
        let reg = Registry::default();
        let h = reg.histogram("lat");
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let snap = h.load();
        assert_eq!(snap.count(), 4_000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 3_999);
        // Sum is exact, so the mean is too.
        assert!((snap.mean() - 1_999.5).abs() < 1e-9);
    }
}
