//! Log-linear latency histograms.
//!
//! [`Histogram`] is the single-writer variant used by benchmark harnesses
//! (promoted here from `sim::stats`, which now re-exports it); recording is
//! O(1) and percentile queries walk the bucket array. Relative error of
//! reported values is bounded by `1/SUBBUCKETS` (~3%), and reported
//! percentiles are always clamped into the exact `[min, max]` sample range so
//! single-sample and extreme-percentile queries return true values rather
//! than bucket midpoints.

use std::time::Duration;

/// Sub-buckets per power of two; 32 gives ~3% relative value error.
const SUBBUCKETS: usize = 32;
const SUBBUCKET_BITS: u32 = 5;
/// Values below this are counted exactly (one bucket per nanosecond value).
const LINEAR_LIMIT: u64 = 64;
pub(crate) const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + SUBBUCKETS * 64;

/// Largest value the bucket ladder tracks with bounded relative error
/// (~73 minutes in nanoseconds). Samples above this are clipped into the
/// top tracked bucket and counted in [`Histogram::overflow`], so a clipped
/// tail is always visible instead of silently flattening p999.
pub const OVERFLOW_LIMIT: u64 = 1 << 42;

/// A log-linear histogram of `u64` samples (typically nanoseconds).
///
/// Recording is O(1); percentile queries walk the bucket array. Histograms
/// from different worker threads are combined with [`Histogram::merge`].
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    overflow: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            overflow: 0,
        }
    }

    /// Rebuilds a histogram from raw parts (used when snapshotting the
    /// lock-free atomic variant).
    pub(crate) fn from_parts(
        buckets: Vec<u64>,
        count: u64,
        sum: u64,
        min: u64,
        max: u64,
        overflow: u64,
    ) -> Self {
        debug_assert_eq!(buckets.len(), NUM_BUCKETS);
        Histogram {
            buckets,
            count,
            sum,
            min,
            max,
            overflow,
        }
    }

    pub(crate) fn bucket_index(value: u64) -> usize {
        if value < LINEAR_LIMIT {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // >= 6 here
        let sub = ((value >> (msb - SUBBUCKET_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
        let octave = (msb - 6) as usize + 1; // Octave 1 starts at 64.
        let idx = LINEAR_LIMIT as usize + (octave - 1) * SUBBUCKETS + sub;
        idx.min(NUM_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        if index < LINEAR_LIMIT as usize {
            return index as u64;
        }
        let rel = index - LINEAR_LIMIT as usize;
        let octave = rel / SUBBUCKETS + 1;
        let sub = (rel % SUBBUCKETS) as u64;
        let base_msb = 6 + (octave as u32 - 1);
        let lo = (1u64 << base_msb) | (sub << (base_msb - SUBBUCKET_BITS));
        // Midpoint of the bucket's value range.
        lo + (1u64 << (base_msb - SUBBUCKET_BITS)) / 2
    }

    /// Records one sample. Values above [`OVERFLOW_LIMIT`] are clipped into
    /// the top tracked bucket (count/sum/max stay exact) and counted in
    /// [`Histogram::overflow`].
    pub fn record(&mut self, value: u64) {
        if value > OVERFLOW_LIMIT {
            self.overflow += 1;
        }
        self.buckets[Self::bucket_index(value.min(OVERFLOW_LIMIT))] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (exact, not bucketed), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at percentile `p`, or `None` when the histogram is
    /// empty — an empty histogram has no percentiles, and a `0` sentinel is
    /// indistinguishable from a genuine zero-nanosecond sample.
    ///
    /// `p` is clamped into `[0, 100]`; `p = 0` returns the exact minimum and
    /// `p = 100` the exact maximum. Interior percentiles resolve to a bucket
    /// midpoint clamped into the observed `[min, max]` range, so a
    /// single-sample histogram reports that sample at every percentile.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let p = p.clamp(0.0, 100.0);
        if p <= 0.0 {
            return Some(self.min);
        }
        if p >= 100.0 {
            return Some(self.max);
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_value(i).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Exact sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of samples that exceeded [`OVERFLOW_LIMIT`] and were clipped
    /// into the top tracked bucket. Nonzero overflow means tail percentiles
    /// at that magnitude are lower bounds, not measurements.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Approximate number of samples ≤ `value`: counts whole buckets up to
    /// and including `value`'s bucket, so the boundary error is the bucket's
    /// width (~3% of `value`). This is the cumulative-bucket primitive behind
    /// the Prometheus `_bucket{le=...}` series.
    pub fn count_at_most(&self, value: u64) -> u64 {
        self.buckets[..=Self::bucket_index(value)].iter().sum()
    }

    /// The samples recorded into `self` but not yet into `earlier` — i.e.
    /// this histogram's growth since the `earlier` snapshot was taken.
    /// `earlier` must be a prior snapshot of the same histogram (bucket-wise
    /// `self >= earlier`); shrunken buckets saturate to zero. The window's
    /// min/max are reconstructed from its extreme non-empty buckets (bucket
    /// resolution, ~3%), since exact extremes of a difference are unknowable.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(earlier.buckets.iter())
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count = self.count.saturating_sub(earlier.count);
        let sum = self.sum.saturating_sub(earlier.sum);
        let (mut min, mut max) = (u64::MAX, 0);
        if count > 0 {
            for (i, &c) in buckets.iter().enumerate() {
                if c > 0 {
                    min = min.min(Self::bucket_value(i));
                    max = max.max(Self::bucket_value(i));
                }
            }
            // The overall extremes still bound every window.
            min = min.max(self.min);
            max = max.min(self.max);
            if min > max {
                min = max;
            }
        }
        let overflow = self.overflow.saturating_sub(earlier.overflow);
        Histogram::from_parts(buckets, count, sum, min, max, overflow)
    }

    /// Adds all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.overflow += other.overflow;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Produces a compact summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean_ns: self.mean(),
            min_ns: self.min(),
            p50_ns: self.percentile(50.0).unwrap_or(0),
            p99_ns: self.percentile(99.0).unwrap_or(0),
            max_ns: self.max(),
            overflow: self.overflow,
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_ns", &self.mean())
            .field("p50_ns", &self.percentile(50.0).unwrap_or(0))
            .field("p99_ns", &self.percentile(99.0).unwrap_or(0))
            .field("max_ns", &self.max)
            .finish()
    }
}

/// Point-in-time summary of a [`Histogram`] (all values in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Minimum sample.
    pub min_ns: u64,
    /// Median (bucketed).
    pub p50_ns: u64,
    /// 99th percentile (bucketed).
    pub p99_ns: u64,
    /// Maximum sample.
    pub max_ns: u64,
    /// Samples clipped past [`OVERFLOW_LIMIT`]; nonzero means the tail
    /// percentiles are lower bounds.
    pub overflow: u64,
}

impl Summary {
    /// Mean in microseconds, the unit most of the paper's tables use.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }

    /// Renders the summary as a JSON object (used by BENCH JSON emitters).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean_ns\": {:.1}, \"min_ns\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}, \"overflow\": {}}}",
            self.count, self.mean_ns, self.min_ns, self.p50_ns, self.p99_ns, self.max_ns,
            self.overflow
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_has_no_percentiles() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.0), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.percentile(100.0), None);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        // Summaries of empty histograms still render with zeroed fields.
        assert_eq!(h.summary().p50_ns, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        // A value ≥ LINEAR_LIMIT lands in a midpoint bucket; every percentile
        // must still report the exact sample, not the midpoint.
        let mut h = Histogram::new();
        h.record(1_000);
        for p in [0.0, 1.0, 50.0, 99.0, 100.0] {
            assert_eq!(h.percentile(p), Some(1_000), "p={p}");
        }
        assert_eq!(h.summary().p50_ns, 1_000);
    }

    #[test]
    fn p0_and_p100_are_exact_extremes() {
        let mut h = Histogram::new();
        for v in [100u64, 777, 65_537, 1_000_003] {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), Some(100));
        assert_eq!(h.percentile(100.0), Some(1_000_003));
        // Out-of-range percentiles clamp rather than extrapolate.
        assert_eq!(h.percentile(-5.0), Some(100));
        assert_eq!(h.percentile(250.0), Some(1_000_003));
    }

    #[test]
    fn percentile_never_leaves_sample_range() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(100);
        h.record(101);
        for p in [0.0, 25.0, 50.0, 75.0, 99.9, 100.0] {
            let v = h.percentile(p).unwrap();
            assert!((100..=101).contains(&v), "p={p} v={v}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 63] {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_are_ordered_and_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100 ns .. 1 ms
        }
        let p50 = h.percentile(50.0).unwrap();
        let p90 = h.percentile(90.0).unwrap();
        let p99 = h.percentile(99.0).unwrap();
        assert!(p50 <= p90 && p90 <= p99);
        // Within ~5% of the true values.
        assert!((450_000..550_000).contains(&p50), "p50={p50}");
        assert!((940_000..1_060_000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn merge_with_empty_preserves_extremes() {
        let mut a = Histogram::new();
        a.record(42);
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.min(), 42);
        assert_eq!(a.max(), 42);
        // And merging into an empty histogram adopts the donor's extremes.
        let mut c = Histogram::new();
        c.merge(&a);
        assert_eq!(c.min(), 42);
        assert_eq!(c.max(), 42);
        assert_eq!(c.percentile(100.0), Some(42));
    }

    #[test]
    fn merge_percentiles_match_single_histogram() {
        // Recording a population split across two histograms and merging must
        // give the same percentile answers as recording it in one.
        let mut whole = Histogram::new();
        let mut left = Histogram::new();
        let mut right = Histogram::new();
        for v in 1..=1_000u64 {
            whole.record(v * 37);
            if v % 2 == 0 {
                left.record(v * 37);
            } else {
                right.record(v * 37);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.min(), whole.min());
        assert_eq!(left.max(), whole.max());
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(left.percentile(p), whole.percentile(p), "p={p}");
        }
    }

    #[test]
    fn count_at_most_is_cumulative() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 1_000, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count_at_most(5), 0);
        assert_eq!(h.count_at_most(10), 1);
        assert_eq!(h.count_at_most(50), 2);
        assert_eq!(h.count_at_most(u64::MAX), 4);
        // Cumulative counts are monotone in the threshold.
        let mut prev = 0;
        for v in [1u64, 100, 10_000, 1_000_000] {
            let c = h.count_at_most(v);
            assert!(c >= prev);
            prev = c;
        }
    }

    #[test]
    fn diff_isolates_a_window() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(200);
        let snap = h.clone();
        h.record(10_000);
        h.record(20_000);
        let window = h.diff(&snap);
        assert_eq!(window.count(), 2);
        assert_eq!(window.sum(), 30_000);
        // Window percentiles reflect only the new samples (~3% buckets).
        let p50 = window.percentile(50.0).unwrap();
        assert!((9_000..=11_000).contains(&p50), "p50={p50}");
        assert!(window.percentile(100.0).unwrap() >= 19_000);
        // Diff of identical snapshots is empty.
        assert_eq!(h.diff(&h.clone()).percentile(50.0), None);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [64u64, 100, 1_000, 65_536, 1_000_000, u32::MAX as u64] {
            let idx = Histogram::bucket_index(v);
            let back = Histogram::bucket_value(idx);
            let err = (back as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} back={back} err={err}");
        }
    }

    #[test]
    fn overflow_samples_are_clipped_but_counted() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record(OVERFLOW_LIMIT + 1);
        h.record(u64::MAX / 2);
        assert_eq!(h.count(), 3);
        assert_eq!(h.overflow(), 2);
        // Exact aggregates still see the true values.
        assert_eq!(h.max(), u64::MAX / 2);
        // Interior percentiles are clipped to the ladder, and the clipping is
        // visible through the overflow counter rather than silent.
        let p50 = h.percentile(50.0).unwrap();
        assert!(p50 <= OVERFLOW_LIMIT + OVERFLOW_LIMIT / 16, "p50={p50}");
        let s = h.summary();
        assert_eq!(s.overflow, 2);
        assert!(s.to_json().contains("\"overflow\": 2"));
        // A sample exactly at the limit does not overflow.
        let mut exact = Histogram::new();
        exact.record(OVERFLOW_LIMIT);
        assert_eq!(exact.overflow(), 0);
    }

    #[test]
    fn overflow_propagates_through_merge_and_diff() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(OVERFLOW_LIMIT + 7);
        b.record(OVERFLOW_LIMIT + 9);
        b.record(10);
        a.merge(&b);
        assert_eq!(a.overflow(), 2);
        let snap = a.clone();
        a.record(OVERFLOW_LIMIT * 2);
        let window = a.diff(&snap);
        assert_eq!(window.count(), 1);
        assert_eq!(window.overflow(), 1);
    }

    #[test]
    fn summary_fields_consistent() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_ns, 200.0);
        assert_eq!(s.max_ns, 300);
        assert!((s.mean_us() - 0.2).abs() < 1e-9);
        let json = s.to_json();
        assert!(json.contains("\"count\": 3"));
        assert!(json.contains("\"max_ns\": 300"));
    }
}
