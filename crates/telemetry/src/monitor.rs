//! Streaming online invariant monitor: the analyzer's checks, verified live.
//!
//! [`crate::analyze`] replays a finished JSONL artifact; this module
//! subscribes to the live span/event stream inside a [`crate::Telemetry`]
//! handle ([`OnlineMonitor::attach`]) and verifies the same per-write
//! promises *as traces complete*, with bounded memory:
//!
//! * **Tree integrity** — children of every rooted trace resolve their
//!   parents. A trace is only judged once it has *retired*: the stream's
//!   high-water end timestamp (the watermark) has moved
//!   [`retirement lag`](OnlineMonitor::with_limits) past the trace's last
//!   span, so stragglers (minority wire-peer spans closing after the root,
//!   catch-up credits landing during a later repair) have had their window.
//!   State is O(open traces), never O(history).
//! * **Ack ⇒ reconstructible coverage** — acked writes carry their
//!   `ncl.stage` + `ncl.doorbell` children and ≥ quorum (or the scope's
//!   declared EC `k`) distinct covering peers.
//! * **No ack while degraded** — a write root starting inside an open
//!   `dfs-fallback-engage` window is *deferred*, not flagged: judgment waits
//!   for the scope's `ncl-reattach` (whose replay span, recorded just
//!   before it, exempts journal-replay traffic) or for [`finalize`].
//! * **Catch-up before ap-map**, per epoch, and **monotone ap-map epochs**
//!   — checked immediately at event arrival; these are the violations the
//!   monitor catches with zero latency.
//!
//! A trace that fails a span-completeness check at retirement is first
//! parked as a *suspect* for a grace period (late catch-up credits can still
//! clear it); only when the grace expires — or at [`finalize`] — does it
//! become a violation. Violations increment
//! `invariant.violations.total` (exported as
//! `splitft_invariant_violations_total`), emit an `invariant-violation`
//! event, fire the registered [`on_violation`](OnlineMonitor::on_violation)
//! hook (the testbed wires a flight-recorder dump there), and flip `/health`
//! to 503 via [`OnlineMonitor::violating`]. Violation messages use the
//! *same format strings* as the offline analyzer, so the chaos harness can
//! cross-check the two reports verbatim.
//!
//! When a trace ring overflows ([`crate::Telemetry`] reports it via
//! `note_truncated`), span-completeness checks downgrade to a "truncated
//! window" note instead of false-positive orphan/coverage violations —
//! mirroring [`crate::analyze::analyze_with_drops`].
//!
//! [`finalize`]: OnlineMonitor::finalize

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::hash::BuildHasherDefault;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::snapshot::json_escape;
use crate::{events, spans, Counter, Event, Gauge, Span, Telemetry, WeakTelemetry};

/// Multiplicative hasher for `u64` trace ids (FxHash-style). The default
/// SipHash costs more than the whole per-span budget on the hot path, and
/// trace ids are sequential — no DoS surface to defend.
#[derive(Default)]
struct TraceIdHasher(u64);

impl std::hash::Hasher for TraceIdHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

type TraceMap = HashMap<u64, Slot, BuildHasherDefault<TraceIdHasher>>;

/// Map slot per known trace. Settled tombstones are the common steady-state
/// resident (every acked write leaves one for a short TTL), so they are kept
/// inline and pointer-free: the straggler-span probe touches one cache line,
/// and the map stays small enough to sit in cache at line rate. Live
/// accumulators are boxed — there are only O(in-flight + failing) of them.
enum Slot {
    Live(Box<TraceAcc>),
    /// Trace judged clean at root arrival; the payload is its expiry due
    /// time (mirror of the entry pushed to `due_rooted`).
    Settled(u64),
}

/// Watermark distance a rooted trace must be quiet for before it is judged.
/// Large enough for minority wire spans closing at peer timeouts.
const DEFAULT_RETIREMENT_LAG_NS: u64 = 100_000_000; // 100ms
/// Extra watermark distance a failing trace is held as a suspect before its
/// failure becomes a violation (late catch-up credits can still clear it).
const DEFAULT_SUSPECT_GRACE_NS: u64 = 3_000_000_000; // 3s
/// Watermark distance before a *rootless* write trace is counted open. Much
/// longer than the rooted lag: a write blocked on dead peers can ack (and
/// root) seconds later, and a premature open-count would double-book it.
const DEFAULT_OPEN_WRITE_LAG_NS: u64 = 30_000_000_000; // 30s
/// How long a settled tombstone lingers to absorb post-ack stragglers (the
/// minority wire spans that close after the quorum ack). Deliberately short:
/// a straggler arriving later just opens a throwaway rootless accumulator
/// that retires silently (it is not a write), while a long TTL would keep
/// throughput × TTL tombstones resident — the map's cache footprint.
const TOMBSTONE_TTL_NS: u64 = 10_000_000; // 10ms
/// Spans between retirement sweeps.
const SWEEP_EVERY: u32 = 128;
/// Producer buffer length at which the background drainer is nudged awake.
/// Producers only pay a `Vec` push under a short lock; the full checker
/// state is touched in batches on the drainer thread, off every recording
/// thread's critical path (on a saturated core the checker work rides the
/// pipeline's wire-wait slack instead of stalling submissions).
const DRAIN_BATCH: usize = 256;
/// Backpressure bound: a producer finding this many undrained spans pays
/// for the drain inline instead of growing the buffer without limit.
const DRAIN_HARD_CAP: usize = 1 << 16;
/// Drainer thread wake interval when no producer nudges it.
const DRAIN_INTERVAL: std::time::Duration = std::time::Duration::from_millis(10);
/// Violation list cap; the total is also a counter, so nothing is lost.
const MAX_VIOLATIONS: usize = 256;

/// One confirmed invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Watermark (stream time, ns) when the violation was confirmed.
    pub t_ns: u64,
    /// Short invariant code: `orphan-span`, `ack-coverage`,
    /// `degraded-write`, `ap-map-order`, `ap-map-monotone`.
    pub invariant: &'static str,
    /// Trace id the violation is about (0 for event-order violations).
    pub trace: u64,
    /// Scope the violation is about.
    pub scope: String,
    /// Human-readable message, same format as the offline analyzer's.
    pub message: String,
}

impl Violation {
    /// Renders the violation as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"t_ns\": {}, \"invariant\": \"{}\", \"trace\": {}, \"scope\": \"{}\", \"message\": \"{}\"}}",
            self.t_ns,
            json_escape(self.invariant),
            self.trace,
            json_escape(&self.scope),
            json_escape(&self.message)
        )
    }
}

/// Point-in-time (or, after [`OnlineMonitor::finalize`], final) outcome of
/// the online checks. The counts mirror [`crate::analyze::TraceReport`] so
/// the chaos harness can diff the two.
#[derive(Debug, Default, Clone)]
pub struct MonitorReport {
    /// Rooted `ncl.write` traces seen (the analyzer's `acked_writes`).
    pub acked_writes: u64,
    /// Rootless write traces retired open (only settles at finalize).
    pub open_writes: u64,
    /// Traces retired clean.
    pub retired_clean: u64,
    /// Traces currently held open (watermark has not passed them).
    pub open_traces: usize,
    /// Failing traces inside their suspect grace window.
    pub suspects: usize,
    /// Whether a trace ring overflowed (span-completeness checks downgraded).
    pub truncated: bool,
    /// Whether the monitor has been finalized (report is settled).
    pub finalized: bool,
    /// Confirmed violations, oldest first, capped at an internal limit.
    pub violations: Vec<Violation>,
    /// Violations beyond the cap (counted, not stored).
    pub violations_dropped: u64,
}

impl MonitorReport {
    /// True when no invariant has been violated.
    pub fn ok(&self) -> bool {
        self.violations.is_empty() && self.violations_dropped == 0
    }

    /// Renders the report as one JSON object (the `/invariants` body).
    pub fn to_json(&self) -> String {
        let status = if !self.ok() {
            "violating"
        } else if self.truncated {
            "truncated"
        } else {
            "ok"
        };
        let violations: Vec<String> = self.violations.iter().map(|v| v.to_json()).collect();
        format!(
            "{{\"status\": \"{}\", \"acked_writes\": {}, \"open_writes\": {}, \"retired_clean\": {}, \"open_traces\": {}, \"suspects\": {}, \"truncated\": {}, \"finalized\": {}, \"violations_total\": {}, \"violations\": [{}]}}",
            status,
            self.acked_writes,
            self.open_writes,
            self.retired_clean,
            self.open_traces,
            self.suspects,
            self.truncated,
            self.finalized,
            self.violations.len() as u64 + self.violations_dropped,
            violations.join(", ")
        )
    }
}

/// Root facts kept per open trace.
#[derive(Debug, Clone, Copy)]
struct RootInfo {
    name: &'static str,
    scope: &'static str,
    start_ns: u64,
}

/// Bounded per-trace accumulator.
#[derive(Debug, Default)]
struct TraceAcc {
    root: Option<RootInfo>,
    /// Span ids seen (a handful per trace; linear scans beat set nodes).
    ids: Vec<u64>,
    /// `(id, parent, name)` of every span with a nonzero parent, for the
    /// orphan check at retirement.
    children: Vec<(u64, u64, &'static str)>,
    /// Distinct covering peers (`ncl.wire.peer` / `ncl.catchup.peer` scopes).
    coverage: Vec<&'static str>,
    has_stage: bool,
    has_doorbell: bool,
    is_write: bool,
    /// Last end timestamp seen for this trace (quiescence reference).
    max_end_ns: u64,
    /// Set when the trace failed its first judgment; watermark deadline
    /// after which the failure becomes a violation.
    suspect_deadline_ns: Option<u64>,
    /// Current key of this trace in the due index (0 = not indexed yet).
    /// Earlier, superseded index entries are skipped lazily at sweep time.
    due_ns: u64,
}

/// One `dfs-fallback-engage` → `ncl-reattach` window.
#[derive(Debug, Clone)]
struct DegradeWindow {
    scope: String,
    engage_ns: u64,
    /// `u64::MAX` while the window is still open.
    reattach_ns: u64,
}

/// One `splitfs.reattach.replay` span (exempts in-window writes).
#[derive(Debug, Clone, Copy)]
struct ReplayWindow {
    scope: &'static str,
    start_ns: u64,
    end_ns: u64,
}

#[derive(Default)]
struct MonState {
    /// Configuration of the current attachment (reset when a detached core
    /// is revived by a later attach). All reads happen under the state lock,
    /// which every checker path already holds.
    quorum: usize,
    retirement_lag_ns: u64,
    suspect_grace_ns: u64,
    open_write_lag_ns: u64,
    traces: TraceMap,
    /// Retirement index, insert-only on the hot path: `(due watermark,
    /// trace)` entries. Each trace's *latest* due time is mirrored in
    /// [`TraceAcc::due_ns`]; older entries for the same trace are stale and
    /// skipped when popped. This keeps a sweep O(traces actually due), never
    /// O(open traces) — the difference between a no-op and a full-scan stall
    /// every `SWEEP_EVERY` spans on a saturated write path.
    ///
    /// Each category uses a constant lag, so each queue is near-monotone in
    /// due time and a plain FIFO works (a microsecond of cross-thread
    /// end-timestamp disorder only delays a retirement by that much):
    /// `due_rooted` holds tombstone expiries for traces settled clean at
    /// root arrival (pushed in ack order), `due_rootless` one entry per
    /// trace pushed at its first span. Suspect deadlines, defer retries, and
    /// quiescence requeues are rare and unordered — they live in the
    /// `due_slow` set.
    due_rooted: VecDeque<(u64, u64)>,
    due_rootless: VecDeque<(u64, u64)>,
    due_slow: BTreeSet<(u64, u64)>,
    /// Settled tombstones currently lingering in `traces` (excluded from the
    /// open-trace counts).
    settled_count: usize,
    /// Traces currently parked as suspects (mirrors the per-trace deadlines
    /// so reports never rescan the open set).
    suspect_count: usize,
    watermark_ns: u64,
    spans_since_sweep: u32,
    /// Per-scope coverage requirement from `durability-mode` events.
    required_coverage: BTreeMap<String, usize>,
    last_ap_epoch: BTreeMap<String, u64>,
    /// Epochs with a `catch-up-finish` seen (catch-up events are scoped to
    /// peer names, so invariant 4 matches them by epoch alone).
    catchup_epochs: BTreeSet<u64>,
    /// `(scope, epoch)` of replace-starts awaiting their ap-map update.
    replace_pending: BTreeSet<(String, u64)>,
    /// `(scope, epoch)` pairs that already published an ap-map update.
    ap_updated: BTreeSet<(String, u64)>,
    degrade_windows: Vec<DegradeWindow>,
    replay_windows: Vec<ReplayWindow>,
    acked_writes: u64,
    open_writes: u64,
    retired_clean: u64,
    truncated: bool,
    finalized: bool,
    violations: Vec<Violation>,
    violations_dropped: u64,
}

/// The violation hook: fired once per confirmed violation, outside the
/// state lock (the testbed wires a flight-recorder dump here).
type ViolationHook = Arc<dyn Fn(&Violation) + Send + Sync>;

/// How a trace fared at judgment time.
enum Judgment {
    Clean,
    /// Root starts inside a still-open degrade window: wait for reattach.
    Defer,
    Fail(Vec<Violation>),
}

pub(crate) struct MonitorCore {
    /// Weak: the owning `Telemetry` holds this core strongly in its monitor
    /// slot, so a strong handle here would be a cycle.
    tel: WeakTelemetry,
    /// Public [`OnlineMonitor`] handles alive. When the count hits zero the
    /// core deactivates (the allocation stays in the `Telemetry`'s lock-free
    /// slot and can be revived by a later attach).
    handles: AtomicUsize,
    active: AtomicBool,
    violations_total: Counter,
    retired_total: Counter,
    open_traces_gauge: Gauge,
    suspects_gauge: Gauge,
    hook: Mutex<Option<ViolationHook>>,
    /// Producer-side span buffer. Recording threads only push here (a
    /// short-lived lock around a `Vec` push); the checker state is updated
    /// in batches on the drainer thread, so threads recording spans at line
    /// rate never serialize on the full `state` critical section.
    pending: Mutex<Vec<Span>>,
    /// Wakes the drainer early when the buffer crosses [`DRAIN_BATCH`].
    gate: Arc<(Mutex<bool>, std::sync::Condvar)>,
    drainer: Mutex<Option<std::thread::JoinHandle<()>>>,
    state: Mutex<MonState>,
}

impl MonitorCore {
    /// Called by `Telemetry::span` with the monitor's state lock NOT held by
    /// anyone up-stack; never re-enters `tel` while holding the state lock.
    /// Called by `Telemetry::span` with the monitor's state lock NOT held by
    /// anyone up-stack. The span is only buffered here; the checker state is
    /// updated by the drainer thread (or on the next report / event /
    /// finalize), keeping the recording threads' critical section to a
    /// `Vec` push.
    pub(crate) fn on_span(&self, span: &Span) {
        let len = {
            let mut buf = self.pending.lock().expect("monitor buffer poisoned");
            buf.push(span.clone());
            buf.len()
        };
        if len >= DRAIN_HARD_CAP {
            // Backpressure: the drainer has fallen behind; pay inline.
            let fresh = {
                let mut st = self.state.lock().expect("monitor poisoned");
                self.drain_pending(&mut st)
            };
            self.publish(fresh);
        } else if len % DRAIN_BATCH == 0 {
            self.gate.1.notify_one();
        }
    }

    /// Flushes the producer buffer into `st`. Returns freshly confirmed
    /// violations from any sweeps that ran; caller publishes them after
    /// releasing the lock.
    fn drain_pending(&self, st: &mut MonState) -> Vec<Violation> {
        let batch = std::mem::take(&mut *self.pending.lock().expect("monitor buffer poisoned"));
        self.ingest(st, batch)
    }

    fn ingest(&self, st: &mut MonState, batch: Vec<Span>) -> Vec<Violation> {
        let mut fresh = Vec::new();
        if st.finalized {
            return fresh; // frozen: drop the batch
        }
        for span in &batch {
            self.apply_span(st, span, &mut fresh);
        }
        fresh
    }

    fn apply_span(&self, st: &mut MonState, span: &Span, fresh: &mut Vec<Violation>) {
        st.watermark_ns = st.watermark_ns.max(span.end_ns);
        st.spans_since_sweep += 1;
        let must_sweep = st.spans_since_sweep >= SWEEP_EVERY;
        if must_sweep {
            st.spans_since_sweep = 0;
        }
        if span.name == spans::FS_REATTACH_REPLAY {
            st.replay_windows.push(ReplayWindow {
                scope: span.scope,
                start_ns: span.start_ns,
                end_ns: span.end_ns,
            });
        }
        let mut index_rootless = None;
        let mut rooted_now = false;
        {
            let slot = st
                .traces
                .entry(span.trace)
                .or_insert_with(|| Slot::Live(Box::default()));
            let Slot::Live(acc) = slot else {
                // Post-ack straggler (minority wire credit landing after the
                // root): the trace's verdict is already in — ignore.
                if must_sweep {
                    fresh.extend(self.sweep(st, false));
                }
                return;
            };
            if acc.due_ns == 0 {
                // First span of the trace: index it once with the rootless
                // lag. Roots and failures re-index; further spans don't.
                let due = span.end_ns.saturating_add(st.open_write_lag_ns);
                acc.due_ns = due;
                index_rootless = Some((due, span.trace));
            }
            acc.ids.push(span.id);
            acc.max_end_ns = acc.max_end_ns.max(span.end_ns);
            if span.parent != 0 {
                acc.children.push((span.id, span.parent, span.name));
            }
            match span.name {
                spans::NCL_WIRE_PEER | spans::NCL_CATCHUP_PEER
                    if !acc.coverage.contains(&span.scope) =>
                {
                    acc.coverage.push(span.scope);
                }
                spans::NCL_STAGE => acc.has_stage = true,
                spans::NCL_DOORBELL => acc.has_doorbell = true,
                _ => {}
            }
            if matches!(
                span.name,
                spans::NCL_WRITE | spans::NCL_STAGE | spans::NCL_DOORBELL
            ) {
                acc.is_write = true;
            }
            if span.id == span.trace && span.parent == 0 && acc.root.is_none() {
                acc.root = Some(RootInfo {
                    name: span.name,
                    scope: span.scope,
                    start_ns: span.start_ns,
                });
                rooted_now = true;
            }
        }
        if let Some(entry) = index_rootless {
            st.due_rootless.push_back(entry);
        }
        if rooted_now {
            if span.name == spans::NCL_WRITE {
                st.acked_writes += 1;
            }
            // The root is recorded LAST (repo-wide convention): the chain is
            // complete right now, so judge immediately. A clean verdict
            // settles the trace on the spot — its accumulator is replaced by
            // an inline tombstone that lingers a short TTL to absorb
            // post-ack stragglers. This keeps the live set O(in-flight +
            // failing) instead of O(throughput × retirement lag).
            let verdict = {
                let Some(Slot::Live(acc)) = st.traces.get(&span.trace) else {
                    unreachable!("live slot was just written");
                };
                self.judge(st, span.trace, acc, false)
            };
            match verdict {
                Judgment::Clean => {
                    st.retired_clean += 1;
                    st.settled_count += 1;
                    self.retired_total.inc();
                    let due = st.watermark_ns.saturating_add(TOMBSTONE_TTL_NS);
                    let slot = st.traces.get_mut(&span.trace).expect("trace present");
                    *slot = Slot::Settled(due);
                    st.due_rooted.push_back((due, span.trace));
                }
                Judgment::Defer | Judgment::Fail(_) => {
                    // Failed (or must wait out a degrade window) at root
                    // arrival: discard this verdict and fall back to the
                    // lagged sweep — stragglers get their window before the
                    // failure is even parked as a suspect.
                    let Some(Slot::Live(acc)) = st.traces.get_mut(&span.trace) else {
                        unreachable!("live slot was just written");
                    };
                    let due = acc.max_end_ns.saturating_add(st.retirement_lag_ns);
                    acc.due_ns = due;
                    st.due_slow.insert((due, span.trace));
                }
            }
        }
        if must_sweep {
            fresh.extend(self.sweep(st, false));
        }
    }

    pub(crate) fn on_event(&self, ev: &Event) {
        // Self-emitted and informational kinds never feed the checks (and
        // must not: `invariant-violation` is emitted from `publish`).
        if matches!(
            ev.kind,
            events::INVARIANT_VIOLATION | events::TRACE_TRUNCATED | events::REACTOR_STALL
        ) {
            return;
        }
        let fresh = {
            let mut st = self.state.lock().expect("monitor poisoned");
            if st.finalized {
                return;
            }
            // Buffered spans logically precede this event: flush them so
            // degrade/replay windows and the watermark stay coherent.
            let mut fresh = self.drain_pending(&mut st);
            st.watermark_ns = st.watermark_ns.max(ev.ts_ns);
            match ev.kind {
                events::DURABILITY_MODE => {
                    if let Some(k) = ev
                        .detail
                        .split_whitespace()
                        .find_map(|t| t.strip_prefix("k="))
                        .and_then(|v| v.parse::<usize>().ok())
                    {
                        st.required_coverage.insert(ev.scope.clone(), k);
                    }
                }
                events::CATCH_UP_FINISH => {
                    st.catchup_epochs.insert(ev.epoch);
                }
                events::PEER_REPLACE_START => {
                    if st.ap_updated.contains(&(ev.scope.clone(), ev.epoch)) {
                        fresh.push(Violation {
                            t_ns: ev.ts_ns,
                            invariant: "ap-map-order",
                            trace: ev.trace,
                            scope: ev.scope.clone(),
                            message: format!(
                                "scope {}: ap-map update at epoch {} precedes its replace-start",
                                ev.scope, ev.epoch
                            ),
                        });
                    } else {
                        st.replace_pending.insert((ev.scope.clone(), ev.epoch));
                    }
                }
                events::AP_MAP_UPDATE => {
                    // Invariant 5: monotone published epochs per scope.
                    let prev = *st.last_ap_epoch.get(ev.scope.as_str()).unwrap_or(&0);
                    if ev.epoch < prev {
                        fresh.push(Violation {
                            t_ns: ev.ts_ns,
                            invariant: "ap-map-monotone",
                            trace: ev.trace,
                            scope: ev.scope.clone(),
                            message: format!(
                                "scope {}: ap-map epoch went backwards ({} after {})",
                                ev.scope, ev.epoch, prev
                            ),
                        });
                    }
                    st.last_ap_epoch
                        .insert(ev.scope.clone(), prev.max(ev.epoch));
                    // Invariant 4: the *first* update for (scope, epoch)
                    // commits a pending replacement; catch-up must have
                    // finished at that epoch by now.
                    let key = (ev.scope.clone(), ev.epoch);
                    if st.ap_updated.insert(key.clone())
                        && st.replace_pending.remove(&key)
                        && !st.catchup_epochs.contains(&ev.epoch)
                    {
                        fresh.push(Violation {
                            t_ns: ev.ts_ns,
                            invariant: "ap-map-order",
                            trace: ev.trace,
                            scope: ev.scope.clone(),
                            message: format!(
                                "scope {}: ap-map moved to epoch {} before catch-up finished",
                                ev.scope, ev.epoch
                            ),
                        });
                    }
                }
                events::DFS_FALLBACK_ENGAGE => {
                    st.degrade_windows.push(DegradeWindow {
                        scope: ev.scope.clone(),
                        engage_ns: ev.ts_ns,
                        reattach_ns: u64::MAX,
                    });
                }
                events::NCL_REATTACH => {
                    for w in st
                        .degrade_windows
                        .iter_mut()
                        .filter(|w| w.scope == ev.scope && w.reattach_ns == u64::MAX)
                    {
                        if w.engage_ns <= ev.ts_ns {
                            w.reattach_ns = ev.ts_ns;
                        }
                    }
                }
                _ => {}
            }
            for v in fresh.iter().cloned() {
                Self::store(&mut st, v);
            }
            fresh
        };
        self.publish(fresh);
    }

    /// Records that an in-memory trace ring overflowed: from here on,
    /// span-completeness judgments report a truncated window instead of
    /// violations.
    pub(crate) fn note_truncated(&self) {
        let mut st = self.state.lock().expect("monitor poisoned");
        st.truncated = true;
    }

    fn store(st: &mut MonState, v: Violation) {
        if st.violations.len() < MAX_VIOLATIONS {
            st.violations.push(v);
        } else {
            st.violations_dropped += 1;
        }
    }

    /// Emits counters / events / the hook for freshly confirmed violations.
    /// MUST be called with the state lock released: the event emission
    /// re-enters `Telemetry` (harmless — `on_event` ignores the kind), and
    /// the hook may capture a flight recorder that snapshots the rings.
    fn publish(&self, fresh: Vec<Violation>) {
        let tel = (!fresh.is_empty()).then(|| self.tel.upgrade()).flatten();
        for v in &fresh {
            self.violations_total.inc();
            if let Some(tel) = &tel {
                tel.event(
                    events::INVARIANT_VIOLATION,
                    &v.scope,
                    0,
                    format!("[{}] {}", v.invariant, v.message),
                );
            }
            let hook = self.hook.lock().expect("monitor hook poisoned").clone();
            if let Some(hook) = hook {
                hook(v);
            }
        }
        if !fresh.is_empty() {
            let st = self.state.lock().expect("monitor poisoned");
            self.open_traces_gauge
                .set((st.traces.len() - st.settled_count) as i64);
        }
    }

    /// Judges `acc` against invariants 1–3. `draining` skips the degrade
    /// deferral (finalize semantics).
    fn judge(&self, st: &MonState, trace: u64, acc: &TraceAcc, draining: bool) -> Judgment {
        let Some(root) = acc.root else {
            return Judgment::Clean; // rootless: handled by the caller
        };
        let mut fails = Vec::new();
        // 1. Tree integrity (skipped once a ring truncated — children may
        //    have been recorded before the monitor's window).
        if !st.truncated {
            for (id, parent, name) in &acc.children {
                if !acc.ids.contains(parent) {
                    fails.push(Violation {
                        t_ns: st.watermark_ns,
                        invariant: "orphan-span",
                        trace,
                        scope: root.scope.to_string(),
                        message: format!(
                            "trace {trace}: span {id} ({name}) has unresolved parent {parent}"
                        ),
                    });
                }
            }
        }
        if root.name == spans::NCL_WRITE {
            // 2. Ack ⇒ staged, doorbelled, quorum/k-covered.
            if !st.truncated {
                for (present, required) in [
                    (acc.has_stage, spans::NCL_STAGE),
                    (acc.has_doorbell, spans::NCL_DOORBELL),
                ] {
                    if !present {
                        fails.push(Violation {
                            t_ns: st.watermark_ns,
                            invariant: "ack-coverage",
                            trace,
                            scope: root.scope.to_string(),
                            message: format!("trace {trace}: acked write missing {required} span"),
                        });
                    }
                }
                let required = st
                    .required_coverage
                    .get(root.scope)
                    .copied()
                    .unwrap_or(st.quorum);
                if acc.coverage.len() < required {
                    fails.push(Violation {
                        t_ns: st.watermark_ns,
                        invariant: "ack-coverage",
                        trace,
                        scope: root.scope.to_string(),
                        message: format!(
                            "trace {trace}: acked write covered by {} peers ({:?}), reconstruction quorum is {required}",
                            acc.coverage.len(),
                            acc.coverage
                        ),
                    });
                }
            }
            // 3. No write root starts inside a degraded window, unless it is
            //    reattach-replay traffic.
            for w in st.degrade_windows.iter().filter(|w| w.scope == root.scope) {
                if root.start_ns >= w.engage_ns && root.start_ns < w.reattach_ns {
                    if w.reattach_ns == u64::MAX && !draining {
                        // Window still open: the exempting replay span is
                        // recorded just before reattach, so wait for it.
                        return Judgment::Defer;
                    }
                    let replayed = st.replay_windows.iter().any(|r| {
                        r.scope == root.scope
                            && root.start_ns >= r.start_ns
                            && root.start_ns <= r.end_ns
                    });
                    if !replayed {
                        fails.push(Violation {
                            t_ns: st.watermark_ns,
                            invariant: "degraded-write",
                            trace,
                            scope: root.scope.to_string(),
                            message: format!(
                                "trace {trace}: write started at {}ns inside degraded window [{}ns, {}ns) of {}",
                                root.start_ns, w.engage_ns, w.reattach_ns, root.scope
                            ),
                        });
                    }
                }
            }
        }
        if fails.is_empty() {
            Judgment::Clean
        } else {
            Judgment::Fail(fails)
        }
    }

    /// Retires quiesced traces by popping the due index until it is ahead of
    /// the watermark — O(traces actually due), independent of how many are
    /// open. `draining` judges everything immediately (finalize). Returns
    /// freshly confirmed violations; caller publishes them after releasing
    /// the lock.
    fn sweep(&self, st: &mut MonState, draining: bool) -> Vec<Violation> {
        let watermark = st.watermark_ns;
        let mut fresh = Vec::new();
        // Strict `due < watermark`: `due == max_end + lag` retires only once
        // the stream has moved *past* the lag (the old `quiet > lag`).
        let mut ready: Vec<(u64, u64)> = Vec::new();
        for queue in [&mut st.due_rooted, &mut st.due_rootless] {
            while queue
                .front()
                .is_some_and(|&(due, _)| draining || due < watermark)
            {
                ready.push(queue.pop_front().expect("front checked"));
            }
        }
        while let Some(&entry) = st.due_slow.iter().next() {
            if !draining && entry.0 >= watermark {
                break;
            }
            st.due_slow.remove(&entry);
            ready.push(entry);
        }
        for (due, trace) in ready {
            let acc = match st.traces.get(&trace) {
                None => continue, // already retired; this was a stale entry
                Some(Slot::Settled(tomb_due)) => {
                    if draining || *tomb_due == due {
                        // Tombstone expiry: the straggler window of a trace
                        // judged clean at root arrival has closed.
                        st.traces.remove(&trace);
                        st.settled_count -= 1;
                    }
                    // Else: a stale pre-settle entry — the tombstone's own
                    // expiry entry is still queued.
                    continue;
                }
                Some(Slot::Live(acc)) => acc,
            };
            if !draining && acc.due_ns != due {
                continue; // superseded: the trace was touched again
            }
            if acc.root.is_none() {
                // Rootless traces are indexed once, at their first span, so
                // re-check quiescence: if touched since, requeue instead.
                let fresh_due = acc.max_end_ns.saturating_add(st.open_write_lag_ns);
                if !draining && fresh_due > due {
                    let Some(Slot::Live(acc)) = st.traces.get_mut(&trace) else {
                        unreachable!("live slot checked above");
                    };
                    acc.due_ns = fresh_due;
                    st.due_slow.insert((fresh_due, trace));
                    continue;
                }
                // Rootless at retirement: a crashed (never-acked) write, or
                // stray straggler children of an already-retired trace.
                if acc.is_write {
                    st.open_writes += 1;
                }
                st.traces.remove(&trace);
                continue;
            }
            let was_suspect = acc.suspect_deadline_ns.is_some();
            match self.judge(st, trace, acc, draining) {
                Judgment::Clean => {
                    st.retired_clean += 1;
                    self.retired_total.inc();
                    if was_suspect {
                        st.suspect_count -= 1;
                    }
                    st.traces.remove(&trace);
                }
                Judgment::Defer => {
                    // Keep; re-examine one lag from now (the exempting
                    // replay span / reattach will have landed by then, and
                    // finalize drains regardless).
                    let retry = watermark.saturating_add(st.retirement_lag_ns.max(1));
                    let Some(Slot::Live(acc)) = st.traces.get_mut(&trace) else {
                        unreachable!("live slot checked above");
                    };
                    acc.due_ns = retry;
                    st.due_slow.insert((retry, trace));
                }
                Judgment::Fail(violations) => {
                    if was_suspect || draining {
                        for v in violations {
                            fresh.push(v.clone());
                            Self::store(st, v);
                        }
                        if was_suspect {
                            st.suspect_count -= 1;
                        }
                        st.traces.remove(&trace);
                    } else {
                        // First failure: hold as a suspect; late catch-up
                        // credits may still clear it.
                        let deadline = watermark.saturating_add(st.suspect_grace_ns);
                        let Some(Slot::Live(acc)) = st.traces.get_mut(&trace) else {
                            unreachable!("live slot checked above");
                        };
                        acc.suspect_deadline_ns = Some(deadline);
                        acc.due_ns = deadline;
                        st.due_slow.insert((deadline, trace));
                        st.suspect_count += 1;
                    }
                }
            }
        }
        self.open_traces_gauge
            .set((st.traces.len() - st.settled_count) as i64);
        self.suspects_gauge.set(st.suspect_count as i64);
        fresh
    }

    fn report_locked(&self, st: &MonState) -> MonitorReport {
        MonitorReport {
            acked_writes: st.acked_writes,
            open_writes: st.open_writes,
            retired_clean: st.retired_clean,
            open_traces: st.traces.len() - st.settled_count,
            suspects: st.suspect_count,
            truncated: st.truncated,
            finalized: st.finalized,
            violations: st.violations.clone(),
            violations_dropped: st.violations_dropped,
        }
    }
}

/// Public handle to an attached online monitor. Cloning shares the checker.
///
/// Dropping the last clone deactivates the checks: the recording fast path
/// reverts to a single relaxed load, the drainer thread exits, and the
/// checker state is freed (the small core allocation stays in the owning
/// [`Telemetry`]'s lock-free slot, ready to be revived by a later attach).
pub struct OnlineMonitor {
    core: Arc<MonitorCore>,
}

impl Clone for OnlineMonitor {
    fn clone(&self) -> Self {
        Self::from_core(Arc::clone(&self.core))
    }
}

impl Drop for OnlineMonitor {
    fn drop(&mut self) {
        if self.core.handles.fetch_sub(1, Ordering::AcqRel) == 1 {
            self.core.deactivate();
        }
    }
}

impl std::fmt::Debug for OnlineMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OnlineMonitor")
            .field("violations", &self.violation_count())
            .finish()
    }
}

impl OnlineMonitor {
    /// Attaches a monitor with default retirement/grace windows. `quorum` is
    /// the deployment's f+1 write quorum (EC scopes override it per scope
    /// via their `durability-mode` events, exactly like the analyzer).
    ///
    /// A `Telemetry` accepts one attachment for its lifetime; later calls
    /// return a handle to the already-attached monitor.
    pub fn attach(tel: &Telemetry, quorum: usize) -> Self {
        Self::attach_with_limits(
            tel,
            quorum,
            DEFAULT_RETIREMENT_LAG_NS,
            DEFAULT_SUSPECT_GRACE_NS,
        )
    }

    /// [`attach`](Self::attach) with explicit windows, for tests that want
    /// fast retirement.
    pub fn attach_with_limits(
        tel: &Telemetry,
        quorum: usize,
        retirement_lag_ns: u64,
        suspect_grace_ns: u64,
    ) -> Self {
        let core = Arc::new(MonitorCore {
            tel: tel.downgrade(),
            handles: AtomicUsize::new(0),
            active: AtomicBool::new(true),
            violations_total: tel.counter("invariant.violations.total"),
            retired_total: tel.counter("invariant.retired.total"),
            open_traces_gauge: tel.gauge("invariant.open_traces"),
            suspects_gauge: tel.gauge("invariant.suspects"),
            hook: Mutex::new(None),
            pending: Mutex::new(Vec::new()),
            gate: Arc::new((Mutex::new(false), std::sync::Condvar::new())),
            drainer: Mutex::new(None),
            state: Mutex::new(MonState {
                quorum,
                retirement_lag_ns,
                suspect_grace_ns,
                open_write_lag_ns: DEFAULT_OPEN_WRITE_LAG_NS,
                ..MonState::default()
            }),
        });
        match tel.install_monitor(&core) {
            Some(existing) => Self::from_core(existing),
            None => {
                if tel.is_enabled() {
                    MonitorCore::spawn_drainer(&core);
                }
                Self::from_core(core)
            }
        }
    }

    /// Registers (replacing) the violation hook, fired once per confirmed
    /// violation, outside every monitor lock. The testbed points this at a
    /// flight-recorder dump so the offending window is captured at fault
    /// time.
    pub fn on_violation(&self, hook: impl Fn(&Violation) + Send + Sync + 'static) {
        *self.core.hook.lock().expect("monitor hook poisoned") = Some(Arc::new(hook));
    }

    /// Total confirmed violations so far (flushes buffered spans first).
    pub fn violation_count(&self) -> u64 {
        let (fresh, count) = {
            let mut st = self.core.state.lock().expect("monitor poisoned");
            let fresh = self.core.drain_pending(&mut st);
            (fresh, st.violations.len() as u64 + st.violations_dropped)
        };
        self.core.publish(fresh);
        count
    }

    /// True when at least one invariant has been violated (`/health` flips
    /// to 503 on this).
    pub fn violating(&self) -> bool {
        self.violation_count() > 0
    }

    /// Point-in-time report without draining open traces (buffered spans
    /// are flushed and a retirement sweep runs first).
    pub fn report(&self) -> MonitorReport {
        let mut st = self.core.state.lock().expect("monitor poisoned");
        if !st.finalized {
            let mut fresh = self.core.drain_pending(&mut st);
            fresh.extend(self.core.sweep(&mut st, false));
            let report = self.core.report_locked(&st);
            drop(st);
            self.core.publish(fresh);
            return report;
        }
        self.core.report_locked(&st)
    }

    /// Drains every open trace (watermark → ∞), settles suspects, and
    /// freezes the monitor: subsequent spans/events are ignored, so the
    /// returned report is stable for an offline cross-check. Idempotent.
    pub fn finalize(&self) -> MonitorReport {
        let (fresh, report) = {
            let mut st = self.core.state.lock().expect("monitor poisoned");
            if st.finalized {
                return self.core.report_locked(&st);
            }
            let mut fresh = self.core.drain_pending(&mut st);
            fresh.extend(self.core.sweep(&mut st, true));
            st.finalized = true;
            (fresh, self.core.report_locked(&st))
        };
        self.core.publish(fresh);
        // The report was taken before publish (which only touches gauges);
        // re-read nothing — violations were already stored under the lock.
        report
    }

    /// `/invariants` body: the current report as JSON.
    pub fn render_json(&self) -> String {
        self.report().to_json()
    }

    pub(crate) fn from_core(core: Arc<MonitorCore>) -> Self {
        core.handles.fetch_add(1, Ordering::AcqRel);
        OnlineMonitor { core }
    }
}

impl MonitorCore {
    /// Spawns the background drainer: wakes when a producer crosses
    /// [`DRAIN_BATCH`] buffered spans (or every [`DRAIN_INTERVAL`]), flushes
    /// the buffer through the checker, and exits when the gate's stop flag
    /// is raised (deactivation or core drop). Holding only a `Weak`, it
    /// never keeps an orphaned core alive.
    pub(crate) fn spawn_drainer(core: &Arc<MonitorCore>) {
        let weak = Arc::downgrade(core);
        let gate = Arc::clone(&core.gate);
        let handle = std::thread::Builder::new()
            .name("ncl-invmon".to_string())
            .spawn(move || loop {
                {
                    let stopped = gate.0.lock().expect("monitor gate poisoned");
                    let (stopped, _) = gate
                        .1
                        .wait_timeout(stopped, DRAIN_INTERVAL)
                        .expect("monitor gate poisoned");
                    if *stopped {
                        return;
                    }
                }
                let Some(core) = weak.upgrade() else { return };
                let fresh = {
                    let mut st = core.state.lock().expect("monitor poisoned");
                    core.drain_pending(&mut st)
                };
                core.publish(fresh);
            })
            .expect("spawn invariant-monitor drainer");
        *core.drainer.lock().expect("monitor drainer poisoned") = Some(handle);
    }

    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Acquire)
    }

    /// Revives a deactivated core in place with a new attachment's
    /// configuration (the checker state starts fresh). Called by
    /// `Telemetry::install_monitor`, which then restarts the drainer.
    pub(crate) fn reactivate(&self, candidate: &MonitorCore) {
        let config = {
            let c = candidate.state.lock().expect("monitor poisoned");
            (
                c.quorum,
                c.retirement_lag_ns,
                c.suspect_grace_ns,
                c.open_write_lag_ns,
            )
        };
        *self.state.lock().expect("monitor poisoned") = MonState {
            quorum: config.0,
            retirement_lag_ns: config.1,
            suspect_grace_ns: config.2,
            open_write_lag_ns: config.3,
            ..MonState::default()
        };
        self.pending
            .lock()
            .expect("monitor buffer poisoned")
            .clear();
        self.active.store(true, Ordering::Release);
    }

    /// Restarts the drainer after a [`reactivate`](Self::reactivate) (the
    /// previous one exited at deactivation).
    pub(crate) fn respawn_drainer(core: &Arc<MonitorCore>) {
        *core.gate.0.lock().expect("monitor gate poisoned") = false;
        let running = core
            .drainer
            .lock()
            .expect("monitor drainer poisoned")
            .is_some();
        if !running {
            Self::spawn_drainer(core);
        }
    }

    /// Last public handle gone: stop forwarding, stop the drainer, free the
    /// checker state. The allocation itself stays installed in the owning
    /// `Telemetry` (its lock-free slot is write-once) until that drops.
    fn deactivate(&self) {
        self.active.store(false, Ordering::Release);
        if let Some(tel) = self.tel.upgrade() {
            tel.clear_monitor_gate();
        }
        self.stop_drainer();
        self.pending
            .lock()
            .expect("monitor buffer poisoned")
            .clear();
        *self.state.lock().expect("monitor poisoned") = MonState::default();
    }

    fn stop_drainer(&self) {
        *self.gate.0.lock().expect("monitor gate poisoned") = true;
        self.gate.1.notify_all();
        if let Some(h) = self
            .drainer
            .lock()
            .expect("monitor drainer poisoned")
            .take()
        {
            // Joining from the drainer's own thread (a hook holding the last
            // handle) would error, not deadlock — skip it instead.
            if std::thread::current().id() != h.thread().id() {
                let _ = h.join();
            }
        }
    }
}

impl Drop for MonitorCore {
    fn drop(&mut self) {
        self.stop_drainer();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::{Duration, Instant};

    fn attached() -> (Telemetry, OnlineMonitor) {
        let tel = Telemetry::new();
        // Tiny windows so tests retire instantly.
        let mon = OnlineMonitor::attach_with_limits(&tel, 2, 0, 0);
        (tel, mon)
    }

    fn emit_write(tel: &Telemetry, peers: &[&str]) -> u64 {
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_micros(50);
        let trace = tel.next_trace_id();
        let scope = crate::intern_scope("app/mon");
        tel.span_auto(trace, trace, spans::NCL_STAGE, scope, 1, t0, t1);
        tel.span_auto(trace, trace, spans::NCL_DOORBELL, scope, 1, t0, t1);
        for p in peers {
            tel.span_auto(
                trace,
                trace,
                spans::NCL_WIRE_PEER,
                crate::intern_scope(p),
                1,
                t0,
                t1,
            );
        }
        tel.span(trace, trace, 0, spans::NCL_WRITE, scope, 1, t0, t1);
        trace
    }

    #[test]
    fn clean_writes_retire_without_violations() {
        let (tel, mon) = attached();
        for _ in 0..4 {
            emit_write(&tel, &["peer-0", "peer-1"]);
        }
        let report = mon.finalize();
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.acked_writes, 4);
        assert_eq!(report.open_traces, 0);
        assert_eq!(report.retired_clean, 4);
    }

    #[test]
    fn under_coverage_is_confirmed_after_grace() {
        let (tel, mon) = attached();
        emit_write(&tel, &["peer-0"]);
        let report = mon.finalize();
        assert!(!report.ok());
        assert!(report.violations[0].message.contains("quorum"));
        assert_eq!(mon.violation_count(), 1);
        assert_eq!(tel.counter_value("invariant.violations.total"), 1);
    }

    #[test]
    fn late_catchup_credit_clears_a_suspect() {
        let tel = Telemetry::new();
        let mon = OnlineMonitor::attach_with_limits(&tel, 2, 0, u64::MAX / 2);
        let trace = emit_write(&tel, &["peer-0"]);
        // Force a sweep: the under-covered write becomes a suspect.
        for _ in 0..SWEEP_EVERY {
            tel.event(events::EPOCH_BUMP, "app/mon", 1, "");
            emit_write(&tel, &["peer-0", "peer-1"]);
        }
        assert_eq!(mon.violation_count(), 0, "suspect, not yet a violation");
        // The repair catches peer-2 up over the old record.
        let t0 = Instant::now();
        tel.span_auto(
            trace,
            trace,
            spans::NCL_CATCHUP_PEER,
            crate::intern_scope("peer-2"),
            2,
            t0,
            t0,
        );
        let report = mon.finalize();
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn ap_map_before_catchup_is_flagged_live() {
        let (tel, mon) = attached();
        tel.event(events::PEER_REPLACE_START, "app/f", 2, "");
        tel.event(events::AP_MAP_UPDATE, "app/f", 2, "");
        assert_eq!(mon.violation_count(), 1, "flagged at event arrival");
        let report = mon.report();
        assert!(report.violations[0].message.contains("catch-up"));
        assert_eq!(report.violations[0].invariant, "ap-map-order");
    }

    #[test]
    fn proper_replace_ordering_is_clean_and_monotone_epochs_enforced() {
        let (tel, mon) = attached();
        tel.event(events::PEER_REPLACE_START, "app/f", 2, "");
        tel.event(events::CATCH_UP_FINISH, "peer-7", 2, "");
        tel.event(events::AP_MAP_UPDATE, "app/f", 2, "");
        assert_eq!(mon.violation_count(), 0);
        tel.event(events::AP_MAP_UPDATE, "app/f", 1, "");
        assert_eq!(mon.violation_count(), 1);
        assert!(mon.report().violations[0].message.contains("backwards"));
    }

    #[test]
    fn update_before_replace_start_is_flagged() {
        let (tel, mon) = attached();
        tel.event(events::AP_MAP_UPDATE, "app/f", 2, "");
        tel.event(events::PEER_REPLACE_START, "app/f", 2, "");
        assert!(mon
            .report()
            .violations
            .iter()
            .any(|v| v.message.contains("precedes")));
    }

    #[test]
    fn degraded_write_defers_until_reattach_then_exempts_replay() {
        let (tel, mon) = attached();
        let scope = crate::intern_scope("app/deg");
        tel.event(events::DFS_FALLBACK_ENGAGE, "app/deg", 2, "");
        // A write inside the window — and the replay span that exempts it,
        // recorded (as in splitfs) just before the reattach event.
        let origin = Instant::now();
        emit_write_scoped(&tel, scope, origin);
        tel.span(
            tel.next_trace_id(),
            0,
            0,
            spans::FS_REATTACH_REPLAY,
            scope,
            3,
            origin - Duration::from_millis(1),
            origin + Duration::from_millis(1),
        );
        tel.event(events::NCL_REATTACH, "app/deg", 3, "");
        let report = mon.finalize();
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn degraded_write_without_replay_is_flagged() {
        let (tel, mon) = attached();
        let scope = crate::intern_scope("app/deg2");
        tel.event(events::DFS_FALLBACK_ENGAGE, "app/deg2", 2, "");
        emit_write_scoped(&tel, scope, Instant::now());
        tel.event(events::NCL_REATTACH, "app/deg2", 3, "");
        let report = mon.finalize();
        assert!(!report.ok());
        assert!(report.violations[0].message.contains("degraded window"));
    }

    fn emit_write_scoped(tel: &Telemetry, scope: &'static str, t0: Instant) {
        let t1 = t0 + Duration::from_micros(50);
        let trace = tel.next_trace_id();
        tel.span_auto(trace, trace, spans::NCL_STAGE, scope, 1, t0, t1);
        tel.span_auto(trace, trace, spans::NCL_DOORBELL, scope, 1, t0, t1);
        for p in ["peer-0", "peer-1"] {
            tel.span_auto(
                trace,
                trace,
                spans::NCL_WIRE_PEER,
                crate::intern_scope(p),
                1,
                t0,
                t1,
            );
        }
        tel.span(trace, trace, 0, spans::NCL_WRITE, scope, 1, t0, t1);
    }

    #[test]
    fn orphan_child_in_rooted_trace_is_flagged_rootless_is_open() {
        let (tel, mon) = attached();
        let scope = crate::intern_scope("app/orph");
        let t0 = Instant::now();
        let trace = tel.next_trace_id();
        emit_write(&tel, &["peer-0", "peer-1"]); // keep the stream flowing
        tel.span_auto(trace, trace, spans::NCL_STAGE, scope, 1, t0, t0);
        tel.span(trace, trace, 0, spans::NCL_WRITE, scope, 1, t0, t0);
        // A child referencing a parent that never existed.
        let stray = tel.next_span_id();
        tel.span(trace, stray, 999_999_999, spans::NCL_ACK, scope, 1, t0, t0);
        // And a rootless (open) write on its own trace.
        let open = tel.next_trace_id();
        tel.span_auto(open, open, spans::NCL_STAGE, scope, 1, t0, t0);
        let report = mon.finalize();
        assert!(report
            .violations
            .iter()
            .any(|v| v.invariant == "orphan-span"));
        assert_eq!(report.open_writes, 1);
    }

    #[test]
    fn truncated_window_downgrades_span_checks() {
        let (tel, mon) = attached();
        tel.set_span_capacity(4);
        // Enough spans to overflow the 4-entry ring many times over; the
        // beheaded traces must NOT surface as orphan/coverage violations.
        for _ in 0..8 {
            emit_write(&tel, &["peer-0"]);
        }
        let report = mon.finalize();
        assert!(report.truncated);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn violation_hook_fires_and_event_is_emitted() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let (tel, mon) = attached();
        let fired = Arc::new(AtomicUsize::new(0));
        let fired2 = Arc::clone(&fired);
        mon.on_violation(move |_| {
            fired2.fetch_add(1, Ordering::SeqCst);
        });
        tel.event(events::PEER_REPLACE_START, "app/f", 2, "");
        tel.event(events::AP_MAP_UPDATE, "app/f", 2, "");
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert!(tel
            .events()
            .iter()
            .any(|e| e.kind == events::INVARIANT_VIOLATION));
    }

    #[test]
    fn detached_monitor_stops_receiving() {
        let tel = Telemetry::new();
        {
            let _mon = OnlineMonitor::attach_with_limits(&tel, 2, 0, 0);
        }
        // Monitor dropped: the weak upgrade fails, recording still works.
        emit_write(&tel, &["peer-0"]);
        assert_eq!(tel.spans().len(), 4);
    }

    #[test]
    fn report_json_is_structured() {
        let (tel, mon) = attached();
        tel.event(events::PEER_REPLACE_START, "app/f", 2, "");
        tel.event(events::AP_MAP_UPDATE, "app/f", 2, "");
        let json = mon.render_json();
        assert!(json.contains("\"status\": \"violating\""));
        assert!(json.contains("\"violations_total\": 1"));
        assert!(json.contains("ap-map-order"));
    }
}
