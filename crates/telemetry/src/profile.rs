//! Per-shard reactor time-in-state profiling and a stall watchdog.
//!
//! The sharded NCL runtime's reactors loop `apply-oplog → poll → park`
//! (`core/src/runtime.rs`). This module gives each shard a
//! [`ShardProfile`] handle the reactor samples at its poll boundaries:
//!
//! * **apply-oplog** — time applying the shared control-operation log;
//! * **publish** — poll rounds that advanced at least one hosted file's
//!   durable watermark (productive completion reaping);
//! * **poll** — poll rounds that found nothing to publish;
//! * **park** — time blocked in the idle wait.
//!
//! All four are monotone nanosecond counters in the owning
//! [`Telemetry`]'s registry (`ncl.reactor.shard-<i>.poll_ns`, …), so they
//! flow to `/metrics` with no extra plumbing; per-shard `oplog_lag` and
//! `queue_depth` gauges ride along. `/profile` serves [`ProfileReport`] as
//! JSON.
//!
//! The **stall watchdog** is a single low-frequency thread that checks each
//! shard's heartbeat (stamped once per reactor loop): a reactor silent
//! longer than N idle periods gets a [`reactor-stall`](crate::events::REACTOR_STALL)
//! event, bumps `ncl.reactor.stall.total`, and raises the
//! `ncl.reactor.stalled` gauge — which the SLO plane's saturation tracker
//! folds into `/health`. The flag clears itself when the heartbeat resumes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{events, Counter, Gauge, Telemetry};

/// Reactor idle period the watchdog reasons in (mirrors the runtime's
/// `REACTOR_IDLE`).
pub const DEFAULT_IDLE_PERIOD: Duration = Duration::from_millis(1);
/// Idle periods of silence before a reactor is declared stalled.
pub const DEFAULT_STALL_IDLE_PERIODS: u64 = 64;

/// Gauge the SLO saturation tracker reads: number of currently stalled
/// reactors.
pub const STALLED_GAUGE: &str = "ncl.reactor.stalled";
/// Counter of stall transitions (a flapping reactor counts each time).
pub const STALL_TOTAL: &str = "ncl.reactor.stall.total";

struct ShardProf {
    index: usize,
    apply_ns: Counter,
    poll_ns: Counter,
    publish_ns: Counter,
    park_ns: Counter,
    loops: Counter,
    publishes: Counter,
    oplog_lag: Gauge,
    queue_depth: Gauge,
    /// Stream-clock (`Telemetry::now_ns`) heartbeat, stamped per loop.
    last_beat_ns: AtomicU64,
    stalled: AtomicBool,
}

/// Per-shard recording handle, cloned into the shard's reactor thread.
/// Every method is a couple of relaxed atomics; when the owning telemetry
/// is disabled the handles are no-ops and [`enabled`](Self::enabled) lets
/// the reactor skip its timestamping entirely.
#[derive(Clone)]
pub struct ShardProfile {
    prof: Arc<ShardProf>,
    enabled: bool,
}

impl ShardProfile {
    /// True when samples recorded through this handle are retained; the
    /// reactor guards its `Instant::now` calls behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Time spent applying the shared op log this round.
    #[inline]
    pub fn on_apply(&self, d: Duration) {
        self.prof.apply_ns.add(d.as_nanos() as u64);
    }

    /// Time spent draining hosted files this round; `progressed` is whether
    /// any file's durable watermark advanced (publish vs empty poll).
    #[inline]
    pub fn on_poll(&self, d: Duration, progressed: bool) {
        let ns = d.as_nanos() as u64;
        if progressed {
            self.prof.publish_ns.add(ns);
            self.prof.publishes.inc();
        } else {
            self.prof.poll_ns.add(ns);
        }
        self.prof.loops.inc();
    }

    /// Time spent parked in the idle wait.
    #[inline]
    pub fn on_park(&self, d: Duration) {
        self.prof.park_ns.add(d.as_nanos() as u64);
    }

    /// Stamps the heartbeat the stall watchdog watches (stream clock).
    #[inline]
    pub fn beat(&self, now_ns: u64) {
        self.prof.last_beat_ns.store(now_ns, Ordering::Relaxed);
    }

    /// Published-but-unapplied op-log entries for this shard.
    #[inline]
    pub fn set_oplog_lag(&self, lag: u64) {
        self.prof.oplog_lag.set(lag as i64);
    }

    /// Files currently hosted on this shard.
    #[inline]
    pub fn set_queue_depth(&self, depth: usize) {
        self.prof.queue_depth.set(depth as i64);
    }
}

/// One shard's profile, as served on `/profile`.
#[derive(Debug, Clone, Default)]
pub struct ShardRow {
    /// Shard index.
    pub shard: usize,
    /// Nanoseconds applying the op log.
    pub apply_ns: u64,
    /// Nanoseconds in empty poll rounds.
    pub poll_ns: u64,
    /// Nanoseconds in poll rounds that advanced a watermark.
    pub publish_ns: u64,
    /// Nanoseconds parked.
    pub park_ns: u64,
    /// Reactor loop iterations.
    pub loops: u64,
    /// Loops that advanced a watermark.
    pub publishes: u64,
    /// Current op-log lag.
    pub oplog_lag: i64,
    /// Current hosted-file count.
    pub queue_depth: i64,
    /// Stream-clock heartbeat age when the report was taken.
    pub beat_age_ns: u64,
    /// Whether the watchdog currently considers the reactor stalled.
    pub stalled: bool,
}

impl ShardRow {
    /// Share of non-parked time, in percent (0 when nothing recorded).
    pub fn busy_pct(&self) -> f64 {
        let busy = self.apply_ns + self.poll_ns + self.publish_ns;
        let total = busy + self.park_ns;
        if total == 0 {
            0.0
        } else {
            100.0 * busy as f64 / total as f64
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"shard\": {}, \"apply_ns\": {}, \"poll_ns\": {}, \"publish_ns\": {}, \"park_ns\": {}, \"loops\": {}, \"publishes\": {}, \"busy_pct\": {:.3}, \"oplog_lag\": {}, \"queue_depth\": {}, \"beat_age_ns\": {}, \"stalled\": {}}}",
            self.shard,
            self.apply_ns,
            self.poll_ns,
            self.publish_ns,
            self.park_ns,
            self.loops,
            self.publishes,
            self.busy_pct(),
            self.oplog_lag,
            self.queue_depth,
            self.beat_age_ns,
            self.stalled
        )
    }
}

/// Point-in-time profile across every shard (the `/profile` body).
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Stream-clock timestamp the report was taken at.
    pub t_ns: u64,
    /// Per-shard rows, index order.
    pub shards: Vec<ShardRow>,
    /// Total stall transitions observed.
    pub stalls_total: u64,
}

impl ProfileReport {
    /// Renders the report as one JSON object.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self.shards.iter().map(|s| s.to_json()).collect();
        format!(
            "{{\"t_ns\": {}, \"stalls_total\": {}, \"shards\": [{}]}}",
            self.t_ns,
            self.stalls_total,
            rows.join(", ")
        )
    }
}

struct ProfInner {
    tel: Telemetry,
    shards: Vec<Arc<ShardProf>>,
    stall_threshold_ns: u64,
    stall_total: Counter,
    stalled_gauge: Gauge,
    stop: Arc<AtomicBool>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
}

/// Profiler for one sharded runtime; owned by `NclRuntime`, which hands a
/// [`ShardProfile`] to each reactor thread. Cloning shares state.
#[derive(Clone)]
pub struct ReactorProfiler {
    inner: Arc<ProfInner>,
}

impl std::fmt::Debug for ReactorProfiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReactorProfiler")
            .field("shards", &self.inner.shards.len())
            .finish()
    }
}

impl ReactorProfiler {
    /// Profiler with the default watchdog threshold (64 idle periods of
    /// 1ms). Disabled telemetry yields an inert profiler: no watchdog
    /// thread, no-op handles.
    pub fn new(tel: &Telemetry, shards: usize) -> Self {
        Self::with_limits(tel, shards, DEFAULT_IDLE_PERIOD, DEFAULT_STALL_IDLE_PERIODS)
    }

    /// Profiler with an explicit idle period and stall threshold.
    pub fn with_limits(
        tel: &Telemetry,
        shards: usize,
        idle_period: Duration,
        stall_idle_periods: u64,
    ) -> Self {
        let now = tel.now_ns();
        let shard_profs: Vec<Arc<ShardProf>> = (0..shards.max(1))
            .map(|i| {
                let n = |metric: &str| format!("ncl.reactor.shard-{i}.{metric}");
                Arc::new(ShardProf {
                    index: i,
                    apply_ns: tel.counter(&n("apply_ns")),
                    poll_ns: tel.counter(&n("poll_ns")),
                    publish_ns: tel.counter(&n("publish_ns")),
                    park_ns: tel.counter(&n("park_ns")),
                    loops: tel.counter(&n("loops")),
                    publishes: tel.counter(&n("publishes")),
                    oplog_lag: tel.gauge(&n("oplog_lag")),
                    queue_depth: tel.gauge(&n("queue_depth")),
                    last_beat_ns: AtomicU64::new(now),
                    stalled: AtomicBool::new(false),
                })
            })
            .collect();
        let stall_threshold_ns =
            (idle_period.as_nanos() as u64).saturating_mul(stall_idle_periods.max(1));
        let inner = Arc::new(ProfInner {
            tel: tel.clone(),
            shards: shard_profs,
            stall_threshold_ns,
            stall_total: tel.counter(STALL_TOTAL),
            stalled_gauge: tel.gauge(STALLED_GAUGE),
            stop: Arc::new(AtomicBool::new(false)),
            watchdog: Mutex::new(None),
        });
        let profiler = ReactorProfiler { inner };
        if tel.is_enabled() {
            let weak = Arc::downgrade(&profiler.inner);
            let stop = Arc::clone(&profiler.inner.stop);
            let interval = Duration::from_nanos((stall_threshold_ns / 2).clamp(
                5_000_000, // never spin faster than 5ms
                1_000_000_000,
            ));
            let handle = std::thread::Builder::new()
                .name("ncl-prof-watchdog".to_string())
                .spawn(move || {
                    while !stop.load(Ordering::Acquire) {
                        std::thread::sleep(interval);
                        let Some(inner) = weak.upgrade() else { break };
                        Self::check_stalls_inner(&inner);
                    }
                })
                .expect("spawn profiler watchdog");
            *profiler.inner.watchdog.lock().expect("watchdog poisoned") = Some(handle);
        }
        profiler
    }

    /// Number of shards profiled.
    pub fn shards(&self) -> usize {
        self.inner.shards.len()
    }

    /// The recording handle for shard `i`.
    pub fn shard(&self, i: usize) -> ShardProfile {
        ShardProfile {
            prof: Arc::clone(&self.inner.shards[i % self.inner.shards.len()]),
            enabled: self.inner.tel.is_enabled(),
        }
    }

    /// One watchdog round: flags reactors silent past the threshold, clears
    /// recovered ones. Returns the number currently stalled. Runs from the
    /// watchdog thread; callable directly from tests and `/profile`.
    pub fn check_stalls(&self) -> usize {
        Self::check_stalls_inner(&self.inner)
    }

    fn check_stalls_inner(inner: &ProfInner) -> usize {
        let now = inner.tel.now_ns();
        let mut stalled = 0;
        for shard in &inner.shards {
            let beat = shard.last_beat_ns.load(Ordering::Relaxed);
            let silent = now.saturating_sub(beat);
            if silent > inner.stall_threshold_ns {
                stalled += 1;
                if !shard.stalled.swap(true, Ordering::Relaxed) {
                    inner.stall_total.inc();
                    inner.tel.event(
                        events::REACTOR_STALL,
                        &format!("ncl.shard-{}", shard.index),
                        0,
                        format!(
                            "silent {}ms (threshold {}ms)",
                            silent / 1_000_000,
                            inner.stall_threshold_ns / 1_000_000
                        ),
                    );
                }
            } else {
                shard.stalled.store(false, Ordering::Relaxed);
            }
        }
        inner.stalled_gauge.set(stalled as i64);
        stalled
    }

    /// Point-in-time profile across every shard.
    pub fn report(&self) -> ProfileReport {
        let now = self.inner.tel.now_ns();
        ProfileReport {
            t_ns: now,
            stalls_total: self.inner.stall_total.get(),
            shards: self
                .inner
                .shards
                .iter()
                .map(|s| ShardRow {
                    shard: s.index,
                    apply_ns: s.apply_ns.get(),
                    poll_ns: s.poll_ns.get(),
                    publish_ns: s.publish_ns.get(),
                    park_ns: s.park_ns.get(),
                    loops: s.loops.get(),
                    publishes: s.publishes.get(),
                    oplog_lag: s.oplog_lag.get(),
                    queue_depth: s.queue_depth.get(),
                    beat_age_ns: now.saturating_sub(s.last_beat_ns.load(Ordering::Relaxed)),
                    stalled: s.stalled.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// `/profile` body: the current report as JSON (refreshing the stall
    /// flags first, so a scrape never reports a stale verdict).
    pub fn render_json(&self) -> String {
        self.check_stalls();
        self.report().to_json()
    }
}

impl Drop for ProfInner {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.watchdog.lock().expect("watchdog poisoned").take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_in_state_accumulates_and_exports() {
        let tel = Telemetry::new();
        let prof = ReactorProfiler::new(&tel, 2);
        let s0 = prof.shard(0);
        assert!(s0.enabled());
        s0.on_apply(Duration::from_micros(5));
        s0.on_poll(Duration::from_micros(10), true);
        s0.on_poll(Duration::from_micros(3), false);
        s0.on_park(Duration::from_millis(1));
        s0.set_oplog_lag(4);
        s0.set_queue_depth(2);
        let report = prof.report();
        assert_eq!(report.shards.len(), 2);
        let row = &report.shards[0];
        assert_eq!(row.apply_ns, 5_000);
        assert_eq!(row.publish_ns, 10_000);
        assert_eq!(row.poll_ns, 3_000);
        assert_eq!(row.park_ns, 1_000_000);
        assert_eq!(row.loops, 2);
        assert_eq!(row.publishes, 1);
        assert_eq!(row.oplog_lag, 4);
        assert_eq!(row.queue_depth, 2);
        assert!(row.busy_pct() > 0.0 && row.busy_pct() < 100.0);
        // The counters flow into the shared registry (→ /metrics).
        assert_eq!(tel.counter_value("ncl.reactor.shard-0.apply_ns"), 5_000);
        assert_eq!(tel.gauge_value("ncl.reactor.shard-0.oplog_lag"), 4);
        let json = prof.render_json();
        assert!(json.contains("\"shard\": 1"));
        assert!(json.contains("\"busy_pct\""));
    }

    #[test]
    fn stall_watchdog_flags_silent_reactors_and_clears_on_beat() {
        let tel = Telemetry::new();
        // 1ns idle period, threshold 1 → everything is instantly stale.
        let prof = ReactorProfiler::with_limits(&tel, 1, Duration::from_nanos(1), 1);
        let s0 = prof.shard(0);
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(prof.check_stalls(), 1);
        assert_eq!(tel.counter_value(STALL_TOTAL), 1);
        assert_eq!(tel.gauge_value(STALLED_GAUGE), 1);
        assert!(tel.events().iter().any(|e| e.kind == events::REACTOR_STALL));
        // A flapping reactor re-counts, but only per transition.
        assert_eq!(prof.check_stalls(), 1);
        assert_eq!(tel.counter_value(STALL_TOTAL), 1);
        s0.beat(tel.now_ns());
        // Within threshold right after the beat? The 1ns threshold makes
        // this racy, so only assert the clear path via a huge threshold.
        let prof2 = ReactorProfiler::with_limits(&tel, 1, Duration::from_secs(1), 1000);
        prof2.shard(0).beat(tel.now_ns());
        assert_eq!(prof2.check_stalls(), 0);
    }

    #[test]
    fn disabled_telemetry_yields_inert_profiler() {
        let tel = Telemetry::disabled();
        let prof = ReactorProfiler::new(&tel, 4);
        let s = prof.shard(3);
        assert!(!s.enabled());
        s.on_apply(Duration::from_micros(5));
        let report = prof.report();
        assert_eq!(report.shards[3].apply_ns, 0);
        assert_eq!(
            prof.check_stalls(),
            0,
            "frozen clock never exceeds threshold"
        );
    }
}
