//! Causal spans: timed intervals linked into per-write trace trees.
//!
//! Every NCL record gets a `trace` id at `record_nowait`; each stage of its
//! life (local staging, doorbell, per-peer wire flight, quorum ack) closes a
//! [`Span`] carrying that id. Control-plane operations (repair, recovery,
//! fallback replay) get their own trace ids so their child RPCs group the
//! same way. Spans are recorded *complete* — at close, with both endpoints —
//! which keeps the hot path to one ring push and makes the JSONL stream
//! trivially replayable: no open/close pairing is needed by consumers.
//!
//! Conventions:
//! * the **root** span of a trace has `id == trace` and `parent == 0`;
//! * child spans get fresh ids from the same generator as trace ids, so ids
//!   are unique across a process regardless of kind;
//! * `scope` follows the event convention (`app/file`, or a peer name for
//!   per-peer children);
//! * `epoch` is the epoch in force when the span *closed* (0 if unknown).

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Mutex, OnceLock};

use crate::snapshot::json_escape;
use crate::trace::JsonlSink;

/// Well-known span names, shared by emitters, the analyzer, and tests.
pub mod spans {
    /// Root span of one NCL write: `record_nowait` → quorum-durable.
    pub const NCL_WRITE: &str = "ncl.write";
    /// Local staging: payload + header copied into the staging buffer.
    pub const NCL_STAGE: &str = "ncl.stage";
    /// Doorbell: staged records posted to all peer QPs (batched WRs).
    pub const NCL_DOORBELL: &str = "ncl.doorbell";
    /// One peer's wire flight: WR post → header completion (scope = peer).
    pub const NCL_WIRE_PEER: &str = "ncl.wire.peer";
    /// Quorum ack: doorbell → f+1-th header completion observed.
    pub const NCL_ACK: &str = "ncl.ack";
    /// A replacement peer was caught up over this record (scope = peer);
    /// credits replaced-in peers with coverage the wire span cannot see.
    pub const NCL_CATCHUP_PEER: &str = "ncl.catchup.peer";

    /// Root span of one peer-replacement (repair) operation.
    pub const NCL_REPAIR: &str = "ncl.repair";
    /// Repair child: acquiring fresh peers from the controller.
    pub const NCL_REPAIR_ACQUIRE: &str = "ncl.repair.acquire";
    /// Repair child: catch-up of one fresh peer (scope = peer).
    pub const NCL_REPAIR_CATCHUP: &str = "ncl.repair.catchup";
    /// Repair child: epoch bump + ap-map update round-trip.
    pub const NCL_REPAIR_COMMIT: &str = "ncl.repair.commit";

    /// Root span of one post-crash recovery.
    pub const NCL_RECOVER: &str = "ncl.recover";
    /// Recovery child: contacting the ap-map peers and RDMA-reading the
    /// winning (max-sequence) image back.
    pub const NCL_RECOVER_FETCH: &str = "ncl.recover.fetch";
    /// Recovery child: replaying the recovered image onto lagging surviving
    /// peers (catch-up-existing, tail-diff when eligible).
    pub const NCL_RECOVER_REPLAY: &str = "ncl.recover.replay";
    /// Recovery child: restoring the FT level with fresh peers and swinging
    /// the ap-map to the new epoch.
    pub const NCL_RECOVER_REARM: &str = "ncl.recover.rearm";

    /// Splitfs replaying fallback-journal records through NCL on reattach;
    /// root writes that start inside this span are replay traffic, exempt
    /// from the "no ack while degraded" invariant.
    pub const FS_REATTACH_REPLAY: &str = "splitfs.reattach.replay";

    /// Every well-known name, used by the JSONL replay path to intern parsed
    /// name strings back to the canonical `&'static str` values.
    pub const ALL: [&str; 15] = [
        NCL_WRITE,
        NCL_STAGE,
        NCL_DOORBELL,
        NCL_WIRE_PEER,
        NCL_ACK,
        NCL_CATCHUP_PEER,
        NCL_REPAIR,
        NCL_REPAIR_ACQUIRE,
        NCL_REPAIR_CATCHUP,
        NCL_REPAIR_COMMIT,
        NCL_RECOVER,
        NCL_RECOVER_FETCH,
        NCL_RECOVER_REPLAY,
        NCL_RECOVER_REARM,
        FS_REATTACH_REPLAY,
    ];
}

/// Maps a parsed span name to its canonical constant (see
/// [`crate::trace::intern_kind`] for the interning rationale).
pub fn intern_span_name(name: &str) -> &'static str {
    for n in spans::ALL {
        if n == name {
            return n;
        }
    }
    Box::leak(name.to_string().into_boxed_str())
}

/// Interns a span scope (`app/file` or a peer name), returning a canonical
/// `&'static str`. Scopes recur constantly — every span of a file carries
/// the same one — so [`crate::Telemetry::span`] takes `&'static str` and
/// hot call sites intern once (per file / per peer), making span recording
/// allocation-free. The backing set deduplicates, so the leak is bounded by
/// the number of *distinct* scopes ever seen, not by call volume.
pub fn intern_scope(scope: &str) -> &'static str {
    static SCOPES: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
    let mut set = SCOPES
        .get_or_init(|| Mutex::new(BTreeSet::new()))
        .lock()
        .expect("scope interner poisoned");
    if let Some(existing) = set.get(scope) {
        return existing;
    }
    let leaked: &'static str = Box::leak(scope.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

/// One closed interval in a trace tree.
#[derive(Debug, Clone)]
pub struct Span {
    /// Trace this span belongs to; the root span has `id == trace`.
    pub trace: u64,
    /// Unique span id (process-wide).
    pub id: u64,
    /// Parent span id within the trace; 0 for roots.
    pub parent: u64,
    /// Span name; see [`spans`] for the well-known values.
    pub name: &'static str,
    /// What the span is about — `app/file`, or a peer name for per-peer
    /// children. Interned (see [`intern_scope`]) so spans are cheap to
    /// record and clone.
    pub scope: &'static str,
    /// Epoch in force when the span closed (0 when unknown).
    pub epoch: u64,
    /// Start, nanoseconds since the owning [`crate::Telemetry`] was created.
    pub start_ns: u64,
    /// End, same clock; `end_ns >= start_ns`.
    pub end_ns: u64,
}

impl Span {
    /// Duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Renders the span as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\": \"span\", \"trace\": {}, \"id\": {}, \"parent\": {}, \"name\": \"{}\", \"scope\": \"{}\", \"epoch\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
            self.trace,
            self.id,
            self.parent,
            json_escape(self.name),
            json_escape(self.scope),
            self.epoch,
            self.start_ns,
            self.end_ns
        )
    }
}

/// Spans are ~an order of magnitude denser than events (several per write),
/// so the ring defaults much larger; a full chaos schedule's spans should be
/// analyzed from the JSONL sink, not the ring.
const DEFAULT_CAPACITY: usize = 65536;

struct Ring {
    buf: VecDeque<Span>,
    capacity: usize,
    dropped: u64,
}

/// Bounded in-memory span buffer with an optional JSONL mirror (shared with
/// the event trace).
pub(crate) struct SpanTrace {
    ring: Mutex<Ring>,
    sink: JsonlSink,
}

impl SpanTrace {
    pub(crate) fn new(sink: JsonlSink) -> Self {
        SpanTrace {
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: DEFAULT_CAPACITY,
                dropped: 0,
            }),
            sink,
        }
    }

    /// Returns whether the ring had to drop its oldest entry to make room
    /// (the JSONL sink, when set, still received every record).
    pub(crate) fn record(&self, span: Span) -> bool {
        if self.sink.is_set() {
            self.sink.write_line(&span.to_json());
        }
        let mut ring = self.ring.lock().expect("span trace poisoned");
        let mut dropped = false;
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
            dropped = true;
        }
        ring.buf.push_back(span);
        dropped
    }

    pub(crate) fn spans(&self) -> Vec<Span> {
        self.ring
            .lock()
            .expect("span trace poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.ring.lock().expect("span trace poisoned").dropped
    }

    pub(crate) fn set_capacity(&self, capacity: usize) {
        let mut ring = self.ring.lock().expect("span trace poisoned");
        ring.capacity = capacity.max(1);
        while ring.buf.len() > ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, id: u64, parent: u64, name: &'static str) -> Span {
        Span {
            trace,
            id,
            parent,
            name,
            scope: "app/f",
            epoch: 1,
            start_ns: 10,
            end_ns: 40,
        }
    }

    #[test]
    fn spans_keep_order_and_ring_bounds() {
        let t = SpanTrace::new(JsonlSink::default());
        t.set_capacity(2);
        t.record(span(1, 1, 0, spans::NCL_WRITE));
        t.record(span(1, 2, 1, spans::NCL_STAGE));
        t.record(span(1, 3, 1, spans::NCL_DOORBELL));
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].id, 2);
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn span_json_has_type_discriminator_and_tree_fields() {
        let s = span(7, 9, 7, spans::NCL_WIRE_PEER);
        let j = s.to_json();
        assert!(j.contains("\"type\": \"span\""));
        assert!(j.contains("\"trace\": 7"));
        assert!(j.contains("\"parent\": 7"));
        assert!(j.contains("ncl.wire.peer"));
        assert_eq!(s.duration_ns(), 30);
    }

    #[test]
    fn intern_span_name_returns_canonical_constants() {
        let parsed = String::from("ncl.write");
        assert_eq!(intern_span_name(&parsed), spans::NCL_WRITE);
    }
}
