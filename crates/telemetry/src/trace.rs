//! Structured event trace for control-plane transitions.
//!
//! Data-path latencies are aggregated into histograms (see
//! [`crate::metrics`]); control-plane transitions — peer failure detection,
//! replacement, catch-up, epoch bumps, ap-map updates — are rare and
//! individually meaningful, so they are kept as discrete [`Event`]s in a
//! bounded ring buffer, optionally mirrored to a JSONL sink. A recovery
//! timeline in the style of the paper's Table 3 falls out of one run's trace.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

use crate::snapshot::json_escape;

/// Well-known event kinds, shared by emitters and tests so the two cannot
/// drift apart. The trace itself accepts any `&'static str`.
pub mod events {
    /// A live peer stopped completing work requests.
    pub const PEER_FAILURE: &str = "peer-failure-detect";
    /// Replacement of dead peers began.
    pub const PEER_REPLACE_START: &str = "peer-replace-start";
    /// Replacement finished; the replica set is whole again.
    pub const PEER_REPLACE_FINISH: &str = "peer-replace-finish";
    /// Copying the acked prefix onto a peer began.
    pub const CATCH_UP_START: &str = "catch-up-start";
    /// Catch-up finished.
    pub const CATCH_UP_FINISH: &str = "catch-up-finish";
    /// The file's epoch advanced (survivors fenced to the new epoch).
    pub const EPOCH_BUMP: &str = "epoch-bump";
    /// The controller's availability map gained or changed an entry.
    pub const AP_MAP_UPDATE: &str = "ap-map-update";
    /// The controller's availability map dropped an entry.
    pub const AP_MAP_DELETE: &str = "ap-map-delete";
    /// Post-crash recovery of a file began.
    pub const RECOVERY_START: &str = "recovery-start";
    /// Recovery finished; the file is writable again.
    pub const RECOVERY_FINISH: &str = "recovery-finish";
    /// The phi-style detector declared a silent-but-live peer suspect.
    pub const PEER_SUSPECT: &str = "peer-suspect";
    /// Durable quorum unreachable past the deadline; splitfs fell back to
    /// direct-dfs strong mode for new records.
    pub const DFS_FALLBACK_ENGAGE: &str = "dfs-fallback-engage";
    /// A fresh peer set was published; splitfs replayed the fallback journal
    /// and resumed logging through NCL.
    pub const NCL_REATTACH: &str = "ncl-reattach";
    /// A peer published its endpoint in the registry.
    pub const PEER_PUBLISH: &str = "peer-publish";
    /// A peer withdrew from the registry.
    pub const PEER_WITHDRAW: &str = "peer-withdraw";
    /// A peer allocated + registered a log region.
    pub const REGION_ALLOC: &str = "region-alloc";
    /// A peer freed a log region.
    pub const REGION_FREE: &str = "region-free";
}

/// One control-plane transition.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the owning [`crate::Telemetry`] was created.
    pub ts_ns: u64,
    /// Event kind; see [`events`] for the well-known values.
    pub kind: &'static str,
    /// What the event is about — `app/file`, a peer name, etc.
    pub scope: String,
    /// The epoch in force when the event fired (0 when not applicable).
    pub epoch: u64,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl Event {
    /// Renders the event as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts_ns\": {}, \"kind\": \"{}\", \"scope\": \"{}\", \"epoch\": {}, \"detail\": \"{}\"}}",
            self.ts_ns,
            json_escape(self.kind),
            json_escape(&self.scope),
            self.epoch,
            json_escape(&self.detail)
        )
    }
}

/// Default ring capacity; enough for thousands of recoveries.
const DEFAULT_CAPACITY: usize = 4096;

struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    sink: Option<BufWriter<File>>,
}

/// Bounded in-memory event buffer with an optional JSONL mirror.
pub(crate) struct EventTrace {
    origin: Instant,
    ring: Mutex<Ring>,
}

impl EventTrace {
    pub(crate) fn new() -> Self {
        EventTrace {
            origin: Instant::now(),
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: DEFAULT_CAPACITY,
                dropped: 0,
                sink: None,
            }),
        }
    }

    pub(crate) fn record(&self, kind: &'static str, scope: &str, epoch: u64, detail: String) {
        let ev = Event {
            ts_ns: self.origin.elapsed().as_nanos() as u64,
            kind,
            scope: scope.to_string(),
            epoch,
            detail,
        };
        let mut ring = self.ring.lock().expect("trace poisoned");
        if let Some(sink) = ring.sink.as_mut() {
            // Events are rare; flush per line so a crashed process leaves a
            // complete JSONL file behind.
            let _ = writeln!(sink, "{}", ev.to_json());
            let _ = sink.flush();
        }
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
        ring.buf.push_back(ev);
    }

    pub(crate) fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("trace poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace poisoned").dropped
    }

    pub(crate) fn set_capacity(&self, capacity: usize) {
        let mut ring = self.ring.lock().expect("trace poisoned");
        ring.capacity = capacity.max(1);
        while ring.buf.len() > ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }

    pub(crate) fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        self.ring.lock().expect("trace poisoned").sink = Some(BufWriter::new(file));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_insertion_order_and_monotonic_timestamps() {
        let t = EventTrace::new();
        t.record(events::PEER_FAILURE, "peer-0", 1, "dead".into());
        t.record(events::CATCH_UP_START, "app/f", 2, String::new());
        t.record(events::AP_MAP_UPDATE, "app/f", 2, String::new());
        let evs = t.events();
        assert_eq!(
            evs.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                events::PEER_FAILURE,
                events::CATCH_UP_START,
                events::AP_MAP_UPDATE
            ]
        );
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let t = EventTrace::new();
        t.set_capacity(2);
        t.record(events::REGION_ALLOC, "a", 0, String::new());
        t.record(events::REGION_ALLOC, "b", 0, String::new());
        t.record(events::REGION_ALLOC, "c", 0, String::new());
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].scope, "b");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_mirrors_events() {
        let dir = std::env::temp_dir().join(format!("telemetry-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let t = EventTrace::new();
        t.set_jsonl_sink(&path).unwrap();
        t.record(events::EPOCH_BUMP, "app/\"f\"", 3, "quote \\ test".into());
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"epoch\": 3"));
        assert!(text.contains("epoch-bump"));
        // Escaped quotes/backslashes survive the round trip.
        assert!(text.contains("app/\\\"f\\\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
