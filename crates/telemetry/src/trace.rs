//! Structured event trace for control-plane transitions.
//!
//! Data-path latencies are aggregated into histograms (see
//! [`crate::metrics`]); control-plane transitions — peer failure detection,
//! replacement, catch-up, epoch bumps, ap-map updates — are rare and
//! individually meaningful, so they are kept as discrete [`Event`]s in a
//! bounded ring buffer, optionally mirrored to a JSONL sink. A recovery
//! timeline in the style of the paper's Table 3 falls out of one run's trace.
//!
//! Since the causal-tracing layer (PR 5) events may carry a `trace` id tying
//! a control-plane transition to the write (or repair/recovery operation)
//! that caused it; `trace == 0` means "not attributed". The JSONL sink is
//! shared with the span ring ([`crate::span`]): both write
//! `{"type": "event"|"span", ...}` lines into one file, so a single trace
//! file replays the whole causal story.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

use crate::snapshot::json_escape;

/// Well-known event kinds, shared by emitters and tests so the two cannot
/// drift apart. The trace itself accepts any `&'static str`.
pub mod events {
    /// A live peer stopped completing work requests.
    pub const PEER_FAILURE: &str = "peer-failure-detect";
    /// Replacement of dead peers began.
    pub const PEER_REPLACE_START: &str = "peer-replace-start";
    /// Replacement finished; the replica set is whole again.
    pub const PEER_REPLACE_FINISH: &str = "peer-replace-finish";
    /// Copying the acked prefix onto a peer began.
    pub const CATCH_UP_START: &str = "catch-up-start";
    /// Catch-up finished.
    pub const CATCH_UP_FINISH: &str = "catch-up-finish";
    /// The file's epoch advanced (survivors fenced to the new epoch).
    pub const EPOCH_BUMP: &str = "epoch-bump";
    /// The controller's availability map gained or changed an entry.
    pub const AP_MAP_UPDATE: &str = "ap-map-update";
    /// The controller's availability map dropped an entry.
    pub const AP_MAP_DELETE: &str = "ap-map-delete";
    /// Post-crash recovery of a file began.
    pub const RECOVERY_START: &str = "recovery-start";
    /// Recovery finished; the file is writable again.
    pub const RECOVERY_FINISH: &str = "recovery-finish";
    /// The phi-style detector declared a silent-but-live peer suspect.
    pub const PEER_SUSPECT: &str = "peer-suspect";
    /// Durable quorum unreachable past the deadline; splitfs fell back to
    /// direct-dfs strong mode for new records.
    pub const DFS_FALLBACK_ENGAGE: &str = "dfs-fallback-engage";
    /// A fresh peer set was published; splitfs replayed the fallback journal
    /// and resumed logging through NCL.
    pub const NCL_REATTACH: &str = "ncl-reattach";
    /// A peer published its endpoint in the registry.
    pub const PEER_PUBLISH: &str = "peer-publish";
    /// A peer withdrew from the registry.
    pub const PEER_WITHDRAW: &str = "peer-withdraw";
    /// A peer allocated + registered a log region.
    pub const REGION_ALLOC: &str = "region-alloc";
    /// A peer freed a log region.
    pub const REGION_FREE: &str = "region-free";
    /// A file declared its durability scheme at create/recover time; the
    /// detail carries `replicated` or `ec k=<k> n=<n>`, which the trace
    /// analyzer uses to pick the per-scope coverage requirement for the
    /// acked⇒durable invariant.
    pub const DURABILITY_MODE: &str = "durability-mode";
    /// An erasure-coded file started demoting its cold acked prefix to the
    /// spill tier (detail: target generation and covered sequence).
    pub const SPILL_START: &str = "ncl-spill-start";
    /// The spill snapshot became durable and the fragment area flipped to
    /// the next generation.
    pub const SPILL_FINISH: &str = "ncl-spill-finish";
    /// The spill sink rejected a snapshot store; the demotion is retried.
    pub const SPILL_FAIL: &str = "ncl-spill-fail";
    /// A peer voluntarily revoked a region under memory pressure (§4.5.2);
    /// the owning application observes the next write fail and runs the
    /// ordinary replace/catch-up path.
    pub const REGION_REVOKE: &str = "region-revoke";
    /// Memory pressure was applied to a peer (operator or fault injection);
    /// the detail carries the target utilisation.
    pub const PEER_PRESSURE: &str = "peer-pressure";
    /// A region's epoch lease expired with its owning application confirmed
    /// dead at the controller; the leak GC reclaimed it.
    pub const LEASE_EXPIRE: &str = "lease-expire";
    /// An in-memory trace ring (events or spans) overflowed and dropped its
    /// oldest entries; emitted once, on the first drop, so consumers of the
    /// rings know the window is no longer complete (the JSONL sink never
    /// drops). The analyzer and the online monitor downgrade span-
    /// completeness checks to "truncated window" once this fires.
    pub const TRACE_TRUNCATED: &str = "trace-truncated";
    /// A shard reactor stopped heartbeating past the stall watchdog's
    /// threshold (detail carries the shard index and silent duration).
    pub const REACTOR_STALL: &str = "reactor-stall";
    /// The online invariant monitor flagged a violation; the detail carries
    /// the human-readable message (same format as the offline analyzer's).
    pub const INVARIANT_VIOLATION: &str = "invariant-violation";

    /// Every well-known kind, used by the JSONL replay path to intern parsed
    /// kind strings back to the canonical `&'static str` values.
    pub const ALL: [&str; 27] = [
        PEER_FAILURE,
        PEER_REPLACE_START,
        PEER_REPLACE_FINISH,
        CATCH_UP_START,
        CATCH_UP_FINISH,
        EPOCH_BUMP,
        AP_MAP_UPDATE,
        AP_MAP_DELETE,
        RECOVERY_START,
        RECOVERY_FINISH,
        PEER_SUSPECT,
        DFS_FALLBACK_ENGAGE,
        NCL_REATTACH,
        PEER_PUBLISH,
        PEER_WITHDRAW,
        REGION_ALLOC,
        REGION_FREE,
        DURABILITY_MODE,
        SPILL_START,
        SPILL_FINISH,
        SPILL_FAIL,
        REGION_REVOKE,
        PEER_PRESSURE,
        LEASE_EXPIRE,
        TRACE_TRUNCATED,
        REACTOR_STALL,
        INVARIANT_VIOLATION,
    ];
}

/// Maps a parsed kind string to its canonical constant. Unknown kinds are
/// leaked once — the set of kinds is tiny and fixed per build, so the leak is
/// bounded (this is the standard interning trade for `&'static str` keys).
pub fn intern_kind(kind: &str) -> &'static str {
    for k in events::ALL {
        if k == kind {
            return k;
        }
    }
    Box::leak(kind.to_string().into_boxed_str())
}

/// One control-plane transition.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the owning [`crate::Telemetry`] was created.
    pub ts_ns: u64,
    /// Event kind; see [`events`] for the well-known values.
    pub kind: &'static str,
    /// What the event is about — `app/file`, a peer name, etc.
    pub scope: String,
    /// The epoch in force when the event fired (0 when not applicable).
    pub epoch: u64,
    /// Trace id of the operation that caused this transition (0 = none).
    pub trace: u64,
    /// Free-form human-readable detail.
    pub detail: String,
}

impl Event {
    /// Renders the event as one JSON object (one JSONL line, sans newline).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"type\": \"event\", \"ts_ns\": {}, \"kind\": \"{}\", \"scope\": \"{}\", \"epoch\": {}, \"trace\": {}, \"detail\": \"{}\"}}",
            self.ts_ns,
            json_escape(self.kind),
            json_escape(&self.scope),
            self.epoch,
            self.trace,
            json_escape(&self.detail)
        )
    }
}

/// Default ring capacity; enough for thousands of recoveries.
const DEFAULT_CAPACITY: usize = 4096;

/// A JSONL file shared by the event and span rings: every record appends one
/// line and flushes, so a crashed process leaves a complete file behind.
/// Cloning shares the underlying writer.
#[derive(Clone, Default)]
pub(crate) struct JsonlSink(Arc<Mutex<Option<BufWriter<File>>>>);

impl JsonlSink {
    pub(crate) fn set_path(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        *self.0.lock().expect("sink poisoned") = Some(BufWriter::new(file));
        Ok(())
    }

    pub(crate) fn is_set(&self) -> bool {
        self.0.lock().expect("sink poisoned").is_some()
    }

    pub(crate) fn write_line(&self, line: &str) {
        if let Some(w) = self.0.lock().expect("sink poisoned").as_mut() {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
    }
}

struct Ring {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// Bounded in-memory event buffer with an optional JSONL mirror.
pub(crate) struct EventTrace {
    ring: Mutex<Ring>,
    sink: JsonlSink,
}

impl EventTrace {
    pub(crate) fn new(sink: JsonlSink) -> Self {
        EventTrace {
            ring: Mutex::new(Ring {
                buf: VecDeque::new(),
                capacity: DEFAULT_CAPACITY,
                dropped: 0,
            }),
            sink,
        }
    }

    /// Returns whether the ring had to drop its oldest entry to make room
    /// (the JSONL sink, when set, still received every record).
    pub(crate) fn record(
        &self,
        ts_ns: u64,
        kind: &'static str,
        scope: &str,
        epoch: u64,
        trace: u64,
        detail: String,
    ) -> bool {
        let ev = Event {
            ts_ns,
            kind,
            scope: scope.to_string(),
            epoch,
            trace,
            detail,
        };
        if self.sink.is_set() {
            // Events are rare; flush per line so a crashed process leaves a
            // complete JSONL file behind.
            self.sink.write_line(&ev.to_json());
        }
        let mut ring = self.ring.lock().expect("trace poisoned");
        let mut dropped = false;
        if ring.buf.len() >= ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
            dropped = true;
        }
        ring.buf.push_back(ev);
        dropped
    }

    pub(crate) fn events(&self) -> Vec<Event> {
        self.ring
            .lock()
            .expect("trace poisoned")
            .buf
            .iter()
            .cloned()
            .collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace poisoned").dropped
    }

    pub(crate) fn set_capacity(&self, capacity: usize) {
        let mut ring = self.ring.lock().expect("trace poisoned");
        ring.capacity = capacity.max(1);
        while ring.buf.len() > ring.capacity {
            ring.buf.pop_front();
            ring.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_keep_insertion_order_and_monotonic_timestamps() {
        let t = EventTrace::new(JsonlSink::default());
        t.record(1, events::PEER_FAILURE, "peer-0", 1, 0, "dead".into());
        t.record(2, events::CATCH_UP_START, "app/f", 2, 0, String::new());
        t.record(3, events::AP_MAP_UPDATE, "app/f", 2, 0, String::new());
        let evs = t.events();
        assert_eq!(
            evs.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![
                events::PEER_FAILURE,
                events::CATCH_UP_START,
                events::AP_MAP_UPDATE
            ]
        );
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let t = EventTrace::new(JsonlSink::default());
        t.set_capacity(2);
        t.record(0, events::REGION_ALLOC, "a", 0, 0, String::new());
        t.record(0, events::REGION_ALLOC, "b", 0, 0, String::new());
        t.record(0, events::REGION_ALLOC, "c", 0, 0, String::new());
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].scope, "b");
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn jsonl_sink_mirrors_events() {
        let dir = std::env::temp_dir().join(format!("telemetry-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        let sink = JsonlSink::default();
        sink.set_path(&path).unwrap();
        let t = EventTrace::new(sink);
        t.record(
            9,
            events::EPOCH_BUMP,
            "app/\"f\"",
            3,
            17,
            "quote \\ test".into(),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("\"type\": \"event\""));
        assert!(text.contains("\"epoch\": 3"));
        assert!(text.contains("\"trace\": 17"));
        assert!(text.contains("epoch-bump"));
        // Escaped quotes/backslashes survive the round trip.
        assert!(text.contains("app/\\\"f\\\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn intern_kind_returns_canonical_constants() {
        let parsed = String::from("epoch-bump");
        assert_eq!(intern_kind(&parsed), events::EPOCH_BUMP);
        // Unknown kinds intern to a stable leaked string.
        assert_eq!(intern_kind("custom-kind"), "custom-kind");
    }
}
