//! Chrome trace event format (Trace Event Format) for span trees.
//!
//! The output loads directly into `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev): one complete event (`"ph": "X"`) per
//! span, with microsecond `ts`/`dur` as the format requires. Spans are
//! grouped so each trace id renders as its own track: `pid` is the span name
//! category hash-free constant 1 (one process), `tid` is the trace id, which
//! makes every write's causal chain a separate row with its stage, doorbell,
//! wire, and ack children nested by time. Tree structure (`span`/`parent`
//! ids), scope, and epoch travel in `args`.
//!
//! The rendering is line-structural — header line, one event per line, footer
//! line — so [`validate`] can check exported files without a JSON parser.

use crate::snapshot::json_escape;
use crate::Span;

/// Renders spans as a Chrome trace JSON document.
pub fn render(spans: &[Span]) -> String {
    let mut out = String::new();
    out.push_str("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    for (i, s) in spans.iter().enumerate() {
        let sep = if i + 1 == spans.len() { "" } else { "," };
        // ts/dur are microseconds (f64) in the trace event format.
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {{\"scope\": \"{}\", \"epoch\": {}, \"span\": {}, \"parent\": {}}}}}{sep}\n",
            json_escape(s.name),
            json_escape(s.name.split('.').next().unwrap_or("span")),
            s.trace,
            s.start_ns as f64 / 1e3,
            s.duration_ns() as f64 / 1e3,
            json_escape(s.scope),
            s.epoch,
            s.id,
            s.parent,
        ));
    }
    out.push_str("]}\n");
    out
}

/// Structural validation of a rendered Chrome trace: header/footer framing
/// plus per-line checks that every event carries the fields Perfetto needs
/// (`name`, `ph`, `pid`, `tid`, `ts`, `dur`). Returns the event count.
pub fn validate(text: &str) -> Result<usize, String> {
    let mut lines = text.lines();
    let header = lines.next().ok_or("empty document")?;
    if !header.contains("\"traceEvents\"") {
        return Err("missing traceEvents header".into());
    }
    let mut events = 0usize;
    let mut saw_footer = false;
    for (ln, line) in lines.enumerate() {
        let ln = ln + 2;
        if line == "]}" {
            saw_footer = true;
            continue;
        }
        if saw_footer {
            if !line.trim().is_empty() {
                return Err(format!("line {ln}: content after footer"));
            }
            continue;
        }
        for key in [
            "\"name\"",
            "\"ph\": \"X\"",
            "\"pid\"",
            "\"tid\"",
            "\"ts\"",
            "\"dur\"",
        ] {
            if !line.contains(key) {
                return Err(format!("line {ln}: event missing {key}"));
            }
        }
        events += 1;
    }
    if !saw_footer {
        return Err("missing footer".into());
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spans;

    fn span(trace: u64, id: u64, parent: u64, name: &'static str, start: u64, end: u64) -> Span {
        Span {
            trace,
            id,
            parent,
            name,
            scope: "app/f",
            epoch: 2,
            start_ns: start,
            end_ns: end,
        }
    }

    #[test]
    fn render_validates_and_counts() {
        let spans = vec![
            span(5, 5, 0, spans::NCL_WRITE, 0, 10_000),
            span(5, 6, 5, spans::NCL_STAGE, 0, 1_000),
            span(5, 7, 5, spans::NCL_WIRE_PEER, 2_000, 9_000),
        ];
        let text = render(&spans);
        assert_eq!(validate(&text).unwrap(), 3);
        assert!(text.contains("\"tid\": 5"));
        assert!(text.contains("\"ts\": 2.000"));
        assert!(text.contains("\"dur\": 7.000"));
        assert!(text.contains("\"parent\": 5"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let text = render(&[]);
        assert_eq!(validate(&text).unwrap(), 0);
    }

    #[test]
    fn validate_rejects_malformed_events() {
        assert!(validate("{\"traceEvents\": [\n{\"name\": \"x\"}\n]}\n").is_err());
        assert!(validate("nonsense\n").is_err());
    }
}
