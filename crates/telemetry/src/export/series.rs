//! Windowed percentile time series over a registry histogram.
//!
//! A cumulative histogram answers "p99 since process start", which hides
//! regime changes — exactly the thing a chaos schedule creates (healthy →
//! degraded → recovered). [`PercentileSeries`] snapshots one histogram at
//! caller-driven ticks (e.g. once per simulated second) and differences
//! consecutive snapshots ([`Histogram::diff`]), yielding per-window
//! percentiles that can be plotted as p50/p99-over-time. The ring is bounded;
//! old windows fall off the front.

use std::collections::VecDeque;

use crate::{Histogram, Telemetry};

/// One window's worth of samples, summarized.
#[derive(Debug, Clone)]
pub struct WindowPoint {
    /// Telemetry-clock timestamp at the *end* of the window (ns).
    pub t_ns: u64,
    /// Samples recorded during the window.
    pub count: u64,
    /// Median over the window (`None` for an idle window).
    pub p50_ns: Option<u64>,
    /// 99th percentile over the window.
    pub p99_ns: Option<u64>,
    /// Largest bucket value observed in the window.
    pub max_ns: u64,
}

/// Tracks one named histogram across tick-driven windows.
pub struct PercentileSeries {
    name: String,
    capacity: usize,
    last: Histogram,
    points: VecDeque<WindowPoint>,
}

impl PercentileSeries {
    /// Watches histogram `name`, retaining at most `capacity` windows.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        PercentileSeries {
            name: name.into(),
            capacity: capacity.max(1),
            last: Histogram::new(),
            points: VecDeque::new(),
        }
    }

    /// The watched histogram's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Closes the current window: summarizes everything recorded into the
    /// histogram since the previous tick and returns the new point (`None`
    /// when the histogram is not registered yet).
    pub fn tick(&mut self, tel: &Telemetry) -> Option<WindowPoint> {
        let current = tel
            .histograms_full()
            .into_iter()
            .find(|(n, _)| *n == self.name)
            .map(|(_, h)| h)?;
        let window = current.diff(&self.last);
        self.last = current;
        let point = WindowPoint {
            t_ns: tel.now_ns(),
            count: window.count(),
            p50_ns: window.percentile(50.0),
            p99_ns: window.percentile(99.0),
            max_ns: window.max(),
        };
        if self.points.len() >= self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(point.clone());
        Some(point)
    }

    /// All retained windows, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &WindowPoint> {
        self.points.iter()
    }

    /// Renders the series as a JSON array (for BENCH files / plotting).
    pub fn to_json(&self) -> String {
        let body = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"t_ns\": {}, \"count\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                    p.t_ns,
                    p.count,
                    p.p50_ns.map_or("null".into(), |v| v.to_string()),
                    p.p99_ns.map_or("null".into(), |v| v.to_string()),
                    p.max_ns,
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!("[{body}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_isolate_regimes() {
        let tel = Telemetry::new();
        let h = tel.histogram("lat");
        let mut series = PercentileSeries::new("lat", 8);

        // Healthy window: fast samples.
        for _ in 0..100 {
            h.record(10_000);
        }
        let w1 = series.tick(&tel).unwrap();
        assert_eq!(w1.count, 100);
        let p1 = w1.p99_ns.unwrap();
        assert!((9_000..=11_000).contains(&p1), "p99={p1}");

        // Degraded window: slow samples only — the window p99 must jump even
        // though the cumulative histogram is still dominated by fast ones.
        for _ in 0..10 {
            h.record(5_000_000);
        }
        let w2 = series.tick(&tel).unwrap();
        assert_eq!(w2.count, 10);
        assert!(w2.p99_ns.unwrap() > 4_000_000);

        // Idle window has no percentiles.
        let w3 = series.tick(&tel).unwrap();
        assert_eq!(w3.count, 0);
        assert_eq!(w3.p50_ns, None);

        let json = series.to_json();
        assert!(json.contains("\"p50_ns\": null"));
        assert_eq!(series.points().count(), 3);
    }

    /// Ticks race live writers: each window is a diff of cumulative
    /// snapshots, so samples must be conserved — every sample lands in
    /// exactly one window, none double-counted, none lost — no matter how
    /// ticks interleave with recording.
    #[test]
    fn concurrent_writers_conserve_samples_across_windows() {
        const WRITERS: usize = 4;
        const PER_WRITER: u64 = 5_000;
        let tel = Telemetry::new();
        let h = tel.histogram("lat");
        let mut series = PercentileSeries::new("lat", usize::MAX >> 1);

        std::thread::scope(|s| {
            for w in 0..WRITERS {
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..PER_WRITER {
                        h.record(1_000 + (w as u64 * PER_WRITER + i) % 977);
                    }
                });
            }
            // Tick concurrently with the writers from the scope's own
            // thread; windows close at arbitrary interleavings.
            for _ in 0..50 {
                series.tick(&tel);
                std::thread::yield_now();
            }
        });
        // One final tick drains whatever the racing ticks missed.
        series.tick(&tel);

        let total: u64 = series.points().map(|p| p.count).sum();
        assert_eq!(total, WRITERS as u64 * PER_WRITER);
        // Every non-idle window's percentiles stay inside the recorded
        // value range (with ~3% bucket slack on the upper side). Relaxed
        // atomic snapshots can transiently show a count without its bucket
        // (max 0); such windows carry no percentile information to check.
        for p in series.points().filter(|p| p.count > 0 && p.max_ns > 0) {
            let p50 = p.p50_ns.unwrap();
            assert!((1_000..=2_050).contains(&p50), "p50={p50}");
            assert!(p.max_ns >= p50);
        }
    }

    /// Same conservation property for two series watching two histograms
    /// fed from different threads: the series must never cross streams.
    #[test]
    fn concurrent_series_stay_isolated() {
        let tel = Telemetry::new();
        let a = tel.histogram("a");
        let b = tel.histogram("b");
        let mut sa = PercentileSeries::new("a", 64);
        let mut sb = PercentileSeries::new("b", 64);
        std::thread::scope(|s| {
            let a = a.clone();
            s.spawn(move || {
                for _ in 0..2_000 {
                    a.record(100);
                }
            });
            let b = b.clone();
            s.spawn(move || {
                for _ in 0..3_000 {
                    b.record(9_000);
                }
            });
            for _ in 0..20 {
                sa.tick(&tel);
                sb.tick(&tel);
            }
        });
        sa.tick(&tel);
        sb.tick(&tel);
        assert_eq!(sa.points().map(|p| p.count).sum::<u64>(), 2_000);
        assert_eq!(sb.points().map(|p| p.count).sum::<u64>(), 3_000);
        for p in sa.points().filter(|p| p.count > 0) {
            assert!(p.max_ns <= 150, "stream crossed: {}", p.max_ns);
        }
        for p in sb.points().filter(|p| p.count > 0 && p.max_ns > 0) {
            assert!(p.p50_ns.unwrap() >= 8_000);
        }
    }

    #[test]
    fn ring_is_bounded_and_unknown_hist_is_none() {
        let tel = Telemetry::new();
        let mut series = PercentileSeries::new("missing", 2);
        assert!(series.tick(&tel).is_none());
        let h = tel.histogram("missing");
        for i in 0..5 {
            h.record(100 * (i + 1));
            series.tick(&tel).unwrap();
        }
        assert_eq!(series.points().count(), 2);
    }
}
