//! Operator-facing export plane: formats that leave the process.
//!
//! Everything in-process ([`crate::Telemetry`], rings, registry) is wire-
//! format agnostic; this module renders it for external consumers:
//!
//! * [`prometheus`] — text exposition format for a Prometheus scrape;
//! * [`http`] — a tiny std-only blocking HTTP server exposing `/metrics`
//!   (Prometheus), `/snapshot` (full JSON), and `/trace` (Chrome trace);
//! * [`chrome`] — Chrome trace event format (`chrome://tracing`, Perfetto)
//!   for span trees;
//! * [`series`] — a bounded ring of per-window percentile snapshots so
//!   p50/p99-over-time can be plotted across a chaos schedule.

pub mod chrome;
pub mod http;
pub mod prometheus;
pub mod series;
