//! Prometheus text exposition format (version 0.0.4) over the registry.
//!
//! Counters and gauges map directly; histograms are rendered as the standard
//! cumulative `_bucket{le="..."}` / `_sum` / `_count` triple using a fixed
//! decade ladder of nanosecond thresholds (1µs … 1s), computed from the
//! log-linear buckets via [`crate::Histogram::count_at_most`] (±~3% at the
//! boundaries — the underlying buckets are finer than the exported ladder).
//!
//! Metric names are sanitized (`.`/other specials → `_`), prefixed with
//! `splitft_`, and histograms get a `_ns` unit suffix, so `ncl.record.wire`
//! exports as `splitft_ncl_record_wire_ns`.

use crate::{Histogram, Telemetry};

/// Exported cumulative-bucket thresholds, in nanoseconds: 1µs .. 1s decades.
pub const LE_BOUNDS_NS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Sanitizes a registry metric name into a Prometheus metric name:
/// `[a-zA-Z0-9_:]` pass through, everything else becomes `_`, and the
/// `splitft_` namespace prefix is prepended.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("splitft_");
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        // A leading digit is invalid even though digits are fine later.
        if ok && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn render_histogram(out: &mut String, name: &str, h: &Histogram) {
    let base = format!("{}_ns", sanitize_name(name));
    out.push_str(&format!("# TYPE {base} histogram\n"));
    for le in LE_BOUNDS_NS {
        out.push_str(&format!(
            "{base}_bucket{{le=\"{le}\"}} {}\n",
            h.count_at_most(le)
        ));
    }
    out.push_str(&format!("{base}_bucket{{le=\"+Inf\"}} {}\n", h.count()));
    out.push_str(&format!("{base}_sum {}\n", h.sum()));
    out.push_str(&format!("{base}_count {}\n", h.count()));
}

/// Renders the full registry in Prometheus text exposition format.
///
/// One synthetic series rides along: `splitft_trace_dropped_total`, the
/// number of in-memory ring entries (events + spans) evicted before being
/// read. It comes from the rings' own drop accounting rather than a
/// registry counter, so it is authoritative and always present — a scrape
/// can alert on trace loss even when nothing else incremented.
pub fn render(tel: &Telemetry) -> String {
    let snap = tel.snapshot();
    let mut out = String::new();
    let dropped = snap.events_dropped + snap.spans_dropped;
    out.push_str(&format!(
        "# TYPE splitft_trace_dropped_total counter\nsplitft_trace_dropped_total {dropped}\n"
    ));
    for (name, v) in &snap.counters {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
    }
    for (name, v) in &snap.gauges {
        let n = sanitize_name(name);
        out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
    }
    for (name, h) in tel.histograms_full() {
        render_histogram(&mut out, &name, &h);
    }
    out
}

/// Structural validation of Prometheus text format, used by tests and the
/// scrape smoke test: every non-comment line is `name[{labels}] value`, every
/// histogram has monotone non-decreasing buckets ending at `+Inf == _count`.
pub fn validate(text: &str) -> Result<(), String> {
    let mut last_bucket: Option<(String, u64)> = None;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name_part, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {ln}: no value separator"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {ln}: unparseable value {value:?}"))?;
        let metric = name_part.split('{').next().unwrap_or(name_part);
        if !metric
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        {
            return Err(format!("line {ln}: invalid metric name {metric:?}"));
        }
        if let Some(base) = metric.strip_suffix("_bucket") {
            let count = value as u64;
            if let Some((prev_base, prev_count)) = &last_bucket {
                if prev_base == base && count < *prev_count {
                    return Err(format!("line {ln}: bucket counts not cumulative"));
                }
            }
            last_bucket = Some((base.to_string(), count));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize_name("ncl.record.wire"), "splitft_ncl_record_wire");
        assert_eq!(sanitize_name("9lives"), "splitft__lives");
        assert_eq!(sanitize_name("a-b c"), "splitft_a_b_c");
    }

    #[test]
    fn render_matches_golden_file() {
        let tel = Telemetry::new();
        tel.counter("ncl.flush.submit").add(4);
        tel.gauge("ncl.window.depth").set(-1);
        let h = tel.histogram("ncl.record.wire");
        h.record(500); // below 1µs
        h.record(50_000); // 50µs
        h.record(2_000_000); // 2ms
        let text = render(&tel);
        let golden = include_str!("../../tests/golden/prometheus.txt");
        assert_eq!(text, golden, "prometheus exposition drifted from golden");
    }

    #[test]
    fn render_is_structurally_valid() {
        let tel = Telemetry::new();
        tel.counter("a.b").inc();
        tel.gauge("g").set(3);
        let h = tel.histogram("lat");
        for v in [100u64, 10_000, 1_000_000, 2_000_000_000] {
            h.record(v);
        }
        let text = render(&tel);
        validate(&text).unwrap();
        assert!(text.contains("splitft_lat_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("splitft_lat_ns_count 4"));
    }

    #[test]
    fn trace_dropped_total_tracks_ring_evictions() {
        let tel = Telemetry::new();
        assert!(render(&tel).contains("splitft_trace_dropped_total 0"));
        tel.set_event_capacity(1);
        tel.event(crate::events::EPOCH_BUMP, "x", 1, "");
        tel.event(crate::events::EPOCH_BUMP, "x", 2, "");
        // Second event evicts the first, plus the trace-truncated
        // announcement itself churns the 1-slot ring.
        let text = render(&tel);
        let line = text
            .lines()
            .find(|l| l.starts_with("splitft_trace_dropped_total "))
            .unwrap();
        let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(n >= 1, "expected drops, got {text}");
        assert_eq!(n, tel.trace_dropped());
    }

    #[test]
    fn validate_rejects_non_cumulative_buckets() {
        let bad = "x_bucket{le=\"10\"} 5\nx_bucket{le=\"100\"} 3\n";
        assert!(validate(bad).is_err());
        assert!(validate("ok 1\n").is_ok());
        assert!(validate("no-value-here\n").is_err());
    }
}
