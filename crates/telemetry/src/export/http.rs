//! Tiny std-only blocking HTTP scrape endpoint.
//!
//! One accept-loop thread, one request per connection, six routes:
//!
//! * `GET /metrics`  — Prometheus text exposition (for a scrape job);
//! * `GET /snapshot` — the full [`crate::TelemetrySnapshot`] as JSON;
//! * `GET /trace`    — the span ring rendered as a Chrome trace document;
//! * `GET /health`   — the SLO plane's [`crate::HealthReport`] as JSON, 200
//!   while healthy/warning and **503 when breached** (so a plain HTTP
//!   health check needs no JSON parsing), 404 when the server was started
//!   without a plane. The handler calls [`SloPlane::maybe_tick`], so the
//!   report is fresh but hammering the endpoint cannot shrink SLO windows.
//!   When an [`crate::OnlineMonitor`] is attached to the telemetry handle,
//!   an invariant violation also flips `/health` to 503 — durability-
//!   promise breaks outrank latency in a health check;
//! * `GET /invariants` — the online monitor's [`crate::MonitorReport`] as
//!   JSON (200 clean, 503 violating, 404 when no monitor is attached);
//! * `GET /profile`  — the reactor profiler's per-shard time-in-state
//!   report as JSON (404 when no profiler was passed at start).
//!
//! This is deliberately not a real HTTP server: no keep-alive, no TLS, no
//! chunking — a Prometheus scraper and `curl` both speak enough HTTP/1.0 for
//! this to be fine, and the zero-dependency policy of the crate rules out
//! anything heavier. Opt-in via config (e.g. the splitfs testbed's
//! `scrape_addr`); nothing binds a socket unless asked.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::export::{chrome, prometheus};
use crate::{ReactorProfiler, SloPlane, Telemetry};

/// A running scrape endpoint; dropping it stops the accept loop.
pub struct ScrapeServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ScrapeServer {
    /// Binds `addr` (use port 0 for an ephemeral port; see [`Self::addr`])
    /// and serves `tel` until the returned server is dropped. `/health`
    /// answers 404; use [`Self::start_with_health`] to attach an SLO plane.
    pub fn start(tel: Telemetry, addr: &str) -> std::io::Result<ScrapeServer> {
        Self::start_with_health(tel, addr, None)
    }

    /// Like [`Self::start`], but `/health` serves `plane`'s report.
    pub fn start_with_health(
        tel: Telemetry,
        addr: &str,
        plane: Option<SloPlane>,
    ) -> std::io::Result<ScrapeServer> {
        Self::start_with_observability(tel, addr, plane, None)
    }

    /// Full wiring: `/health` serves `plane`, `/profile` serves `profiler`,
    /// and `/invariants` serves whatever [`crate::OnlineMonitor`] is
    /// attached to `tel` at request time (the monitor rides on the
    /// telemetry handle, so it needs no parameter here).
    pub fn start_with_observability(
        tel: Telemetry,
        addr: &str,
        plane: Option<SloPlane>,
        profiler: Option<ReactorProfiler>,
    ) -> std::io::Result<ScrapeServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("telemetry-scrape".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = conn {
                        // Serve inline: scrapes are rare and tiny, and one
                        // thread keeps the footprint honest.
                        let _ = serve_one(stream, &tel, plane.as_ref(), profiler.as_ref());
                    }
                }
            })?;
        Ok(ScrapeServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ScrapeServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    tel: &Telemetry,
    plane: Option<&SloPlane>,
    profiler: Option<&ReactorProfiler>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read until the end of the request head (or the buffer fills); only the
    // request line matters.
    let mut buf = [0u8; 2048];
    let mut used = 0;
    while used < buf.len() {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let head = String::from_utf8_lossy(&buf[..used]);
    let path = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .unwrap_or("/");

    let (status, content_type, body) = match path {
        "/metrics" => (
            "200 OK",
            // The version parameter is what Prometheus expects from a
            // text-format exposition.
            "text/plain; version=0.0.4; charset=utf-8",
            prometheus::render(tel),
        ),
        "/snapshot" => ("200 OK", "application/json", tel.snapshot().render_json()),
        "/trace" => ("200 OK", "application/json", chrome::render(&tel.spans())),
        "/health" => {
            // An invariant violation outranks latency: the monitor watching
            // durability promises flips /health regardless of SLO burn.
            let violating = tel.online_monitor().is_some_and(|m| m.violating());
            match plane {
                Some(plane) => {
                    let report = plane.maybe_tick();
                    let status = if report.breached() || violating {
                        "503 Service Unavailable"
                    } else {
                        "200 OK"
                    };
                    (status, "application/json", report.to_json())
                }
                None => match tel.online_monitor() {
                    // No SLO plane but a monitor: health is the monitor's
                    // verdict (see /invariants for the full report).
                    Some(m) => {
                        let status = if violating {
                            "503 Service Unavailable"
                        } else {
                            "200 OK"
                        };
                        (status, "application/json", m.render_json())
                    }
                    None => (
                        "404 Not Found",
                        "text/plain; charset=utf-8",
                        "no SLO plane attached\n".to_string(),
                    ),
                },
            }
        }
        "/invariants" => match tel.online_monitor() {
            Some(m) => {
                let status = if m.violating() {
                    "503 Service Unavailable"
                } else {
                    "200 OK"
                };
                (status, "application/json", m.render_json())
            }
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no online monitor attached\n".to_string(),
            ),
        },
        "/profile" => match profiler {
            Some(p) => ("200 OK", "application/json", p.render_json()),
            None => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "no reactor profiler attached\n".to_string(),
            ),
        },
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found; try /metrics, /snapshot, /trace, /health, /invariants, /profile\n"
                .to_string(),
        ),
    };
    write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufRead;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        let (head, body) = text.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn scrape_endpoint_serves_metrics_over_a_real_socket() {
        let tel = Telemetry::new();
        tel.counter("ncl.flush.submit").add(7);
        tel.histogram("ncl.record.e2e").record(123_456);
        let server = ScrapeServer::start(tel.clone(), "127.0.0.1:0").unwrap();

        let (status, body) = get(server.addr(), "/metrics");
        assert!(status.contains("200"), "{status}");
        prometheus::validate(&body).unwrap();
        assert!(body.contains("splitft_ncl_flush_submit 7"));
        assert!(body.contains("splitft_ncl_record_e2e_ns_count 1"));

        // Metrics recorded after start show up on the next scrape.
        tel.counter("ncl.flush.submit").add(1);
        let (_, body) = get(server.addr(), "/metrics");
        assert!(body.contains("splitft_ncl_flush_submit 8"));

        let (status, body) = get(server.addr(), "/snapshot");
        assert!(status.contains("200"));
        assert!(body.contains("\"counters\""));

        let (status, body) = get(server.addr(), "/trace");
        assert!(status.contains("200"));
        chrome::validate(&body).unwrap();

        let (status, _) = get(server.addr(), "/nope");
        assert!(status.contains("404"));
        drop(server);
    }

    #[test]
    fn health_endpoint_reflects_slo_status() {
        use crate::SloSpec;
        use std::time::Duration;

        let tel = Telemetry::new();
        // /health without a plane is a 404, and start() behaves as before.
        let bare = ScrapeServer::start(tel.clone(), "127.0.0.1:0").unwrap();
        let (status, _) = get(bare.addr(), "/health");
        assert!(status.contains("404"), "{status}");
        drop(bare);

        let plane = SloPlane::new(tel.clone());
        plane.set_min_tick_gap(Duration::from_nanos(0));
        plane.add(SloSpec::new("lat", "lat", 50, 0.1).windows(1, 1));
        let server =
            ScrapeServer::start_with_health(tel.clone(), "127.0.0.1:0", Some(plane)).unwrap();

        let h = tel.histogram("lat");
        h.record(10);
        let (status, body) = get(server.addr(), "/health");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\": \"healthy\""), "{body}");

        for _ in 0..10 {
            h.record(60);
        }
        let (status, body) = get(server.addr(), "/health");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("\"status\": \"breached\""), "{body}");
        // The tick also exported burn gauges, visible on /metrics.
        let (_, metrics) = get(server.addr(), "/metrics");
        assert!(metrics.contains("splitft_slo_status 2"), "{metrics}");
        drop(server);
    }

    #[test]
    fn invariants_endpoint_reflects_monitor_verdict() {
        use crate::{events, OnlineMonitor};

        let tel = Telemetry::new();
        // Without a monitor both routes 404 (and /profile too).
        let bare = ScrapeServer::start(tel.clone(), "127.0.0.1:0").unwrap();
        let (status, _) = get(bare.addr(), "/invariants");
        assert!(status.contains("404"), "{status}");
        let (status, _) = get(bare.addr(), "/profile");
        assert!(status.contains("404"), "{status}");
        drop(bare);

        let monitor = OnlineMonitor::attach(&tel, 2);
        let server = ScrapeServer::start(tel.clone(), "127.0.0.1:0").unwrap();
        let (status, body) = get(server.addr(), "/invariants");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"status\": \"ok\""), "{body}");
        // /health with no SLO plane serves the monitor verdict.
        let (status, _) = get(server.addr(), "/health");
        assert!(status.contains("200"), "{status}");

        // Seed an ap-map-before-catch-up ordering break.
        tel.event(events::PEER_REPLACE_START, "app/f", 2, "");
        tel.event(events::AP_MAP_UPDATE, "app/f", 2, "");
        assert!(monitor.violating());
        let (status, body) = get(server.addr(), "/invariants");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("catch-up"), "{body}");
        let (status, _) = get(server.addr(), "/health");
        assert!(status.contains("503"), "{status}");
        drop(server);
    }

    #[test]
    fn monitor_violation_flips_health_despite_healthy_slos() {
        use crate::{events, OnlineMonitor, SloSpec};
        use std::time::Duration;

        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        plane.set_min_tick_gap(Duration::from_nanos(0));
        plane.add(SloSpec::new("lat", "lat", 50, 0.1).windows(1, 1));
        tel.histogram("lat").record(10); // comfortably healthy
        let monitor = OnlineMonitor::attach(&tel, 2);
        let server =
            ScrapeServer::start_with_health(tel.clone(), "127.0.0.1:0", Some(plane)).unwrap();
        let (status, _) = get(server.addr(), "/health");
        assert!(status.contains("200"), "{status}");

        tel.event(events::AP_MAP_UPDATE, "app/f", 5, "");
        tel.event(events::AP_MAP_UPDATE, "app/f", 3, "");
        assert!(monitor.violating());
        let (status, body) = get(server.addr(), "/health");
        assert!(status.contains("503"), "{status}");
        // The body is still the SLO report; /invariants has the details.
        assert!(body.contains("\"slos\""), "{body}");
        drop(server);
    }

    #[test]
    fn profile_endpoint_serves_reactor_report() {
        use crate::ReactorProfiler;

        let tel = Telemetry::new();
        let profiler = ReactorProfiler::new(&tel, 2);
        profiler.shard(0).on_apply(Duration::from_micros(7));
        let server =
            ScrapeServer::start_with_observability(tel, "127.0.0.1:0", None, Some(profiler))
                .unwrap();
        let (status, body) = get(server.addr(), "/profile");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"apply_ns\": 7000"), "{body}");
        assert!(body.contains("\"shard\": 1"), "{body}");
        drop(server);
    }

    /// Satellite: every observability route scraped concurrently while the
    /// telemetry handle is under churn — no torn JSON, no deadlock, every
    /// request answered.
    #[test]
    fn concurrent_scrapes_of_all_routes_stay_consistent() {
        use crate::{events, spans, OnlineMonitor, ReactorProfiler, SloPlane};
        use std::sync::atomic::AtomicBool;
        use std::time::Instant;

        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        let monitor = OnlineMonitor::attach(&tel, 2);
        let profiler = ReactorProfiler::new(&tel, 2);
        let server = ScrapeServer::start_with_observability(
            tel.clone(),
            "127.0.0.1:0",
            Some(plane),
            Some(profiler.clone()),
        )
        .unwrap();
        let addr = server.addr();

        // Writer thread: emit clean write traces + control-plane events,
        // exercising monitor, rings, and registry while scrapes run.
        let stop = Arc::new(AtomicBool::new(false));
        let writer = {
            let tel = tel.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let scope = crate::intern_scope("app/f");
                let mut epoch = 1u64;
                while !stop.load(Ordering::Acquire) {
                    let t0 = Instant::now();
                    let trace = tel.next_trace_id();
                    for peer in ["peer-0", "peer-1"] {
                        tel.span_auto(
                            trace,
                            trace,
                            spans::NCL_WIRE_PEER,
                            crate::intern_scope(peer),
                            epoch,
                            t0,
                            Instant::now(),
                        );
                    }
                    tel.span_auto(
                        trace,
                        trace,
                        spans::NCL_STAGE,
                        scope,
                        epoch,
                        t0,
                        Instant::now(),
                    );
                    tel.span_auto(
                        trace,
                        trace,
                        spans::NCL_DOORBELL,
                        scope,
                        epoch,
                        t0,
                        Instant::now(),
                    );
                    tel.span(
                        trace,
                        trace,
                        0,
                        spans::NCL_WRITE,
                        scope,
                        epoch,
                        t0,
                        Instant::now(),
                    );
                    epoch += 1;
                    tel.event(events::EPOCH_BUMP, "app/f", epoch, "");
                    tel.histogram("ncl.record.e2e").record(1_000);
                }
            })
        };

        let scrapers: Vec<_> = [
            "/metrics",
            "/health",
            "/invariants",
            "/profile",
            "/snapshot",
        ]
        .into_iter()
        .map(|path| {
            std::thread::spawn(move || {
                for _ in 0..20 {
                    let (status, body) = get(addr, path);
                    assert!(
                        status.contains("200") || status.contains("503"),
                        "{path}: {status}"
                    );
                    if path == "/metrics" {
                        prometheus::validate(&body).unwrap();
                    } else {
                        // Untorn JSON: one object, braces balance.
                        assert!(
                            body.starts_with('{') && body.trim_end().ends_with('}'),
                            "{path}: torn body {body:?}"
                        );
                    }
                }
            })
        })
        .collect();
        for s in scrapers {
            s.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        writer.join().unwrap();
        assert_eq!(monitor.violation_count(), 0, "{:?}", monitor.report());
        drop(server);
    }

    #[test]
    fn content_length_matches_body() {
        let tel = Telemetry::new();
        tel.counter("c").inc();
        let server = ScrapeServer::start(tel, "127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        write!(stream, "GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        let mut content_length = 0usize;
        loop {
            line.clear();
            reader.read_line(&mut line).unwrap();
            if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
                content_length = v.trim().parse().unwrap();
            }
            if line == "\r\n" {
                break;
            }
        }
        let mut body = String::new();
        reader.read_to_string(&mut body).unwrap();
        assert_eq!(body.len(), content_length);
    }
}
