//! Black-box flight recorder: a bounded capture of recent spans, events,
//! and counter deltas, dumped to JSONL when something goes wrong.
//!
//! The in-memory rings ([`crate::Telemetry`]'s span and event buffers)
//! already retain recent history; what they lack is a *disciplined exit*: a
//! crashing or breaching process should leave behind a file that the
//! existing offline tooling (`trace_analyzer --check`, i.e.
//! [`crate::analyze`]) ingests as-is. [`FlightRecorder`] provides that:
//!
//! * **Bounded per-scope retention** — the dump keeps the most recent
//!   `per_scope` traces for each root scope (the sharded runtime maps scopes
//!   onto shards, so this bounds the dump per shard and a noisy shard cannot
//!   evict the others' history);
//! * **Complete traces only** — ring eviction can behead a trace (children
//!   are recorded before their root, so the oldest spans of a rooted trace
//!   go first). A dump containing a beheaded acked write would *manufacture*
//!   invariant violations, so rooted traces that no longer carry their
//!   required children (stage, doorbell, reconstruction-quorum coverage,
//!   resolvable parents) are dropped from the dump and counted instead;
//! * **Counter deltas** — [`FlightRecorder::tick`] snapshots every counter
//!   and retains a bounded ring of per-tick deltas, encoded in the dump as
//!   `flight-counter-delta` events (unknown kinds pass [`crate::analyze`]
//!   untouched), so the last seconds of rate information survive the crash;
//! * **Trigger plumbing** — [`FlightRecorder::dump`] for explicit triggers
//!   (SLO breach hooks, chaos-assert failures) and
//!   [`FlightRecorder::install_panic_hook`] for panics.
//!
//! Dump files are named `trace-flight-<tag>.jsonl` so a directory of them is
//! checkable with `trace_analyzer --check <dir>`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::{events, spans, Event, Span, Telemetry};

/// Event kind of the dump's header line.
pub const FLIGHT_DUMP_KIND: &str = "flight-dump";
/// Event kind carrying one counter's delta for one tick.
pub const FLIGHT_COUNTER_KIND: &str = "flight-counter-delta";

/// One counter-tick: deltas of every counter that moved since the previous
/// tick.
#[derive(Debug, Clone)]
struct CounterTick {
    t_ns: u64,
    deltas: Vec<(String, u64)>,
}

struct CounterState {
    last: BTreeMap<String, u64>,
    ticks: VecDeque<CounterTick>,
    capacity: usize,
}

struct Inner {
    tel: Telemetry,
    per_scope: usize,
    quorum: usize,
    counters: Mutex<CounterState>,
}

/// The filtered content of one capture, ready to serialize.
#[derive(Debug, Default)]
pub struct FlightDump {
    /// Spans that survived completeness filtering, start-ordered.
    pub spans: Vec<Span>,
    /// Control-plane events, time-ordered.
    pub events: Vec<Event>,
    /// Counter-delta events (kind [`FLIGHT_COUNTER_KIND`]), time-ordered.
    pub counter_events: Vec<Event>,
    /// Rooted traces dropped because eviction left them incomplete.
    pub dropped_traces: usize,
    /// Traces trimmed by the per-scope retention bound.
    pub trimmed_traces: usize,
}

impl FlightDump {
    /// Serializes the dump as a `trace_analyzer`-compatible JSONL document:
    /// a header event, then events + counter deltas, then spans.
    pub fn to_jsonl(&self, tel: &Telemetry, reason: &str) -> String {
        let header = Event {
            ts_ns: tel.now_ns(),
            kind: FLIGHT_DUMP_KIND,
            scope: "flight".into(),
            epoch: 0,
            trace: 0,
            detail: format!(
                "reason={reason} spans={} events={} counter_ticks_events={} dropped_traces={} trimmed_traces={}",
                self.spans.len(),
                self.events.len(),
                self.counter_events.len(),
                self.dropped_traces,
                self.trimmed_traces
            ),
        };
        let mut out = String::new();
        out.push_str(&header.to_json());
        out.push('\n');
        for ev in self.events.iter().chain(self.counter_events.iter()) {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        for sp in &self.spans {
            out.push_str(&sp.to_json());
            out.push('\n');
        }
        out
    }
}

/// Shared handle to one flight recorder; cloning shares state (the panic
/// hook holds a clone).
#[derive(Clone)]
pub struct FlightRecorder {
    inner: Arc<Inner>,
}

impl FlightRecorder {
    /// A recorder over `tel` with default bounds: 32 traces per scope, 64
    /// retained counter ticks, write quorum 2 (the 3-replica default).
    pub fn new(tel: Telemetry) -> Self {
        Self::with_limits(tel, 32, 64, 2)
    }

    /// A recorder with explicit bounds. `quorum` is the coverage required of
    /// an acked write for it to be considered complete (erasure-coded scopes
    /// override it via their `durability-mode` events, same as the
    /// analyzer).
    pub fn with_limits(
        tel: Telemetry,
        per_scope: usize,
        counter_ticks: usize,
        quorum: usize,
    ) -> Self {
        FlightRecorder {
            inner: Arc::new(Inner {
                tel,
                per_scope: per_scope.max(1),
                quorum,
                counters: Mutex::new(CounterState {
                    last: BTreeMap::new(),
                    ticks: VecDeque::new(),
                    capacity: counter_ticks.max(1),
                }),
            }),
        }
    }

    /// The telemetry handle this recorder watches.
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.tel
    }

    /// Snapshots counter deltas since the previous tick into the bounded
    /// ring. Call periodically (the SLO plane's tick cadence is natural).
    pub fn tick(&self) {
        let snap = self.inner.tel.snapshot();
        let mut state = self.inner.counters.lock().expect("flight poisoned");
        let mut deltas = Vec::new();
        for (name, value) in &snap.counters {
            let prev = state.last.get(name).copied().unwrap_or(0);
            if *value > prev {
                deltas.push((name.clone(), value - prev));
            }
            state.last.insert(name.clone(), *value);
        }
        if deltas.is_empty() {
            return;
        }
        if state.ticks.len() >= state.capacity {
            state.ticks.pop_front();
        }
        state.ticks.push_back(CounterTick {
            t_ns: self.inner.tel.now_ns(),
            deltas,
        });
    }

    /// Captures and filters the current rings into a [`FlightDump`].
    pub fn capture(&self) -> FlightDump {
        let events = self.inner.tel.events();
        let all_spans = self.inner.tel.spans();

        // Per-scope coverage requirement, mirroring the analyzer's rule.
        let mut required: BTreeMap<String, usize> = BTreeMap::new();
        for ev in events.iter().filter(|e| e.kind == events::DURABILITY_MODE) {
            if let Some(k) = ev
                .detail
                .split_whitespace()
                .find_map(|t| t.strip_prefix("k="))
                .and_then(|v| v.parse::<usize>().ok())
            {
                required.insert(ev.scope.clone(), k);
            }
        }

        let mut by_trace: BTreeMap<u64, Vec<Span>> = BTreeMap::new();
        for s in all_spans {
            by_trace.entry(s.trace).or_default().push(s);
        }

        let mut dropped_traces = 0usize;
        // Complete traces grouped by their root (or first) scope, each with
        // its recency key (latest end_ns, trace id as tiebreak — ids are
        // allocation-ordered, so ties on a coarse clock still rank newest
        // last-allocated).
        type RankedTrace = ((u64, u64), Vec<Span>);
        let mut per_scope: BTreeMap<&str, Vec<RankedTrace>> = BTreeMap::new();
        for (trace, group) in &by_trace {
            let root = group.iter().find(|s| s.id == *trace && s.parent == 0);
            if let Some(root) = root {
                let ids: BTreeSet<u64> = group.iter().map(|s| s.id).collect();
                let parents_resolve = group
                    .iter()
                    .all(|s| s.parent == 0 || ids.contains(&s.parent));
                let complete = parents_resolve
                    && if root.name == spans::NCL_WRITE {
                        let has = |n: &str| group.iter().any(|s| s.name == n);
                        let coverage: BTreeSet<&str> = group
                            .iter()
                            .filter(|s| {
                                s.name == spans::NCL_WIRE_PEER || s.name == spans::NCL_CATCHUP_PEER
                            })
                            .map(|s| s.scope)
                            .collect();
                        let need = required
                            .get(root.scope)
                            .copied()
                            .unwrap_or(self.inner.quorum);
                        has(spans::NCL_STAGE) && has(spans::NCL_DOORBELL) && coverage.len() >= need
                    } else {
                        true
                    };
                if !complete {
                    dropped_traces += 1;
                    continue;
                }
            }
            let scope = root.map_or_else(|| group[0].scope, |r| r.scope);
            let recency = group.iter().map(|s| s.end_ns).max().unwrap_or(0);
            per_scope
                .entry(scope)
                .or_default()
                .push(((recency, *trace), group.clone()));
        }

        // Per-scope retention: newest `per_scope` traces each.
        let mut trimmed_traces = 0usize;
        let mut spans = Vec::new();
        for (_, mut traces) in per_scope {
            traces.sort_by_key(|(recency, _)| std::cmp::Reverse(*recency));
            if traces.len() > self.inner.per_scope {
                trimmed_traces += traces.len() - self.inner.per_scope;
                traces.truncate(self.inner.per_scope);
            }
            for (_, group) in traces {
                spans.extend(group);
            }
        }
        spans.sort_by_key(|s| (s.start_ns, s.id));

        let counter_events = {
            let state = self.inner.counters.lock().expect("flight poisoned");
            state
                .ticks
                .iter()
                .flat_map(|tick| {
                    tick.deltas.iter().map(|(name, delta)| Event {
                        ts_ns: tick.t_ns,
                        kind: FLIGHT_COUNTER_KIND,
                        scope: name.clone(),
                        epoch: 0,
                        trace: 0,
                        detail: format!("delta={delta}"),
                    })
                })
                .collect()
        };

        FlightDump {
            spans,
            events,
            counter_events,
            dropped_traces,
            trimmed_traces,
        }
    }

    /// Captures and writes one dump to `path`, creating parent directories.
    pub fn dump(&self, path: &Path, reason: &str) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let dump = self.capture();
        let mut file = std::fs::File::create(path)?;
        file.write_all(dump.to_jsonl(&self.inner.tel, reason).as_bytes())?;
        file.flush()
    }

    /// Captures and writes `dir/trace-flight-<tag>.jsonl` (the `trace-*`
    /// prefix makes the directory `trace_analyzer --check`-able), returning
    /// the path written.
    pub fn dump_into(&self, dir: &Path, tag: &str, reason: &str) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("trace-flight-{tag}.jsonl"));
        self.dump(&path, reason)?;
        Ok(path)
    }

    /// Chains a panic hook that writes
    /// `dir/trace-flight-panic-<pid>.jsonl` before the previous hook runs.
    /// The hook is global to the process; install it once, from the
    /// top-level harness that owns the recorder.
    pub fn install_panic_hook(&self, dir: impl Into<PathBuf>) {
        let dir = dir.into();
        let recorder = self.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let tag = format!("panic-{}", std::process::id());
            let _ = recorder.dump_into(&dir, &tag, "panic");
            prev(info);
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::{analyze, parse_jsonl};
    use std::time::Instant;

    /// Emits one complete acked write (root + stage + doorbell + 2 wire
    /// peers) on `tel` under `scope`, returning its trace id.
    fn acked_write(tel: &Telemetry, scope: &'static str) -> u64 {
        let t0 = Instant::now();
        let trace = tel.next_trace_id();
        for name in [spans::NCL_STAGE, spans::NCL_DOORBELL] {
            tel.span_auto(trace, trace, name, scope, 1, t0, Instant::now());
        }
        for peer in ["peer-0", "peer-1"] {
            tel.span_auto(
                trace,
                trace,
                spans::NCL_WIRE_PEER,
                crate::intern_scope(peer),
                1,
                t0,
                Instant::now(),
            );
        }
        tel.span(
            trace,
            trace,
            0,
            spans::NCL_WRITE,
            scope,
            1,
            t0,
            Instant::now(),
        );
        trace
    }

    #[test]
    fn dump_round_trips_through_the_analyzer() {
        let tel = Telemetry::new();
        let rec = FlightRecorder::new(tel.clone());
        tel.event(events::DURABILITY_MODE, "app/f", 1, "replicated");
        for _ in 0..5 {
            acked_write(&tel, "app/f");
        }
        tel.counter("ncl.flush.submit").add(17);
        rec.tick();

        let dir = std::env::temp_dir().join(format!("flight-rt-{}", std::process::id()));
        let path = rec.dump_into(&dir, "test", "unit-test").unwrap();
        assert!(path.ends_with("trace-flight-test.jsonl"));
        let text = std::fs::read_to_string(&path).unwrap();
        let (spans, events) = parse_jsonl(&text).unwrap();
        assert_eq!(spans.len(), 25, "5 writes x 5 spans");
        // Header + durability-mode + one counter delta.
        assert!(events.iter().any(|e| e.kind == FLIGHT_DUMP_KIND));
        assert!(events.iter().any(|e| e.kind == FLIGHT_COUNTER_KIND
            && e.scope == "ncl.flush.submit"
            && e.detail == "delta=17"));
        let report = analyze(&spans, &events, 2);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.acked_writes, 5);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A rooted trace whose children were evicted from the ring must not
    /// reach the dump — it would read as an invariant violation that never
    /// happened.
    #[test]
    fn beheaded_traces_are_dropped_not_dumped() {
        let tel = Telemetry::new();
        let rec = FlightRecorder::new(tel.clone());
        acked_write(&tel, "app/keep");
        // Shrink the ring so the next write's early children are evicted:
        // capacity 3 keeps [wire-1, wire-0... actually the last 3 spans].
        tel.set_span_capacity(3);
        acked_write(&tel, "app/beheaded");
        let dump = rec.capture();
        assert_eq!(dump.dropped_traces, 1);
        assert!(dump.spans.iter().all(|s| s.scope != "app/beheaded"));
        let report = analyze(&dump.spans, &dump.events, 2);
        assert!(report.ok(), "{:?}", report.violations);
    }

    #[test]
    fn per_scope_retention_keeps_newest_and_bounds_each_scope() {
        let tel = Telemetry::new();
        let rec = FlightRecorder::with_limits(tel.clone(), 2, 4, 2);
        let mut traces_a = Vec::new();
        for _ in 0..4 {
            traces_a.push(acked_write(&tel, "app/a"));
        }
        let trace_b = acked_write(&tel, "app/b");
        let dump = rec.capture();
        assert_eq!(dump.trimmed_traces, 2);
        let kept: BTreeSet<u64> = dump.spans.iter().map(|s| s.trace).collect();
        // Newest two of app/a survive, the busy scope cannot evict app/b.
        assert!(kept.contains(&traces_a[2]) && kept.contains(&traces_a[3]));
        assert!(!kept.contains(&traces_a[0]));
        assert!(kept.contains(&trace_b));
    }

    #[test]
    fn counter_ring_is_bounded_and_reports_deltas() {
        let tel = Telemetry::new();
        let rec = FlightRecorder::with_limits(tel.clone(), 8, 2, 2);
        let c = tel.counter("work");
        for i in 1..=4u64 {
            c.add(i);
            rec.tick();
        }
        let dump = rec.capture();
        // Capacity 2: only the last two ticks' deltas survive.
        let deltas: Vec<&str> = dump
            .counter_events
            .iter()
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(deltas, vec!["delta=3", "delta=4"]);
        // An idle tick adds nothing.
        rec.tick();
        assert_eq!(rec.capture().counter_events.len(), 2);
    }

    #[test]
    fn panic_hook_writes_a_dump() {
        let tel = Telemetry::new();
        let rec = FlightRecorder::new(tel.clone());
        acked_write(&tel, "app/p");
        let dir = std::env::temp_dir().join(format!("flight-panic-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        rec.install_panic_hook(dir.clone());
        let _ = std::panic::catch_unwind(|| panic!("boom"));
        let path = dir.join(format!("trace-flight-panic-{}.jsonl", std::process::id()));
        let text = std::fs::read_to_string(&path).unwrap();
        let (spans, events) = parse_jsonl(&text).unwrap();
        assert!(!spans.is_empty());
        assert!(events
            .iter()
            .any(|e| e.kind == FLIGHT_DUMP_KIND && e.detail.contains("reason=panic")));
        std::fs::remove_dir_all(&dir).ok();
    }
}
