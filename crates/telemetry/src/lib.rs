//! Observability substrate for the SplitFT reproduction.
//!
//! Zero dependencies (std only), so every layer — the simulated RDMA verbs,
//! the NCL core, splitfs, the apps, the benches — can depend on it without
//! cycles. Four pieces:
//!
//! * a lock-free **metrics registry** ([`Counter`], [`Gauge`], [`HistHandle`])
//!   whose handles are interned by name at component construction and cost a
//!   few relaxed atomic ops per record on the hot path;
//! * **per-stage latency histograms** ([`Histogram`], promoted from
//!   `sim::stats`): record lifecycles are timestamped at stage → doorbell →
//!   wire → ack boundaries and aggregated, never logged per event;
//! * a **structured event trace** ([`Event`], ring buffer + optional JSONL
//!   sink) for control-plane transitions, from which Table 3-style recovery
//!   timelines can be reconstructed;
//! * **causal spans** ([`Span`], same ring + sink machinery): every NCL write
//!   gets a `trace` id at `record_nowait` whose span tree reconstructs the
//!   full durability chain (stage → doorbell → per-peer wire → quorum ack),
//!   consumed by the exporters in [`export`] and the invariant checker in
//!   [`analyze`].
//!
//! A [`Telemetry`] value is a cheap cloneable handle; all clones share one
//! registry and one trace. [`Telemetry::disabled`] yields a handle whose
//! metric handles are no-ops and whose event recording returns immediately —
//! the CI overhead gate holds the enabled path to ≤10% of throughput against
//! this baseline, and a second gate holds span emission (which can be turned
//! off separately via [`Telemetry::set_tracing`]) to the same budget.
//!
//! ```
//! let tel = telemetry::Telemetry::new();
//! let flushes = tel.counter("ncl.flush.submit");   // cache at construction
//! let wire = tel.histogram("ncl.record.wire");
//! flushes.inc();                                    // hot path: one atomic
//! wire.record(1_500);
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("ncl.flush.submit"), 1);
//! println!("{}", snap.render_text());
//! ```

pub mod analyze;
pub mod export;
pub mod flight;
mod hist;
mod metrics;
pub mod monitor;
pub mod profile;
mod slo;
mod snapshot;
mod span;
mod trace;

pub use flight::FlightRecorder;
pub use hist::{Histogram, Summary, OVERFLOW_LIMIT};
pub use metrics::{Counter, Gauge, HistHandle};
pub use monitor::{MonitorReport, OnlineMonitor, Violation};
pub use profile::{ProfileReport, ReactorProfiler, ShardProfile};
pub use slo::{
    HealthReport, SaturationSnapshot, ShardSaturation, SloPlane, SloSpec, SloState, SloStatus,
    SloTracker,
};
pub use snapshot::{json_escape, TelemetrySnapshot};
pub use span::{intern_scope, intern_span_name, spans, Span};
pub use trace::{events, intern_kind, Event};

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::Instant;

struct Inner {
    registry: metrics::Registry,
    trace: trace::EventTrace,
    spans: span::SpanTrace,
    sink: trace::JsonlSink,
    /// Zero point of every `ts_ns` in this handle's events and spans.
    origin: Instant,
    /// Shared generator for trace ids AND span ids; starts at 1 so id 0 can
    /// mean "none" everywhere.
    ids: AtomicU64,
    /// Span emission switch; metrics and events stay on when this is off.
    tracing: AtomicBool,
    /// Fast-path gate for the online monitor: one relaxed load per record
    /// when nothing is attached.
    monitored: AtomicBool,
    /// The attached [`monitor::OnlineMonitor`]'s core. Installed once for
    /// this handle's lifetime so the hot path reads it with a single
    /// `OnceLock` load — no lock, no refcount churn per span. Dropping the
    /// last `OnlineMonitor` handle *deactivates* the core (clears the
    /// `monitored` gate, stops the drainer, frees the checker state); a
    /// later attach revives it in place. The core holds this `Inner` only
    /// weakly, so the strong slot here is not a cycle.
    monitor: OnceLock<Arc<monitor::MonitorCore>>,
    /// Latched on the first in-memory ring drop (the `trace-truncated`
    /// event is announced exactly once).
    truncated: AtomicBool,
}

impl Inner {
    /// The live monitor, if one is attached: one relaxed load when nothing
    /// is attached, one `OnceLock` load when something is. The `monitored`
    /// gate is cleared by the core's own deactivation (last handle dropped),
    /// never here.
    fn monitor_sink(&self) -> Option<&Arc<monitor::MonitorCore>> {
        if !self.monitored.load(Ordering::Relaxed) {
            return None;
        }
        self.monitor.get()
    }

    /// Bookkeeping for an in-memory ring drop: on the first one, announce a
    /// `trace-truncated` event (ring + sink) and tell the monitor its
    /// span-completeness checks are no longer sound. The JSONL sink never
    /// drops, so offline analysis of a sink file is unaffected.
    fn note_ring_drop(&self, now_ns: u64) {
        if !self.truncated.swap(true, Ordering::Relaxed) {
            self.trace.record(
                now_ns,
                events::TRACE_TRUNCATED,
                "telemetry",
                0,
                0,
                "trace ring overflow; oldest entries dropped".to_string(),
            );
            if let Some(m) = self.monitor_sink() {
                m.note_truncated();
            }
        }
    }
}

/// Shared handle to one metrics registry + event/span trace.
///
/// Cloning is an `Arc` bump; a disabled handle carries no storage at all.
/// Embedded in `NclConfig`, so every component wired from one config reports
/// into the same registry.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    /// Enabled. Overhead with nobody reading is a few atomics per record, so
    /// instrumentation is on unless explicitly opted out.
    fn default() -> Self {
        Self::new()
    }
}

/// Non-owning [`Telemetry`] handle (see [`Telemetry::downgrade`]). Upgrading
/// fails once every strong handle is gone; a handle made from a disabled
/// `Telemetry` never upgrades.
#[derive(Clone, Default)]
pub(crate) struct WeakTelemetry(Weak<Inner>);

impl WeakTelemetry {
    pub(crate) fn upgrade(&self) -> Option<Telemetry> {
        self.0
            .upgrade()
            .map(|inner| Telemetry { inner: Some(inner) })
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A fresh, enabled handle with its own registry and trace.
    pub fn new() -> Self {
        let sink = trace::JsonlSink::default();
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: metrics::Registry::default(),
                trace: trace::EventTrace::new(sink.clone()),
                spans: span::SpanTrace::new(sink.clone()),
                sink,
                origin: Instant::now(),
                ids: AtomicU64::new(1),
                tracing: AtomicBool::new(true),
                monitored: AtomicBool::new(false),
                monitor: OnceLock::new(),
                truncated: AtomicBool::new(false),
            })),
        }
    }

    /// A handle that records nothing: metric handles are no-ops, events are
    /// discarded. Used as the baseline of the overhead gate.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// True when this handle retains what is recorded through it.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Interns (or reuses) the counter `name`. Cold path — cache the handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::noop, |i| i.registry.counter(name))
    }

    /// Interns (or reuses) the gauge `name`. Cold path — cache the handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::noop, |i| i.registry.gauge(name))
    }

    /// Interns (or reuses) the histogram `name`. Cold path — cache the handle.
    pub fn histogram(&self, name: &str) -> HistHandle {
        self.inner
            .as_ref()
            .map_or_else(HistHandle::noop, |i| i.registry.histogram(name))
    }

    /// Convenience point read of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter(name).get()
    }

    /// Convenience point read of a gauge (0 when absent or disabled).
    pub fn gauge_value(&self, name: &str) -> i64 {
        self.gauge(name).get()
    }

    /// Full (bucket-level) contents of every registered histogram, for
    /// exporters that need more than a [`Summary`].
    pub fn histograms_full(&self) -> Vec<(String, Histogram)> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.registry.histogram_values())
    }

    /// Nanoseconds since this handle was created — the clock every event and
    /// span timestamp is expressed in. Returns 0 when disabled.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.origin.elapsed().as_nanos() as u64)
    }

    /// Converts an [`Instant`] to this handle's `ts_ns` clock (saturating to
    /// 0 for instants before the handle was created).
    #[inline]
    pub fn instant_ns(&self, t: Instant) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            t.saturating_duration_since(i.origin).as_nanos() as u64
        })
    }

    /// Allocates a fresh trace id (also usable as a span id — one generator
    /// backs both, so ids are process-unique). Returns 0 when disabled or
    /// when tracing is off; callers treat 0 as "don't emit spans".
    #[inline]
    pub fn next_trace_id(&self) -> u64 {
        match &self.inner {
            Some(i) if i.tracing.load(Ordering::Relaxed) => i.ids.fetch_add(1, Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Allocates a fresh span id. Identical to [`Self::next_trace_id`];
    /// the alias exists so call sites read correctly.
    #[inline]
    pub fn next_span_id(&self) -> u64 {
        self.next_trace_id()
    }

    /// Turns span emission on or off. Metrics and events are unaffected.
    /// Defaults to on; the bench overhead gate measures both settings.
    pub fn set_tracing(&self, on: bool) {
        if let Some(inner) = &self.inner {
            inner.tracing.store(on, Ordering::Relaxed);
        }
    }

    /// True when span emission is active.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.inner
            .as_ref()
            .is_some_and(|i| i.tracing.load(Ordering::Relaxed))
    }

    /// Records a closed span. No-op when disabled, when tracing is off, or
    /// when `trace == 0` (the id a disabled handle hands out), so call sites
    /// can emit unconditionally. `scope` is `&'static str` on purpose: hot
    /// call sites intern it once ([`intern_scope`]) and recording stays
    /// allocation-free.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &self,
        trace: u64,
        id: u64,
        parent: u64,
        name: &'static str,
        scope: &'static str,
        epoch: u64,
        start: Instant,
        end: Instant,
    ) {
        let Some(inner) = &self.inner else { return };
        if trace == 0 || !inner.tracing.load(Ordering::Relaxed) {
            return;
        }
        let start_ns = self.instant_ns(start);
        let end_ns = self.instant_ns(end).max(start_ns);
        let span = Span {
            trace,
            id,
            parent,
            name,
            scope,
            epoch,
            start_ns,
            end_ns,
        };
        // Ring first, monitor second: a violation hook that dumps the
        // flight recorder from inside the monitor callback must find the
        // span that tripped it already in the ring.
        let sink = inner.monitor_sink();
        let forwarded = sink.map(|_| span.clone());
        if inner.spans.record(span) {
            inner.note_ring_drop(end_ns);
        }
        if let (Some(m), Some(span)) = (sink, forwarded) {
            m.on_span(&span);
        }
    }

    /// Records a closed span with a freshly allocated id and returns it
    /// (0 when nothing was recorded). Convenience for leaf children.
    #[allow(clippy::too_many_arguments)]
    pub fn span_auto(
        &self,
        trace: u64,
        parent: u64,
        name: &'static str,
        scope: &'static str,
        epoch: u64,
        start: Instant,
        end: Instant,
    ) -> u64 {
        if trace == 0 || !self.tracing_enabled() {
            return 0;
        }
        let id = self.next_span_id();
        self.span(trace, id, parent, name, scope, epoch, start, end);
        id
    }

    /// The span ring's contents, oldest first (empty when disabled).
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.spans())
    }

    /// Caps the span ring at `capacity` entries (oldest evicted first).
    pub fn set_span_capacity(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            inner.spans.set_capacity(capacity);
        }
    }

    /// Appends a control-plane event to the trace (and the JSONL sink, when
    /// one is installed). No-op when disabled.
    pub fn event(&self, kind: &'static str, scope: &str, epoch: u64, detail: impl Into<String>) {
        self.event_traced(kind, scope, epoch, 0, detail);
    }

    /// Like [`Self::event`], but attributes the event to the operation
    /// `trace` (a repair, recovery, or write trace id; 0 = unattributed).
    pub fn event_traced(
        &self,
        kind: &'static str,
        scope: &str,
        epoch: u64,
        trace: u64,
        detail: impl Into<String>,
    ) {
        if let Some(inner) = &self.inner {
            let ts_ns = self.now_ns();
            let detail = detail.into();
            // Ring first, monitor second: see `span` — hook-time flight
            // dumps must contain the event that tripped the monitor.
            let forwarded = inner.monitor_sink();
            if inner
                .trace
                .record(ts_ns, kind, scope, epoch, trace, detail.clone())
            {
                inner.note_ring_drop(ts_ns);
            }
            if let Some(m) = forwarded {
                m.on_event(&Event {
                    ts_ns,
                    kind,
                    scope: scope.to_string(),
                    epoch,
                    trace,
                    detail,
                });
            }
        }
    }

    /// The trace contents, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.trace.events())
    }

    /// Caps the event ring at `capacity` entries (oldest evicted first).
    pub fn set_event_capacity(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            inner.trace.set_capacity(capacity);
        }
    }

    /// Mirrors every subsequent event AND span to `path`, one JSON object per
    /// line, discriminated by a `"type"` field (`"event"` / `"span"`).
    pub fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.sink.set_path(path),
            None => Ok(()),
        }
    }

    /// Installs `core` as this handle's online monitor. The slot is filled
    /// once per `Telemetry` lifetime (the recording fast path reads it
    /// lock-free); a second attach returns the resident core — sharing it if
    /// it is still live, reviving it with `core`'s configuration if every
    /// prior handle was dropped. `None` means `core` itself is now attached.
    /// Called by [`monitor::OnlineMonitor::attach`].
    pub(crate) fn install_monitor(
        &self,
        core: &Arc<monitor::MonitorCore>,
    ) -> Option<Arc<monitor::MonitorCore>> {
        let inner = self.inner.as_ref()?;
        let mut candidate = Some(Arc::clone(core));
        let resident = inner
            .monitor
            .get_or_init(|| candidate.take().expect("init runs at most once"));
        if candidate.is_none() {
            inner.monitored.store(true, Ordering::Release);
            return None;
        }
        if !resident.is_active() {
            resident.reactivate(core);
            monitor::MonitorCore::respawn_drainer(resident);
        }
        inner.monitored.store(true, Ordering::Release);
        Some(Arc::clone(resident))
    }

    /// Reverts the recording fast path to a single relaxed load. Called by
    /// the monitor core when its last public handle is dropped.
    pub(crate) fn clear_monitor_gate(&self) {
        if let Some(inner) = &self.inner {
            inner.monitored.store(false, Ordering::Relaxed);
        }
    }

    /// A weak form of this handle that does not keep the registry alive.
    /// Used by the monitor core to reach back into its `Telemetry` (for
    /// violation events and gate clearing) without forming a cycle with the
    /// strong monitor slot.
    pub(crate) fn downgrade(&self) -> WeakTelemetry {
        WeakTelemetry(self.inner.as_ref().map(Arc::downgrade).unwrap_or_default())
    }

    /// The attached online monitor, if any.
    pub fn online_monitor(&self) -> Option<OnlineMonitor> {
        self.inner
            .as_ref()
            .and_then(|i| i.monitor_sink().cloned())
            .map(OnlineMonitor::from_core)
    }

    /// Total in-memory ring entries dropped (events + spans). The JSONL
    /// sink never drops; this counts only the bounded rings, and is what
    /// `/metrics` exports as `splitft_trace_dropped_total`.
    pub fn trace_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.trace.dropped() + i.spans.dropped())
    }

    /// Freezes everything into a [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            None => TelemetrySnapshot::default(),
            Some(inner) => TelemetrySnapshot {
                counters: inner.registry.counter_values(),
                gauges: inner.registry.gauge_values(),
                histograms: inner.registry.histogram_summaries(),
                events: inner.trace.events(),
                events_dropped: inner.trace.dropped(),
                spans: inner.spans.spans(),
                spans_dropped: inner.spans.dropped(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Telemetry::new();
        let b = a.clone();
        a.counter("c").inc();
        b.counter("c").inc();
        assert_eq!(a.counter_value("c"), 2);
        b.event(events::EPOCH_BUMP, "x", 1, "");
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c").inc();
        t.histogram("h").record(1);
        t.event(events::PEER_FAILURE, "p", 0, "");
        assert_eq!(t.next_trace_id(), 0);
        let now = Instant::now();
        t.span(1, 1, 0, spans::NCL_WRITE, "x", 0, now, now);
        let snap = t.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn separate_handles_are_isolated() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.counter("c").inc();
        assert_eq!(b.counter_value("c"), 0);
    }

    #[test]
    fn snapshot_round_trips_through_renders() {
        let t = Telemetry::new();
        t.gauge("g").set(5);
        t.histogram("h").record(1_000);
        t.event(events::AP_MAP_UPDATE, "app/f", 2, "peers=[a,b,c]");
        let snap = t.snapshot();
        assert!(snap.render_text().contains("ap-map-update"));
        let json = snap.render_json();
        assert!(json.contains("\"g\": 5"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("peers=[a,b,c]"));
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let t = Telemetry::new();
        let a = t.next_trace_id();
        let b = t.next_trace_id();
        assert!(a > 0 && b > 0 && a != b);
    }

    #[test]
    fn spans_record_and_respect_tracing_switch() {
        let t = Telemetry::new();
        let start = Instant::now();
        let trace = t.next_trace_id();
        let child = t.span_auto(
            trace,
            trace,
            spans::NCL_STAGE,
            "app/f",
            0,
            start,
            Instant::now(),
        );
        assert!(child > 0 && child != trace);
        t.span(
            trace,
            trace,
            0,
            spans::NCL_WRITE,
            "app/f",
            1,
            start,
            Instant::now(),
        );
        let spans = t.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].id, trace);
        assert_eq!(spans[1].parent, 0);
        assert!(spans[0].end_ns >= spans[0].start_ns);

        t.set_tracing(false);
        assert_eq!(t.next_trace_id(), 0);
        t.span(
            trace,
            trace,
            0,
            spans::NCL_ACK,
            "app/f",
            1,
            start,
            Instant::now(),
        );
        assert_eq!(t.spans().len(), 2, "no spans while tracing is off");
        t.set_tracing(true);
        assert!(t.next_trace_id() > 0);
    }

    #[test]
    fn jsonl_sink_interleaves_events_and_spans() {
        let dir = std::env::temp_dir().join(format!("telemetry-lib-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.jsonl");
        let t = Telemetry::new();
        t.set_jsonl_sink(&path).unwrap();
        let trace = t.next_trace_id();
        let start = Instant::now();
        t.span_auto(
            trace,
            trace,
            spans::NCL_STAGE,
            "app/f",
            0,
            start,
            Instant::now(),
        );
        t.event_traced(events::EPOCH_BUMP, "app/f", 2, trace, "");
        t.span(
            trace,
            trace,
            0,
            spans::NCL_WRITE,
            "app/f",
            2,
            start,
            Instant::now(),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"type\": \"span\""));
        assert!(lines[1].contains("\"type\": \"event\""));
        assert!(lines[1].contains(&format!("\"trace\": {trace}")));
        assert!(lines[2].contains("\"name\": \"ncl.write\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
