//! Observability substrate for the SplitFT reproduction.
//!
//! Zero dependencies (std only), so every layer — the simulated RDMA verbs,
//! the NCL core, splitfs, the apps, the benches — can depend on it without
//! cycles. Three pieces:
//!
//! * a lock-free **metrics registry** ([`Counter`], [`Gauge`], [`HistHandle`])
//!   whose handles are interned by name at component construction and cost a
//!   few relaxed atomic ops per record on the hot path;
//! * **per-stage latency histograms** ([`Histogram`], promoted from
//!   `sim::stats`): record lifecycles are timestamped at stage → doorbell →
//!   wire → ack boundaries and aggregated, never logged per event;
//! * a **structured event trace** ([`Event`], ring buffer + optional JSONL
//!   sink) for control-plane transitions, from which Table 3-style recovery
//!   timelines can be reconstructed.
//!
//! A [`Telemetry`] value is a cheap cloneable handle; all clones share one
//! registry and one trace. [`Telemetry::disabled`] yields a handle whose
//! metric handles are no-ops and whose event recording returns immediately —
//! the CI overhead gate holds the enabled path to ≤10% of throughput against
//! this baseline.
//!
//! ```
//! let tel = telemetry::Telemetry::new();
//! let flushes = tel.counter("ncl.flush.submit");   // cache at construction
//! let wire = tel.histogram("ncl.record.wire");
//! flushes.inc();                                    // hot path: one atomic
//! wire.record(1_500);
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("ncl.flush.submit"), 1);
//! println!("{}", snap.render_text());
//! ```

mod hist;
mod metrics;
mod snapshot;
mod trace;

pub use hist::{Histogram, Summary};
pub use metrics::{Counter, Gauge, HistHandle};
pub use snapshot::TelemetrySnapshot;
pub use trace::{events, Event};

use std::path::Path;
use std::sync::Arc;

struct Inner {
    registry: metrics::Registry,
    trace: trace::EventTrace,
}

/// Shared handle to one metrics registry + event trace.
///
/// Cloning is an `Arc` bump; a disabled handle carries no storage at all.
/// Embedded in `NclConfig`, so every component wired from one config reports
/// into the same registry.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    /// Enabled. Overhead with nobody reading is a few atomics per record, so
    /// instrumentation is on unless explicitly opted out.
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Telemetry {
    /// A fresh, enabled handle with its own registry and trace.
    pub fn new() -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: metrics::Registry::default(),
                trace: trace::EventTrace::new(),
            })),
        }
    }

    /// A handle that records nothing: metric handles are no-ops, events are
    /// discarded. Used as the baseline of the overhead gate.
    pub fn disabled() -> Self {
        Telemetry { inner: None }
    }

    /// True when this handle retains what is recorded through it.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Interns (or reuses) the counter `name`. Cold path — cache the handle.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .as_ref()
            .map_or_else(Counter::noop, |i| i.registry.counter(name))
    }

    /// Interns (or reuses) the gauge `name`. Cold path — cache the handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .as_ref()
            .map_or_else(Gauge::noop, |i| i.registry.gauge(name))
    }

    /// Interns (or reuses) the histogram `name`. Cold path — cache the handle.
    pub fn histogram(&self, name: &str) -> HistHandle {
        self.inner
            .as_ref()
            .map_or_else(HistHandle::noop, |i| i.registry.histogram(name))
    }

    /// Convenience point read of a counter (0 when absent or disabled).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counter(name).get()
    }

    /// Appends a control-plane event to the trace (and the JSONL sink, when
    /// one is installed). No-op when disabled.
    pub fn event(&self, kind: &'static str, scope: &str, epoch: u64, detail: impl Into<String>) {
        if let Some(inner) = &self.inner {
            inner.trace.record(kind, scope, epoch, detail.into());
        }
    }

    /// The trace contents, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.trace.events())
    }

    /// Caps the event ring at `capacity` entries (oldest evicted first).
    pub fn set_event_capacity(&self, capacity: usize) {
        if let Some(inner) = &self.inner {
            inner.trace.set_capacity(capacity);
        }
    }

    /// Mirrors every subsequent event to `path` as one JSON object per line.
    pub fn set_jsonl_sink(&self, path: &Path) -> std::io::Result<()> {
        match &self.inner {
            Some(inner) => inner.trace.set_jsonl_sink(path),
            None => Ok(()),
        }
    }

    /// Freezes everything into a [`TelemetrySnapshot`].
    pub fn snapshot(&self) -> TelemetrySnapshot {
        match &self.inner {
            None => TelemetrySnapshot::default(),
            Some(inner) => TelemetrySnapshot {
                counters: inner.registry.counter_values(),
                gauges: inner.registry.gauge_values(),
                histograms: inner.registry.histogram_summaries(),
                events: inner.trace.events(),
                events_dropped: inner.trace.dropped(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Telemetry::new();
        let b = a.clone();
        a.counter("c").inc();
        b.counter("c").inc();
        assert_eq!(a.counter_value("c"), 2);
        b.event(events::EPOCH_BUMP, "x", 1, "");
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        t.counter("c").inc();
        t.histogram("h").record(1);
        t.event(events::PEER_FAILURE, "p", 0, "");
        let snap = t.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.histograms.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn separate_handles_are_isolated() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        a.counter("c").inc();
        assert_eq!(b.counter_value("c"), 0);
    }

    #[test]
    fn snapshot_round_trips_through_renders() {
        let t = Telemetry::new();
        t.gauge("g").set(5);
        t.histogram("h").record(1_000);
        t.event(events::AP_MAP_UPDATE, "app/f", 2, "peers=[a,b,c]");
        let snap = t.snapshot();
        assert!(snap.render_text().contains("ap-map-update"));
        let json = snap.render_json();
        assert!(json.contains("\"g\": 5"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("peers=[a,b,c]"));
    }
}
