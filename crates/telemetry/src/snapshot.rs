//! Point-in-time snapshot of a [`crate::Telemetry`] handle, renderable as
//! aligned text (for terminal dumps) or JSON (for BENCH files and tooling).

use crate::hist::Summary;
use crate::span::Span;
use crate::trace::Event;

/// Escapes a string for embedding inside a JSON string literal.
///
/// Public so downstream emitters of hand-rolled JSON (the bench harness, the
/// exporters) share one correct implementation instead of interpolating raw
/// strings.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a [`crate::Telemetry`] handle knows, frozen at one instant.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, Summary)>,
    /// The event ring's contents, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot.
    pub events_dropped: u64,
    /// The span ring's contents, oldest first.
    pub spans: Vec<Span>,
    /// Spans evicted from the ring before this snapshot.
    pub spans_dropped: u64,
}

impl TelemetrySnapshot {
    /// Looks up a counter by exact name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a histogram summary by exact name.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Renders an aligned, human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry snapshot ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs):\n");
            out.push_str(&format!(
                "  {:<40} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}\n",
                "name", "count", "mean", "p50", "p99", "max", "ovfl"
            ));
            for (name, s) in &self.histograms {
                out.push_str(&format!(
                    "  {:<40} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>8}\n",
                    name,
                    s.count,
                    s.mean_ns / 1e3,
                    s.p50_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3,
                    s.max_ns as f64 / 1e3,
                    s.overflow,
                ));
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str(&format!(
                "events ({} shown, {} dropped):\n",
                self.events.len(),
                self.events_dropped
            ));
            for ev in &self.events {
                out.push_str(&format!(
                    "  [{:>12.3} ms] {:<22} {:<28} epoch={} {}\n",
                    ev.ts_ns as f64 / 1e6,
                    ev.kind,
                    ev.scope,
                    ev.epoch,
                    ev.detail
                ));
            }
        }
        if !self.spans.is_empty() || self.spans_dropped > 0 {
            out.push_str(&format!(
                "spans ({} shown, {} dropped):\n",
                self.spans.len(),
                self.spans_dropped
            ));
            for sp in &self.spans {
                out.push_str(&format!(
                    "  [{:>12.3} ms] {:<22} {:<28} trace={} dur={:.1}µs epoch={}\n",
                    sp.start_ns as f64 / 1e6,
                    sp.name,
                    sp.scope,
                    sp.trace,
                    sp.duration_ns() as f64 / 1e3,
                    sp.epoch,
                ));
            }
        }
        out
    }

    /// Renders the full snapshot as one JSON object.
    pub fn render_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json_escape(n), v))
            .collect::<Vec<_>>()
            .join(", ");
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json_escape(n), v))
            .collect::<Vec<_>>()
            .join(", ");
        let hists = self
            .histograms
            .iter()
            .map(|(n, s)| format!("\"{}\": {}", json_escape(n), s.to_json()))
            .collect::<Vec<_>>()
            .join(", ");
        let events = self
            .events
            .iter()
            .map(Event::to_json)
            .collect::<Vec<_>>()
            .join(", ");
        let spans = self
            .spans
            .iter()
            .map(Span::to_json)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \"histograms\": {{{hists}}}, \"events\": [{events}], \"events_dropped\": {}, \"spans\": [{spans}], \"spans_dropped\": {}}}",
            self.events_dropped, self.spans_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn renders_are_well_formed() {
        let snap = TelemetrySnapshot {
            counters: vec![("ncl.flush.submit".into(), 4)],
            gauges: vec![("ncl.window.depth".into(), -1)],
            histograms: vec![(
                "ncl.record.wire".into(),
                Summary {
                    count: 2,
                    mean_ns: 150.0,
                    min_ns: 100,
                    p50_ns: 100,
                    p99_ns: 200,
                    max_ns: 200,
                    overflow: 1,
                },
            )],
            events: vec![Event {
                ts_ns: 42,
                kind: "epoch-bump",
                scope: "app/f".into(),
                epoch: 7,
                trace: 3,
                detail: String::new(),
            }],
            events_dropped: 0,
            spans: vec![Span {
                trace: 3,
                id: 3,
                parent: 0,
                name: "ncl.write",
                scope: "app/f",
                epoch: 7,
                start_ns: 40,
                end_ns: 90,
            }],
            spans_dropped: 1,
        };
        let text = snap.render_text();
        assert!(text.contains("ncl.flush.submit"));
        assert!(text.contains("epoch-bump"));
        assert!(text.contains("ncl.write"));
        let json = snap.render_json();
        assert!(json.contains("\"ncl.record.wire\""));
        assert!(json.contains("\"overflow\": 1"));
        assert!(text.contains("ovfl"));
        assert!(json.contains("\"epoch\": 7"));
        assert!(json.contains("\"spans_dropped\": 1"));
        assert_eq!(snap.counter("ncl.flush.submit"), 4);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.summary("ncl.record.wire").unwrap().count, 2);
    }

    /// Regression test: metric names, event scopes, and details containing
    /// JSON-special characters must render as *valid* JSON, with quotes,
    /// backslashes, and control chars escaped in every string position.
    #[test]
    fn render_json_escapes_hostile_names_and_labels() {
        let snap = TelemetrySnapshot {
            counters: vec![("evil\"name\\with\nnewline".into(), 1)],
            gauges: vec![("tab\there".into(), 2)],
            histograms: vec![(
                "quote\"hist".into(),
                Summary {
                    count: 1,
                    mean_ns: 1.0,
                    min_ns: 1,
                    p50_ns: 1,
                    p99_ns: 1,
                    max_ns: 1,
                    overflow: 0,
                },
            )],
            events: vec![Event {
                ts_ns: 1,
                kind: "epoch-bump",
                scope: "app/\"weird\\path".into(),
                epoch: 1,
                trace: 0,
                detail: "ctrl\u{1}char and \"quotes\"".into(),
            }],
            events_dropped: 0,
            spans: vec![Span {
                trace: 1,
                id: 1,
                parent: 0,
                name: "ncl.write",
                scope: "peer\\0",
                epoch: 1,
                start_ns: 0,
                end_ns: 1,
            }],
            spans_dropped: 0,
        };
        let json = snap.render_json();
        // No raw (unescaped) quote may terminate a string early: strip the
        // escape sequences and verify balanced braces/brackets remain.
        assert!(json.contains("evil\\\"name\\\\with\\nnewline"));
        assert!(json.contains("tab\\there"));
        assert!(json.contains("quote\\\"hist"));
        assert!(json.contains("app/\\\"weird\\\\path"));
        assert!(json.contains("ctrl\\u0001char"));
        assert!(json.contains("peer\\\\0"));
        // A quick structural sanity check: after removing escaped characters,
        // the number of quotes must be even.
        let unescaped = json.replace("\\\\", "").replace("\\\"", "");
        assert_eq!(unescaped.matches('"').count() % 2, 0);
        assert!(!unescaped.contains('\n'));
    }
}
