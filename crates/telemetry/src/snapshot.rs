//! Point-in-time snapshot of a [`crate::Telemetry`] handle, renderable as
//! aligned text (for terminal dumps) or JSON (for BENCH files and tooling).

use crate::hist::Summary;
use crate::trace::Event;

/// Escapes a string for embedding inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Everything a [`crate::Telemetry`] handle knows, frozen at one instant.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<(String, Summary)>,
    /// The event ring's contents, oldest first.
    pub events: Vec<Event>,
    /// Events evicted from the ring before this snapshot.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// Looks up a counter by exact name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Looks up a histogram summary by exact name.
    pub fn summary(&self, name: &str) -> Option<Summary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
    }

    /// Renders an aligned, human-readable report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("== telemetry snapshot ==\n");
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<40} {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms (µs):\n");
            out.push_str(&format!(
                "  {:<40} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "mean", "p50", "p99", "max"
            ));
            for (name, s) in &self.histograms {
                out.push_str(&format!(
                    "  {:<40} {:>10} {:>10.1} {:>10.1} {:>10.1} {:>10.1}\n",
                    name,
                    s.count,
                    s.mean_ns / 1e3,
                    s.p50_ns as f64 / 1e3,
                    s.p99_ns as f64 / 1e3,
                    s.max_ns as f64 / 1e3,
                ));
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            out.push_str(&format!(
                "events ({} shown, {} dropped):\n",
                self.events.len(),
                self.events_dropped
            ));
            for ev in &self.events {
                out.push_str(&format!(
                    "  [{:>12.3} ms] {:<22} {:<28} epoch={} {}\n",
                    ev.ts_ns as f64 / 1e6,
                    ev.kind,
                    ev.scope,
                    ev.epoch,
                    ev.detail
                ));
            }
        }
        out
    }

    /// Renders the full snapshot as one JSON object.
    pub fn render_json(&self) -> String {
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json_escape(n), v))
            .collect::<Vec<_>>()
            .join(", ");
        let gauges = self
            .gauges
            .iter()
            .map(|(n, v)| format!("\"{}\": {}", json_escape(n), v))
            .collect::<Vec<_>>()
            .join(", ");
        let hists = self
            .histograms
            .iter()
            .map(|(n, s)| format!("\"{}\": {}", json_escape(n), s.to_json()))
            .collect::<Vec<_>>()
            .join(", ");
        let events = self
            .events
            .iter()
            .map(Event::to_json)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \"histograms\": {{{hists}}}, \"events\": [{events}], \"events_dropped\": {}}}",
            self.events_dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn renders_are_well_formed() {
        let snap = TelemetrySnapshot {
            counters: vec![("ncl.flush.submit".into(), 4)],
            gauges: vec![("ncl.window.depth".into(), -1)],
            histograms: vec![(
                "ncl.record.wire".into(),
                Summary {
                    count: 2,
                    mean_ns: 150.0,
                    min_ns: 100,
                    p50_ns: 100,
                    p99_ns: 200,
                    max_ns: 200,
                },
            )],
            events: vec![Event {
                ts_ns: 42,
                kind: "epoch-bump",
                scope: "app/f".into(),
                epoch: 7,
                detail: String::new(),
            }],
            events_dropped: 0,
        };
        let text = snap.render_text();
        assert!(text.contains("ncl.flush.submit"));
        assert!(text.contains("epoch-bump"));
        let json = snap.render_json();
        assert!(json.contains("\"ncl.record.wire\""));
        assert!(json.contains("\"epoch\": 7"));
        assert_eq!(snap.counter("ncl.flush.submit"), 4);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.summary("ncl.record.wire").unwrap().count, 2);
    }
}
