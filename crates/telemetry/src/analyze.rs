//! Causal-trace analysis: JSONL replay, per-write invariant checking, and a
//! stage-aggregated flamegraph-style breakdown.
//!
//! A telemetry JSONL file (from [`crate::Telemetry::set_jsonl_sink`])
//! interleaves `"type": "span"` and `"type": "event"` lines. This module
//! parses them back ([`parse_jsonl`]), groups spans by `trace` id, and
//! verifies the protocol's per-write promises ([`analyze`]):
//!
//! 1. **Tree integrity** — in every trace with a root span, each child's
//!    parent id resolves within the trace (zero orphan spans).
//! 2. **Ack ⇒ majority durable** — every acked write (`ncl.write` root) has
//!    its `ncl.stage` + `ncl.doorbell` children and at least `quorum`
//!    distinct peers covering it via `ncl.wire.peer` or `ncl.catchup.peer`
//!    spans — the span-tree restatement of "ack at f+1 of 2f+1".
//! 3. **No ack while degraded** — no write trace *starts* inside a
//!    [`DFS_FALLBACK_ENGAGE`](crate::events::DFS_FALLBACK_ENGAGE) →
//!    [`NCL_REATTACH`](crate::events::NCL_REATTACH) window for its scope,
//!    unless it lies inside a `splitfs.reattach.replay` span (journal replay
//!    legitimately writes through NCL just before reattach completes).
//! 4. **Catch-up before ap-map update** — for every peer replacement, a
//!    `catch-up-finish` at the new epoch precedes that epoch's
//!    `ap-map-update` (the paper's no-lost-prefix ordering).
//! 5. **Monotone ap-map epochs** — per scope, published epochs never go
//!    backwards.
//!
//! The same checks back `trace_analyzer --check` in CI and the integration
//! tests' trace assertions, replacing the previous hand-rolled event walks.

use std::collections::{BTreeMap, BTreeSet};

use crate::span::{intern_scope, intern_span_name};
use crate::trace::intern_kind;
use crate::{events, spans, Event, Span};

/// Extracts `"key": "string"` from a flat JSON object line, unescaping.
fn str_field(line: &str, key: &str) -> Option<String> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let rest = line[at..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts `"key": 123` from a flat JSON object line.
fn u64_field(line: &str, key: &str) -> Option<u64> {
    let needle = format!("\"{key}\":");
    let at = line.find(&needle)? + needle.len();
    let digits: String = line[at..]
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect();
    digits.parse().ok()
}

/// Parses a telemetry JSONL document back into spans and events. Lines that
/// are empty are skipped; structurally broken lines are errors (a truncated
/// final line from a crashed process is reported, not silently dropped).
pub fn parse_jsonl(text: &str) -> Result<(Vec<Span>, Vec<Event>), String> {
    let mut spans = Vec::new();
    let mut evs = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        match str_field(line, "type").as_deref() {
            Some("span") => {
                let parse = || -> Option<Span> {
                    Some(Span {
                        trace: u64_field(line, "trace")?,
                        id: u64_field(line, "id")?,
                        parent: u64_field(line, "parent")?,
                        name: intern_span_name(&str_field(line, "name")?),
                        scope: intern_scope(&str_field(line, "scope")?),
                        epoch: u64_field(line, "epoch")?,
                        start_ns: u64_field(line, "start_ns")?,
                        end_ns: u64_field(line, "end_ns")?,
                    })
                };
                spans.push(parse().ok_or_else(|| format!("line {ln}: malformed span"))?);
            }
            Some("event") => {
                let parse = || -> Option<Event> {
                    Some(Event {
                        ts_ns: u64_field(line, "ts_ns")?,
                        kind: intern_kind(&str_field(line, "kind")?),
                        scope: str_field(line, "scope")?,
                        epoch: u64_field(line, "epoch")?,
                        // Pre-tracing JSONL files have no trace field.
                        trace: u64_field(line, "trace").unwrap_or(0),
                        detail: str_field(line, "detail").unwrap_or_default(),
                    })
                };
                evs.push(parse().ok_or_else(|| format!("line {ln}: malformed event"))?);
            }
            other => {
                return Err(format!("line {ln}: unknown record type {other:?}"));
            }
        }
    }
    Ok((spans, evs))
}

/// Aggregated timing for one span name.
#[derive(Debug, Clone)]
pub struct StageAgg {
    /// Span name.
    pub name: &'static str,
    /// Closed spans with this name.
    pub count: u64,
    /// Summed duration.
    pub total_ns: u64,
    /// Mean duration.
    pub mean_ns: f64,
    /// Largest duration.
    pub max_ns: u64,
}

/// Outcome of analyzing one trace file (or one in-process ring pair).
#[derive(Debug, Default)]
pub struct TraceReport {
    /// Spans consumed.
    pub total_spans: usize,
    /// Events consumed.
    pub total_events: usize,
    /// Distinct trace ids seen in spans.
    pub traces: usize,
    /// Write traces with an `ncl.write` root (i.e. acked writes).
    pub acked_writes: usize,
    /// Write traces with staging activity but no root: submitted, never
    /// acked. Expected under chaos (crashes mid-flight); not a violation.
    pub open_writes: usize,
    /// Spans inside rooted traces whose parent id did not resolve.
    pub orphan_spans: usize,
    /// Invariant violations, human-readable, empty when the trace is clean.
    pub violations: Vec<String>,
    /// Per-span-name aggregation, flamegraph ordering.
    pub stages: Vec<StageAgg>,
    /// True when the window under analysis is known incomplete — the source
    /// rings dropped entries (`dropped > 0`) or a
    /// [`TRACE_TRUNCATED`](crate::events::TRACE_TRUNCATED) event appears in
    /// the stream. Span-completeness invariants (tree integrity, ack
    /// coverage) are skipped rather than reported as false positives; the
    /// event-order invariants still run.
    pub truncated: bool,
    /// Ring entries the producer reported dropped for this window.
    pub dropped: u64,
}

impl TraceReport {
    /// True when every invariant held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// One-paragraph summary plus the stage breakdown.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} spans / {} events across {} traces: {} acked writes, {} open, {} orphan spans, {} violations\n",
            self.total_spans,
            self.total_events,
            self.traces,
            self.acked_writes,
            self.open_writes,
            self.orphan_spans,
            self.violations.len()
        );
        if self.truncated {
            out.push_str(&format!(
                "  NOTE: analysis of truncated window ({} ring entries dropped); span-completeness invariants skipped\n",
                self.dropped
            ));
        }
        for v in &self.violations {
            out.push_str(&format!("  VIOLATION: {v}\n"));
        }
        out.push_str(&self.render_flame());
        out
    }

    /// Stage-aggregated flamegraph-style breakdown: parents above children,
    /// children indented, each line showing count / total / mean / share of
    /// its root's total time.
    pub fn render_flame(&self) -> String {
        // Indentation by well-known parentage; unknown names sit at depth 0.
        fn depth(name: &str) -> usize {
            match name {
                spans::NCL_WRITE
                | spans::NCL_REPAIR
                | spans::NCL_RECOVER
                | spans::FS_REATTACH_REPLAY => 0,
                _ => 1,
            }
        }
        fn root_of(name: &str) -> &'static str {
            if name.starts_with("ncl.repair") {
                spans::NCL_REPAIR
            } else if name.starts_with("ncl.recover") {
                spans::NCL_RECOVER
            } else if name.starts_with("splitfs.") {
                spans::FS_REATTACH_REPLAY
            } else {
                spans::NCL_WRITE
            }
        }
        let totals: BTreeMap<&str, u64> =
            self.stages.iter().map(|s| (s.name, s.total_ns)).collect();
        let mut out = String::from("stage breakdown (flame):\n");
        for s in &self.stages {
            let root_total = *totals.get(root_of(s.name)).unwrap_or(&0);
            let share = if root_total > 0 {
                100.0 * s.total_ns as f64 / root_total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:indent$}{:<28} n={:<8} total={:>12.3}ms mean={:>10.1}µs max={:>10.1}µs {:>5.1}%\n",
                "",
                s.name,
                s.count,
                s.total_ns as f64 / 1e6,
                s.mean_ns / 1e3,
                s.max_ns as f64 / 1e3,
                share,
                indent = depth(s.name) * 2,
            ));
        }
        out
    }
}

/// Orders stage rows so each root precedes its children (flame layout).
fn flame_order(name: &str) -> (usize, &str) {
    let rank = spans::ALL
        .iter()
        .position(|n| *n == name)
        .unwrap_or(usize::MAX);
    (rank, name)
}

/// Runs every invariant over the given spans + events. `quorum` is the f+1
/// write quorum the deployment ran with (2 for the default 3-replica set).
pub fn analyze(spans_in: &[Span], events_in: &[Event], quorum: usize) -> TraceReport {
    analyze_with_drops(spans_in, events_in, quorum, 0)
}

/// Like [`analyze`], but told how many in-memory ring entries the producer
/// dropped for this window (see [`crate::Telemetry::trace_dropped`]). A
/// nonzero `dropped` — or a `trace-truncated` event in the stream — marks
/// the report truncated: tree-integrity and ack-coverage checks would only
/// report artifacts of the missing prefix, so they are skipped and the
/// report says so instead. Event-order invariants (degraded-window,
/// catch-up-before-ap-map, monotone epochs) still run; JSONL sinks never
/// drop, so offline analysis of a sink file normally passes `dropped = 0`.
pub fn analyze_with_drops(
    spans_in: &[Span],
    events_in: &[Event],
    quorum: usize,
    dropped: u64,
) -> TraceReport {
    let truncated = dropped > 0 || events_in.iter().any(|e| e.kind == events::TRACE_TRUNCATED);
    let mut report = TraceReport {
        total_spans: spans_in.len(),
        total_events: events_in.len(),
        truncated,
        dropped,
        ..TraceReport::default()
    };

    // ---- group spans by trace --------------------------------------------
    let mut by_trace: BTreeMap<u64, Vec<&Span>> = BTreeMap::new();
    for s in spans_in {
        by_trace.entry(s.trace).or_default().push(s);
    }
    report.traces = by_trace.len();

    // Replay windows per scope, for invariant 3's exemption.
    let replay_windows: Vec<&Span> = spans_in
        .iter()
        .filter(|s| s.name == spans::FS_REATTACH_REPLAY)
        .collect();

    // Per-scope coverage requirement for invariant 2. Replicated scopes
    // need the f+1 write quorum passed by the caller; erasure-coded scopes
    // declare `ec k=<k> n=<n>` through a DURABILITY_MODE event and need
    // only `k` covering peers — any k of the n fragments reconstruct the
    // stripe, so "acked ⇒ quorum coverage" generalizes to "acked ⇒
    // reconstructible fragment coverage".
    let mut required_coverage: BTreeMap<&str, usize> = BTreeMap::new();
    for ev in events_in
        .iter()
        .filter(|e| e.kind == events::DURABILITY_MODE)
    {
        if let Some(k) = ev
            .detail
            .split_whitespace()
            .find_map(|t| t.strip_prefix("k="))
            .and_then(|v| v.parse::<usize>().ok())
        {
            required_coverage.insert(ev.scope.as_str(), k);
        }
    }

    for (trace, spans) in &by_trace {
        let root = spans.iter().find(|s| s.id == *trace && s.parent == 0);
        let is_write = spans.iter().any(|s| {
            matches!(
                s.name,
                spans::NCL_WRITE | spans::NCL_STAGE | spans::NCL_DOORBELL
            )
        });

        // 1. Tree integrity (only meaningful once the root exists, and only
        // sound when the window is complete: a truncated ring loses early
        // children, which would surface here as phantom orphans).
        if let Some(root) = root {
            if !truncated {
                let ids: BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
                for s in spans {
                    if s.parent != 0 && !ids.contains(&s.parent) {
                        report.orphan_spans += 1;
                        report.violations.push(format!(
                            "trace {trace}: span {} ({}) has unresolved parent {}",
                            s.id, s.name, s.parent
                        ));
                    }
                }
            }

            if root.name == spans::NCL_WRITE {
                report.acked_writes += 1;

                // 2. Ack ⇒ staged, doorbelled, and quorum-covered. Skipped
                // for truncated windows: coverage children precede the root
                // in the ring, so they are the first entries lost.
                if !truncated {
                    for required in [spans::NCL_STAGE, spans::NCL_DOORBELL] {
                        if !spans.iter().any(|s| s.name == required) {
                            report.violations.push(format!(
                                "trace {trace}: acked write missing {required} span"
                            ));
                        }
                    }
                    let coverage: BTreeSet<&str> = spans
                        .iter()
                        .filter(|s| {
                            s.name == spans::NCL_WIRE_PEER || s.name == spans::NCL_CATCHUP_PEER
                        })
                        .map(|s| s.scope)
                        .collect();
                    let required = required_coverage.get(root.scope).copied().unwrap_or(quorum);
                    if coverage.len() < required {
                        report.violations.push(format!(
                            "trace {trace}: acked write covered by {} peers ({:?}), reconstruction quorum is {required}",
                            coverage.len(),
                            coverage
                        ));
                    }
                }

                // 3. No new write may start inside a degraded window unless
                // it is reattach-replay traffic.
                for engage in events_in
                    .iter()
                    .filter(|e| e.kind == events::DFS_FALLBACK_ENGAGE && e.scope == root.scope)
                {
                    let window_end = events_in
                        .iter()
                        .filter(|e| {
                            e.kind == events::NCL_REATTACH
                                && e.scope == root.scope
                                && e.ts_ns >= engage.ts_ns
                        })
                        .map(|e| e.ts_ns)
                        .min()
                        .unwrap_or(u64::MAX);
                    if root.start_ns >= engage.ts_ns && root.start_ns < window_end {
                        let replayed = replay_windows.iter().any(|r| {
                            r.scope == root.scope
                                && root.start_ns >= r.start_ns
                                && root.start_ns <= r.end_ns
                        });
                        if !replayed {
                            report.violations.push(format!(
                                "trace {trace}: write started at {}ns inside degraded window [{}ns, {}ns) of {}",
                                root.start_ns, engage.ts_ns, window_end, root.scope
                            ));
                        }
                    }
                }
            }
        } else if is_write {
            report.open_writes += 1;
        }
    }

    // ---- event-order invariants (4, 5) -----------------------------------
    let mut last_ap_epoch: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in events_in.iter().filter(|e| e.kind == events::AP_MAP_UPDATE) {
        let prev = last_ap_epoch.entry(ev.scope.as_str()).or_insert(0);
        if ev.epoch < *prev {
            report.violations.push(format!(
                "scope {}: ap-map epoch went backwards ({} after {})",
                ev.scope, ev.epoch, prev
            ));
        }
        *prev = (*prev).max(ev.epoch);
    }

    // A replacement's PEER_REPLACE_START carries the new (fenced) epoch; its
    // commit is the AP_MAP_UPDATE at that same scope + epoch. Catch-up
    // events are scoped to *peer names*, so they are matched by epoch alone.
    for (i, start) in events_in
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind == events::PEER_REPLACE_START)
    {
        let Some(update_idx) = events_in.iter().position(|e| {
            e.kind == events::AP_MAP_UPDATE && e.scope == start.scope && e.epoch == start.epoch
        }) else {
            // Replacement that never republished (e.g. crash mid-repair) —
            // legal; nothing was promised to readers.
            continue;
        };
        if update_idx < i {
            report.violations.push(format!(
                "scope {}: ap-map update at epoch {} precedes its replace-start",
                start.scope, start.epoch
            ));
            continue;
        }
        let caught_up = events_in[..update_idx]
            .iter()
            .any(|e| e.kind == events::CATCH_UP_FINISH && e.epoch == start.epoch);
        if !caught_up {
            report.violations.push(format!(
                "scope {}: ap-map moved to epoch {} before catch-up finished",
                start.scope, start.epoch
            ));
        }
    }

    // ---- stage aggregation -----------------------------------------------
    let mut agg: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for s in spans_in {
        let e = agg.entry(s.name).or_insert((0, 0, 0));
        e.0 += 1;
        e.1 += s.duration_ns();
        e.2 = e.2.max(s.duration_ns());
    }
    let mut stages: Vec<StageAgg> = agg
        .into_iter()
        .map(|(name, (count, total_ns, max_ns))| StageAgg {
            name,
            count,
            total_ns,
            mean_ns: total_ns as f64 / count as f64,
            max_ns,
        })
        .collect();
    stages.sort_by_key(|s| flame_order(s.name));
    report.stages = stages;

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp(trace: u64, id: u64, parent: u64, name: &'static str, scope: &'static str) -> Span {
        Span {
            trace,
            id,
            parent,
            name,
            scope,
            epoch: 1,
            start_ns: 100,
            end_ns: 200,
        }
    }

    fn ev(ts_ns: u64, kind: &'static str, scope: &str, epoch: u64) -> Event {
        Event {
            ts_ns,
            kind,
            scope: scope.into(),
            epoch,
            trace: 0,
            detail: String::new(),
        }
    }

    fn acked_write(trace: u64) -> Vec<Span> {
        vec![
            sp(trace, trace, 0, spans::NCL_WRITE, "app/f"),
            sp(trace, trace + 1, trace, spans::NCL_STAGE, "app/f"),
            sp(trace, trace + 2, trace, spans::NCL_DOORBELL, "app/f"),
            sp(trace, trace + 3, trace, spans::NCL_WIRE_PEER, "peer-0"),
            sp(trace, trace + 4, trace, spans::NCL_WIRE_PEER, "peer-1"),
        ]
    }

    #[test]
    fn clean_write_trace_passes() {
        let spans = acked_write(10);
        let report = analyze(&spans, &[], 2);
        assert!(report.ok(), "{:?}", report.violations);
        assert_eq!(report.acked_writes, 1);
        assert_eq!(report.orphan_spans, 0);
        let flame = report.render_flame();
        assert!(flame.contains("ncl.write"));
        assert!(flame.contains("ncl.wire.peer"));
    }

    #[test]
    fn under_quorum_coverage_is_flagged() {
        let mut spans = acked_write(10);
        spans.retain(|s| s.scope != "peer-1");
        let report = analyze(&spans, &[], 2);
        assert!(!report.ok());
        assert!(report.violations[0].contains("quorum"));
    }

    #[test]
    fn catchup_spans_count_toward_coverage() {
        let mut spans = acked_write(10);
        spans.retain(|s| s.scope != "peer-1");
        spans.push(sp(10, 99, 10, spans::NCL_CATCHUP_PEER, "peer-2"));
        assert!(analyze(&spans, &[], 2).ok());
    }

    #[test]
    fn orphan_parent_is_flagged_only_for_rooted_traces() {
        let mut spans = acked_write(10);
        spans.push(sp(10, 999, 555, spans::NCL_ACK, "app/f"));
        let report = analyze(&spans, &[], 2);
        assert_eq!(report.orphan_spans, 1);

        // Rootless (open) traces don't count as orphaned — crash mid-write.
        let open = vec![sp(20, 21, 20, spans::NCL_STAGE, "app/f")];
        let report = analyze(&open, &[], 2);
        assert!(report.ok());
        assert_eq!(report.open_writes, 1);
    }

    #[test]
    fn write_inside_degraded_window_is_flagged_unless_replayed() {
        let events = vec![
            ev(1_000, events::DFS_FALLBACK_ENGAGE, "app/f", 2),
            ev(9_000, events::NCL_REATTACH, "app/f", 3),
        ];
        let mut spans = acked_write(10);
        for s in &mut spans {
            s.start_ns = 5_000; // inside the window
            s.end_ns = 6_000;
        }
        let report = analyze(&spans, &events, 2);
        assert!(!report.ok());
        assert!(report.violations[0].contains("degraded window"));

        // The same write under a replay span is legal.
        let mut replay = sp(0, 500, 0, spans::FS_REATTACH_REPLAY, "app/f");
        replay.start_ns = 4_000;
        replay.end_ns = 8_000;
        spans.push(replay);
        assert!(analyze(&spans, &events, 2).ok());
    }

    #[test]
    fn apmap_ordering_invariants() {
        // Monotone epochs.
        let bad = vec![
            ev(1, events::AP_MAP_UPDATE, "app/f", 3),
            ev(2, events::AP_MAP_UPDATE, "app/f", 2),
        ];
        assert!(!analyze(&[], &bad, 2).ok());

        // Update without catch-up after a replacement start (replace-start
        // carries the new epoch; catch-up events are scoped to peer names).
        let no_catchup = vec![
            ev(1, events::PEER_REPLACE_START, "app/f", 2),
            ev(5, events::AP_MAP_UPDATE, "app/f", 2),
        ];
        let report = analyze(&[], &no_catchup, 2);
        assert!(report.violations[0].contains("catch-up"));

        // Proper ordering passes.
        let good = vec![
            ev(1, events::PEER_REPLACE_START, "app/f", 2),
            ev(3, events::CATCH_UP_FINISH, "peer-7", 2),
            ev(5, events::AP_MAP_UPDATE, "app/f", 2),
        ];
        assert!(analyze(&[], &good, 2).ok());

        // An update that reuses the epoch but precedes the start is flagged.
        let inverted = vec![
            ev(1, events::AP_MAP_UPDATE, "app/f", 2),
            ev(3, events::PEER_REPLACE_START, "app/f", 2),
        ];
        assert!(!analyze(&[], &inverted, 2).ok());
    }

    #[test]
    fn truncated_window_downgrades_completeness_invariants() {
        // A write whose coverage children fell off the ring: under-quorum
        // AND orphaned if judged naively.
        let spans = vec![
            sp(10, 10, 0, spans::NCL_WRITE, "app/f"),
            sp(10, 99, 55, spans::NCL_ACK, "app/f"), // parent 55 was dropped
        ];
        let naive = analyze(&spans, &[], 2);
        assert!(!naive.ok());
        assert!(!naive.truncated);

        // Told about the drops, the analyzer reports truncation instead.
        let honest = analyze_with_drops(&spans, &[], 2, 7);
        assert!(honest.ok(), "{:?}", honest.violations);
        assert!(honest.truncated);
        assert_eq!(honest.dropped, 7);
        assert_eq!(honest.orphan_spans, 0);
        assert_eq!(honest.acked_writes, 1, "acked count still reported");
        assert!(honest.render().contains("truncated window"));

        // A trace-truncated event in the stream marks it too, and the
        // event-order invariants still run.
        let events = vec![
            ev(1, events::TRACE_TRUNCATED, "telemetry", 0),
            ev(2, events::AP_MAP_UPDATE, "app/f", 3),
            ev(3, events::AP_MAP_UPDATE, "app/f", 2),
        ];
        let report = analyze(&spans, &events, 2);
        assert!(report.truncated);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("went backwards"));
    }

    #[test]
    fn jsonl_round_trip() {
        let span = sp(7, 7, 0, spans::NCL_WRITE, "app/\"quoted\"");
        let event = Event {
            ts_ns: 11,
            kind: events::EPOCH_BUMP,
            scope: "app/f".into(),
            epoch: 4,
            trace: 7,
            detail: "tab\there".into(),
        };
        let text = format!("{}\n{}\n", span.to_json(), event.to_json());
        let (spans, events) = parse_jsonl(&text).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].scope, "app/\"quoted\"");
        assert_eq!(spans[0].name, spans::NCL_WRITE);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace, 7);
        assert_eq!(events[0].detail, "tab\there");

        assert!(parse_jsonl("{\"type\": \"span\"}\n").is_err());
        assert!(parse_jsonl("garbage\n").is_err());
    }
}
