//! SLO / health plane: latency objectives, multi-window burn rates, and
//! saturation signals derived from the metrics registry.
//!
//! A latency SLO here is "at most `budget` of samples may exceed
//! `threshold_ns`". Each [`SloTracker`] snapshots its histogram at
//! caller-driven ticks (the same windowing discipline as
//! [`crate::export::series::PercentileSeries`]) and classifies the window's
//! samples as good/bad via [`Histogram::count_at_most`] (bucket granularity,
//! ~3%). The **burn rate** of a window span is
//!
//! ```text
//! burn = (bad samples / total samples) / budget
//! ```
//!
//! so `burn == 1.0` means the error budget is being consumed exactly as fast
//! as it accrues; sustained `burn > 1.0` eventually violates the SLO. Status
//! uses the SRE-style multi-window rule: **breached** when both the fast
//! window (recent ticks — "it is happening now") and the slow window (a
//! longer span — "it is not a blip") burn at or above `breach_burn`;
//! **warning** when only the fast window does.
//!
//! [`SloPlane`] bundles trackers with saturation signals that lead the
//! latency cliff rather than trail it: window-stall occupancy (writers
//! blocked on a full in-flight window), per-shard doorbell latency from the
//! sharded runtime's `ncl.shard-<i>.record.doorbell` histograms (a queue-
//! depth proxy — doorbell wait grows with the submit queue), and shard
//! imbalance (max/mean of per-shard window throughput). Every tick exports
//! the lot as gauges (`slo.*`), so `/metrics` scrapes see burn rates without
//! extra plumbing, and `/health` (see [`crate::export::http`]) serves the
//! JSON report.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::snapshot::json_escape;
use crate::{Histogram, Telemetry};

/// One latency objective over a registry histogram.
#[derive(Debug, Clone)]
pub struct SloSpec {
    /// Short identifier (used in gauge names and the health report).
    pub name: String,
    /// Registry histogram the objective applies to.
    pub histogram: String,
    /// Samples at or below this are within objective.
    pub threshold_ns: u64,
    /// Allowed bad-sample fraction, in `(0, 1]`.
    pub budget: f64,
    /// Ticks in the fast ("is it happening now") burn window.
    pub fast_windows: usize,
    /// Ticks in the slow ("is it sustained") burn window.
    pub slow_windows: usize,
    /// Burn rate at or above which a window is considered burning.
    pub breach_burn: f64,
}

impl SloSpec {
    /// An objective with the default window geometry (fast = 3 ticks,
    /// slow = 12 ticks, breach at burn ≥ 1.0).
    pub fn new(
        name: impl Into<String>,
        histogram: impl Into<String>,
        threshold_ns: u64,
        budget: f64,
    ) -> Self {
        SloSpec {
            name: name.into(),
            histogram: histogram.into(),
            threshold_ns,
            budget: budget.clamp(f64::MIN_POSITIVE, 1.0),
            fast_windows: 3,
            slow_windows: 12,
            breach_burn: 1.0,
        }
    }

    /// Overrides the window geometry.
    pub fn windows(mut self, fast: usize, slow: usize) -> Self {
        self.fast_windows = fast.max(1);
        self.slow_windows = slow.max(self.fast_windows);
        self
    }

    /// Overrides the breach burn threshold.
    pub fn breach_at(mut self, burn: f64) -> Self {
        self.breach_burn = burn.max(f64::MIN_POSITIVE);
        self
    }
}

/// Health of one objective (or the whole plane): ordered worst-last.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloStatus {
    /// Burn below threshold in the fast window.
    Healthy,
    /// Fast window burning, slow window not yet — a blip or an onset.
    Warning,
    /// Both windows burning: the objective is being violated and it is
    /// sustained.
    Breached,
}

impl SloStatus {
    /// Stable lowercase name for JSON/text.
    pub fn as_str(&self) -> &'static str {
        match self {
            SloStatus::Healthy => "healthy",
            SloStatus::Warning => "warning",
            SloStatus::Breached => "breached",
        }
    }

    /// Numeric code for gauges (0 = healthy, 1 = warning, 2 = breached).
    pub fn code(&self) -> i64 {
        match self {
            SloStatus::Healthy => 0,
            SloStatus::Warning => 1,
            SloStatus::Breached => 2,
        }
    }
}

/// One tick's evaluation of one objective.
#[derive(Debug, Clone)]
pub struct SloState {
    /// The objective's name.
    pub name: String,
    /// The histogram it watches.
    pub histogram: String,
    /// The latency threshold.
    pub threshold_ns: u64,
    /// The error budget.
    pub budget: f64,
    /// Samples in the just-closed window.
    pub window_total: u64,
    /// Samples in the window that exceeded the threshold.
    pub window_bad: u64,
    /// Burn rate over the fast window span (0 when idle).
    pub fast_burn: f64,
    /// Burn rate over the slow window span (0 when idle).
    pub slow_burn: f64,
    /// Multi-window verdict.
    pub status: SloStatus,
}

impl SloState {
    fn to_json(&self) -> String {
        format!(
            "{{\"name\": \"{}\", \"histogram\": \"{}\", \"threshold_ns\": {}, \"budget\": {:.6}, \"window_total\": {}, \"window_bad\": {}, \"fast_burn\": {:.3}, \"slow_burn\": {:.3}, \"status\": \"{}\"}}",
            json_escape(&self.name),
            json_escape(&self.histogram),
            self.threshold_ns,
            self.budget,
            self.window_total,
            self.window_bad,
            self.fast_burn,
            self.slow_burn,
            self.status.as_str()
        )
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct WindowSample {
    total: u64,
    bad: u64,
}

/// Tracks one objective across tick-driven windows.
///
/// Drive it either through [`SloPlane`] (which reads the registry) or
/// directly via [`SloTracker::observe`] with cumulative histogram snapshots
/// (unit tests do the latter).
pub struct SloTracker {
    spec: SloSpec,
    last: Histogram,
    windows: VecDeque<WindowSample>,
}

impl SloTracker {
    /// A tracker with no history.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker {
            spec,
            last: Histogram::new(),
            windows: VecDeque::new(),
        }
    }

    /// The objective this tracker evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Closes a window against a *cumulative* snapshot of the watched
    /// histogram and returns the updated state.
    pub fn observe(&mut self, current: &Histogram) -> SloState {
        let window = current.diff(&self.last);
        self.last = current.clone();
        let total = window.count();
        let bad = total.saturating_sub(window.count_at_most(self.spec.threshold_ns));
        if self.windows.len() >= self.spec.slow_windows {
            self.windows.pop_front();
        }
        self.windows.push_back(WindowSample { total, bad });

        let fast_burn = self.burn_over(self.spec.fast_windows);
        let slow_burn = self.burn_over(self.spec.slow_windows);
        let status = if fast_burn >= self.spec.breach_burn {
            if slow_burn >= self.spec.breach_burn {
                SloStatus::Breached
            } else {
                SloStatus::Warning
            }
        } else {
            SloStatus::Healthy
        };
        SloState {
            name: self.spec.name.clone(),
            histogram: self.spec.histogram.clone(),
            threshold_ns: self.spec.threshold_ns,
            budget: self.spec.budget,
            window_total: total,
            window_bad: bad,
            fast_burn,
            slow_burn,
            status,
        }
    }

    /// Burn rate over the most recent `n` windows (0.0 when they hold no
    /// samples — an idle service is not burning budget).
    pub fn burn_over(&self, n: usize) -> f64 {
        let (mut total, mut bad) = (0u64, 0u64);
        for w in self.windows.iter().rev().take(n.max(1)) {
            total += w.total;
            bad += w.bad;
        }
        if total == 0 {
            0.0
        } else {
            (bad as f64 / total as f64) / self.spec.budget
        }
    }
}

/// Per-shard saturation read of the sharded NCL runtime.
#[derive(Debug, Clone)]
pub struct ShardSaturation {
    /// Shard index (from the `ncl.shard-<i>.*` metric names).
    pub shard: usize,
    /// Windowed p99 of the shard's doorbell stage (queue-depth proxy), 0
    /// when idle.
    pub doorbell_p99_ns: u64,
    /// Records the shard completed during the window.
    pub window_count: u64,
}

/// Saturation signals for one tick.
#[derive(Debug, Clone, Default)]
pub struct SaturationSnapshot {
    /// `ncl.window.stall` growth during the tick: how often writers found
    /// the in-flight window full.
    pub window_stall_delta: u64,
    /// Worst per-shard windowed doorbell p99 (0 when no sharded runtime).
    pub doorbell_p99_ns: u64,
    /// `1000 * max / mean` of per-shard window throughput; 1000 means
    /// perfectly balanced, 0 means idle or unsharded.
    pub shard_imbalance_milli: u64,
    /// Fleet-wide peer memory utilisation in percent (from the
    /// `peer.mem.used_bytes` / `peer.mem.total_bytes` gauges; 0 when no
    /// peer daemon shares the registry).
    pub peer_mem_used_pct: u64,
    /// Regions voluntarily revoked by peers during the tick — sustained
    /// non-zero values mean tenants are being forced through replace/
    /// catch-up and the peer plane is undersized.
    pub peer_mem_revoked_delta: u64,
    /// Reactors the profiler's stall watchdog currently flags as silent
    /// (from the [`crate::profile::STALLED_GAUGE`] gauge; 0 when no
    /// profiler shares the registry). A stalled reactor stops publishing
    /// durable watermarks, so this leads the latency cliff the way the
    /// other saturation signals do.
    pub reactor_stalled: u64,
    /// Per-shard detail, ordered by shard index.
    pub shards: Vec<ShardSaturation>,
}

impl SaturationSnapshot {
    fn to_json(&self) -> String {
        let shards = self
            .shards
            .iter()
            .map(|s| {
                format!(
                    "{{\"shard\": {}, \"doorbell_p99_ns\": {}, \"window_count\": {}}}",
                    s.shard, s.doorbell_p99_ns, s.window_count
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"window_stall_delta\": {}, \"doorbell_p99_ns\": {}, \"shard_imbalance_milli\": {}, \"peer_mem_used_pct\": {}, \"peer_mem_revoked_delta\": {}, \"reactor_stalled\": {}, \"shards\": [{shards}]}}",
            self.window_stall_delta,
            self.doorbell_p99_ns,
            self.shard_imbalance_milli,
            self.peer_mem_used_pct,
            self.peer_mem_revoked_delta,
            self.reactor_stalled
        )
    }
}

/// Differencing state behind [`SaturationSnapshot`].
#[derive(Default)]
struct SaturationTracker {
    last_stall: u64,
    last_revoked: u64,
    /// Last cumulative snapshot per shard metric name.
    last_hists: std::collections::BTreeMap<String, Histogram>,
}

impl SaturationTracker {
    fn tick(&mut self, tel: &Telemetry, hists: &[(String, Histogram)]) -> SaturationSnapshot {
        let stall = tel.counter_value("ncl.window.stall");
        let window_stall_delta = stall.saturating_sub(self.last_stall);
        self.last_stall = stall;

        let revoked = tel.counter_value("peer.mem.revoked_regions");
        let peer_mem_revoked_delta = revoked.saturating_sub(self.last_revoked);
        self.last_revoked = revoked;
        let mem_total = tel.gauge_value("peer.mem.total_bytes").max(0) as u64;
        let mem_used = tel.gauge_value("peer.mem.used_bytes").max(0) as u64;
        let peer_mem_used_pct = if mem_total == 0 {
            0
        } else {
            (mem_used as u128 * 100 / mem_total as u128) as u64
        };

        let mut shards: Vec<ShardSaturation> = Vec::new();
        for (name, hist) in hists {
            let Some(shard) = shard_of(name, ".record.doorbell") else {
                continue;
            };
            let last = self.last_hists.entry(name.clone()).or_default();
            let window = hist.diff(last);
            *last = hist.clone();
            let count_name = name.replace(".record.doorbell", ".record.e2e");
            let window_count = hists
                .iter()
                .find(|(n, _)| *n == count_name)
                .map(|(n, h)| {
                    let last = self.last_hists.entry(n.clone()).or_default();
                    let w = h.diff(last);
                    *last = h.clone();
                    w.count()
                })
                .unwrap_or_else(|| window.count());
            shards.push(ShardSaturation {
                shard,
                doorbell_p99_ns: window.percentile(99.0).unwrap_or(0),
                window_count,
            });
        }
        shards.sort_by_key(|s| s.shard);

        let doorbell_p99_ns = shards.iter().map(|s| s.doorbell_p99_ns).max().unwrap_or(0);
        let counts: Vec<u64> = shards.iter().map(|s| s.window_count).collect();
        let total: u64 = counts.iter().sum();
        let shard_imbalance_milli = if counts.is_empty() || total == 0 {
            0
        } else {
            let mean = total as f64 / counts.len() as f64;
            let max = *counts.iter().max().unwrap() as f64;
            (1000.0 * max / mean).round() as u64
        };
        SaturationSnapshot {
            window_stall_delta,
            doorbell_p99_ns,
            shard_imbalance_milli,
            peer_mem_used_pct,
            peer_mem_revoked_delta,
            reactor_stalled: tel.gauge_value(crate::profile::STALLED_GAUGE).max(0) as u64,
            shards,
        }
    }
}

/// Parses a shard index out of `ncl.shard-<i><suffix>` metric names.
fn shard_of(name: &str, suffix: &str) -> Option<usize> {
    let rest = name.strip_prefix("ncl.shard-")?;
    let idx = rest.strip_suffix(suffix)?;
    idx.parse().ok()
}

/// One tick's full health evaluation.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Telemetry-clock timestamp of the tick (ns).
    pub t_ns: u64,
    /// Worst status across all objectives.
    pub status: SloStatus,
    /// Per-objective states.
    pub slos: Vec<SloState>,
    /// Saturation signals for the same window.
    pub saturation: SaturationSnapshot,
}

impl HealthReport {
    /// True when any objective is breached.
    pub fn breached(&self) -> bool {
        self.status == SloStatus::Breached
    }

    /// Renders the report as one JSON object (the `/health` body).
    pub fn to_json(&self) -> String {
        let slos = self
            .slos
            .iter()
            .map(SloState::to_json)
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"t_ns\": {}, \"status\": \"{}\", \"slos\": [{slos}], \"saturation\": {}}}",
            self.t_ns,
            self.status.as_str(),
            self.saturation.to_json()
        )
    }
}

type BreachHook = Arc<dyn Fn(&HealthReport) + Send + Sync>;

struct PlaneInner {
    trackers: Vec<SloTracker>,
    saturation: SaturationTracker,
    last_report: Option<HealthReport>,
    last_tick_ns: u64,
    min_tick_gap_ns: u64,
    on_breach: Option<BreachHook>,
    was_breached: bool,
}

/// The health plane: a set of objectives plus saturation signals over one
/// [`Telemetry`] handle. Cloning shares state; ticks are serialized.
#[derive(Clone)]
pub struct SloPlane {
    tel: Telemetry,
    inner: Arc<Mutex<PlaneInner>>,
}

impl SloPlane {
    /// An empty plane over `tel`.
    pub fn new(tel: Telemetry) -> Self {
        SloPlane {
            tel,
            inner: Arc::new(Mutex::new(PlaneInner {
                trackers: Vec::new(),
                saturation: SaturationTracker::default(),
                last_report: None,
                last_tick_ns: 0,
                min_tick_gap_ns: Duration::from_millis(25).as_nanos() as u64,
                on_breach: None,
                was_breached: false,
            })),
        }
    }

    /// A plane preloaded with loose objectives over the NCL write stages —
    /// wide enough that a healthy testbed never trips them, tight enough
    /// that a saturated one does.
    pub fn with_ncl_objectives(tel: Telemetry) -> Self {
        let plane = SloPlane::new(tel);
        plane.add(SloSpec::new("ncl-e2e", "ncl.record.e2e", 5_000_000, 0.05));
        plane.add(SloSpec::new(
            "ncl-doorbell",
            "ncl.record.doorbell",
            2_000_000,
            0.05,
        ));
        plane
    }

    /// Adds an objective. Takes effect on the next tick.
    pub fn add(&self, spec: SloSpec) {
        self.inner
            .lock()
            .expect("slo plane poisoned")
            .trackers
            .push(SloTracker::new(spec));
    }

    /// Registers a hook fired once per transition *into* breached (and again
    /// only after the plane has recovered). Used to dump the flight recorder.
    pub fn on_breach(&self, hook: impl Fn(&HealthReport) + Send + Sync + 'static) {
        self.inner.lock().expect("slo plane poisoned").on_breach = Some(Arc::new(hook));
    }

    /// Minimum telemetry-clock gap between [`SloPlane::maybe_tick`] ticks.
    pub fn set_min_tick_gap(&self, gap: Duration) {
        self.inner
            .lock()
            .expect("slo plane poisoned")
            .min_tick_gap_ns = gap.as_nanos() as u64;
    }

    /// Closes the current window on every objective and returns the report.
    pub fn tick(&self) -> HealthReport {
        let hists = self.tel.histograms_full();
        let (report, hook) = {
            let mut inner = self.inner.lock().expect("slo plane poisoned");
            let mut slos = Vec::with_capacity(inner.trackers.len());
            for tracker in &mut inner.trackers {
                let current = hists
                    .iter()
                    .find(|(n, _)| *n == tracker.spec().histogram)
                    .map(|(_, h)| h.clone())
                    .unwrap_or_default();
                slos.push(tracker.observe(&current));
            }
            let saturation = inner.saturation.tick(&self.tel, &hists);
            let status = slos
                .iter()
                .map(|s| s.status)
                .max()
                .unwrap_or(SloStatus::Healthy);
            let report = HealthReport {
                t_ns: self.tel.now_ns(),
                status,
                slos,
                saturation,
            };
            self.export_gauges(&report);
            let entered_breach = report.breached() && !inner.was_breached;
            inner.was_breached = report.breached();
            inner.last_tick_ns = report.t_ns;
            inner.last_report = Some(report.clone());
            let hook = if entered_breach {
                inner.on_breach.clone()
            } else {
                None
            };
            (report, hook)
        };
        // Fire outside the lock: the hook may itself read the plane.
        if let Some(hook) = hook {
            hook(&report);
        }
        report
    }

    /// Ticks if at least the configured gap has passed since the last tick,
    /// otherwise returns the cached report. This is what `/health` calls, so
    /// hammering the endpoint cannot shrink windows to nothing.
    pub fn maybe_tick(&self) -> HealthReport {
        let due = {
            let inner = self.inner.lock().expect("slo plane poisoned");
            inner.last_report.is_none()
                || self.tel.now_ns().saturating_sub(inner.last_tick_ns) >= inner.min_tick_gap_ns
        };
        if due {
            self.tick()
        } else {
            self.inner
                .lock()
                .expect("slo plane poisoned")
                .last_report
                .clone()
                .expect("cached report present")
        }
    }

    /// The most recent report, if any tick has run.
    pub fn last_report(&self) -> Option<HealthReport> {
        self.inner
            .lock()
            .expect("slo plane poisoned")
            .last_report
            .clone()
    }

    /// Mirrors a report into gauges so `/metrics` exports the health plane.
    fn export_gauges(&self, report: &HealthReport) {
        let milli = |x: f64| (x * 1000.0).round().clamp(0.0, i64::MAX as f64) as i64;
        self.tel.gauge("slo.status").set(report.status.code());
        for s in &report.slos {
            self.tel
                .gauge(&format!("slo.{}.fast_burn_milli", s.name))
                .set(milli(s.fast_burn));
            self.tel
                .gauge(&format!("slo.{}.slow_burn_milli", s.name))
                .set(milli(s.slow_burn));
            self.tel
                .gauge(&format!("slo.{}.status", s.name))
                .set(s.status.code());
        }
        let sat = &report.saturation;
        self.tel
            .gauge("slo.saturation.window_stall")
            .set(sat.window_stall_delta.min(i64::MAX as u64) as i64);
        self.tel
            .gauge("slo.saturation.doorbell_p99_ns")
            .set(sat.doorbell_p99_ns.min(i64::MAX as u64) as i64);
        self.tel
            .gauge("slo.saturation.shard_imbalance_milli")
            .set(sat.shard_imbalance_milli.min(i64::MAX as u64) as i64);
        self.tel
            .gauge("slo.saturation.peer_mem_used_pct")
            .set(sat.peer_mem_used_pct.min(i64::MAX as u64) as i64);
        self.tel
            .gauge("slo.saturation.peer_mem_revoked")
            .set(sat.peer_mem_revoked_delta.min(i64::MAX as u64) as i64);
        self.tel
            .gauge("slo.saturation.reactor_stalled")
            .set(sat.reactor_stalled.min(i64::MAX as u64) as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a cumulative histogram by recording `good` samples below and
    /// `bad` samples above the 50 ns threshold onto `base`. Values stay in
    /// the histogram's linear (exact) region so bucket granularity cannot
    /// blur the good/bad classification.
    fn advance(base: &mut Histogram, good: u64, bad: u64) -> Histogram {
        for _ in 0..good {
            base.record(10);
        }
        for _ in 0..bad {
            base.record(60);
        }
        base.clone()
    }

    fn spec() -> SloSpec {
        SloSpec::new("t", "h", 50, 0.1).windows(1, 3)
    }

    #[test]
    fn burn_rate_is_bad_fraction_over_budget() {
        let mut tracker = SloTracker::new(spec());
        let mut cum = Histogram::new();
        let state = tracker.observe(&advance(&mut cum, 80, 20));
        assert_eq!(state.window_total, 100);
        assert_eq!(state.window_bad, 20);
        // bad fraction 0.2 over budget 0.1 → burn 2.0, exactly.
        assert!((state.fast_burn - 2.0).abs() < 1e-9, "{}", state.fast_burn);
        assert_eq!(state.status, SloStatus::Breached);
    }

    #[test]
    fn samples_at_the_threshold_are_good() {
        let mut tracker = SloTracker::new(spec());
        let mut cum = Histogram::new();
        cum.record(50); // exactly at threshold
        cum.record(49);
        let state = tracker.observe(&cum);
        assert_eq!(state.window_bad, 0);
        assert_eq!(state.status, SloStatus::Healthy);
    }

    #[test]
    fn idle_windows_do_not_burn() {
        let mut tracker = SloTracker::new(spec());
        let state = tracker.observe(&Histogram::new());
        assert_eq!(state.window_total, 0);
        assert_eq!(state.fast_burn, 0.0);
        assert_eq!(state.status, SloStatus::Healthy);
    }

    /// The satellite's window-boundary case: a burst of bad samples must
    /// stop burning the fast window on the very next tick, and fall out of
    /// the slow window exactly when it ages past `slow_windows` ticks — no
    /// leakage in either direction.
    #[test]
    fn burn_windows_forget_at_exact_boundaries() {
        let mut tracker = SloTracker::new(spec()); // fast=1, slow=3
        let mut cum = Histogram::new();

        // Tick 1: all bad. One window of history, both spans burning.
        let s1 = tracker.observe(&advance(&mut cum, 0, 10));
        assert_eq!(s1.status, SloStatus::Breached);
        assert!((s1.fast_burn - 10.0).abs() < 1e-9); // 1.0 / 0.1

        // Ticks 2 and 3: all good. Fast window (1 tick) forgets instantly…
        let s2 = tracker.observe(&advance(&mut cum, 10, 0));
        assert_eq!(s2.status, SloStatus::Healthy);
        assert_eq!(s2.fast_burn, 0.0);
        // …while the slow window still remembers the burst: 10 bad of 20.
        assert!((s2.slow_burn - 5.0).abs() < 1e-9, "{}", s2.slow_burn);
        let s3 = tracker.observe(&advance(&mut cum, 10, 0));
        assert!((s3.slow_burn - (10.0 / 30.0) / 0.1).abs() < 1e-9);

        // Tick 4: the burst ages out of the 3-tick slow window entirely.
        let s4 = tracker.observe(&advance(&mut cum, 10, 0));
        assert_eq!(s4.slow_burn, 0.0);
        assert_eq!(s4.status, SloStatus::Healthy);
    }

    /// Warning = fast window burning but the slow window not yet: the onset
    /// tick of an overload after a long healthy run.
    #[test]
    fn onset_is_warning_until_sustained() {
        let spec = SloSpec::new("t", "h", 50, 0.1).windows(1, 4);
        let mut tracker = SloTracker::new(spec);
        let mut cum = Histogram::new();
        for _ in 0..3 {
            let s = tracker.observe(&advance(&mut cum, 100, 0));
            assert_eq!(s.status, SloStatus::Healthy);
        }
        // Fast burn = 1.0/0.1 = 10; slow burn = (10/310)/0.1 ≈ 0.32.
        let onset = tracker.observe(&advance(&mut cum, 0, 10));
        assert_eq!(onset.status, SloStatus::Warning);
        // Sustained overload flips the slow window too.
        let mut last = onset;
        for _ in 0..4 {
            last = tracker.observe(&advance(&mut cum, 0, 100));
        }
        assert_eq!(last.status, SloStatus::Breached);
    }

    #[test]
    fn plane_reports_worst_status_and_exports_gauges() {
        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        plane.add(SloSpec::new("fast-slo", "a", 50, 0.1).windows(1, 1));
        plane.add(SloSpec::new("ok-slo", "b", 50, 0.1).windows(1, 1));
        let a = tel.histogram("a");
        let b = tel.histogram("b");
        for _ in 0..10 {
            a.record(60);
            b.record(10);
        }
        let report = plane.tick();
        assert!(report.breached());
        assert_eq!(report.slos.len(), 2);
        let json = report.to_json();
        assert!(json.contains("\"status\": \"breached\""));
        assert!(json.contains("\"name\": \"fast-slo\""));
        let snap = tel.snapshot();
        let gauge = |n: &str| {
            snap.gauges
                .iter()
                .find(|(g, _)| g == n)
                .map(|(_, v)| *v)
                .unwrap_or(i64::MIN)
        };
        assert_eq!(gauge("slo.status"), 2);
        assert_eq!(gauge("slo.fast-slo.status"), 2);
        assert_eq!(gauge("slo.fast-slo.fast_burn_milli"), 10_000);
        assert_eq!(gauge("slo.ok-slo.status"), 0);
    }

    #[test]
    fn breach_hook_fires_once_per_transition() {
        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        plane.add(SloSpec::new("s", "h", 50, 0.1).windows(1, 1));
        let fired = Arc::new(std::sync::atomic::AtomicU64::new(0));
        let fired2 = Arc::clone(&fired);
        plane.on_breach(move |r| {
            assert!(r.breached());
            fired2.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        let h = tel.histogram("h");
        use std::sync::atomic::Ordering::SeqCst;
        h.record(60);
        plane.tick();
        assert_eq!(fired.load(SeqCst), 1);
        // Still breached: no re-fire.
        h.record(60);
        plane.tick();
        assert_eq!(fired.load(SeqCst), 1);
        // Recover, then breach again: fires once more.
        for _ in 0..100 {
            h.record(10);
        }
        plane.tick();
        assert_eq!(plane.last_report().unwrap().status, SloStatus::Healthy);
        h.record(60);
        for _ in 0..2 {
            h.record(60);
        }
        plane.tick();
        assert_eq!(fired.load(SeqCst), 2);
    }

    #[test]
    fn saturation_reads_stall_shards_and_imbalance() {
        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        tel.counter("ncl.window.stall").add(7);
        let d0 = tel.histogram("ncl.shard-0.record.doorbell");
        let d1 = tel.histogram("ncl.shard-1.record.doorbell");
        let e0 = tel.histogram("ncl.shard-0.record.e2e");
        let e1 = tel.histogram("ncl.shard-1.record.e2e");
        for _ in 0..300 {
            d0.record(1_000);
            e0.record(5_000);
        }
        for _ in 0..100 {
            d1.record(100_000);
            e1.record(5_000);
        }
        let report = plane.tick();
        let sat = &report.saturation;
        assert_eq!(sat.window_stall_delta, 7);
        assert_eq!(sat.shards.len(), 2);
        assert_eq!(sat.shards[0].shard, 0);
        assert_eq!(sat.shards[0].window_count, 300);
        // Worst doorbell p99 comes from the slow shard (~3% buckets).
        assert!(sat.doorbell_p99_ns >= 95_000, "{}", sat.doorbell_p99_ns);
        // Imbalance: counts [300, 100] → mean 200, max 300 → 1500.
        assert_eq!(sat.shard_imbalance_milli, 1500);
        // A second, idle tick: stall delta and imbalance return to zero.
        let report = plane.tick();
        assert_eq!(report.saturation.window_stall_delta, 0);
        assert_eq!(report.saturation.shard_imbalance_milli, 0);
    }

    #[test]
    fn saturation_reads_peer_memory_pressure() {
        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        tel.gauge("peer.mem.total_bytes").set(1000);
        tel.gauge("peer.mem.used_bytes").set(800);
        tel.counter("peer.mem.revoked_regions").add(3);
        let report = plane.tick();
        assert_eq!(report.saturation.peer_mem_used_pct, 80);
        assert_eq!(report.saturation.peer_mem_revoked_delta, 3);
        assert!(report.to_json().contains("\"peer_mem_used_pct\": 80"));
        // Second tick: the revocation delta resets, utilisation persists.
        let report = plane.tick();
        assert_eq!(report.saturation.peer_mem_revoked_delta, 0);
        assert_eq!(report.saturation.peer_mem_used_pct, 80);
    }

    #[test]
    fn saturation_reads_reactor_stalls() {
        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        tel.gauge(crate::profile::STALLED_GAUGE).set(2);
        let report = plane.tick();
        assert_eq!(report.saturation.reactor_stalled, 2);
        assert!(report.to_json().contains("\"reactor_stalled\": 2"));
        assert_eq!(tel.gauge_value("slo.saturation.reactor_stalled"), 2);
    }

    #[test]
    fn maybe_tick_is_rate_limited() {
        let tel = Telemetry::new();
        let plane = SloPlane::new(tel.clone());
        plane.set_min_tick_gap(Duration::from_secs(3600));
        plane.add(SloSpec::new("s", "h", 50, 0.1));
        let first = plane.maybe_tick();
        tel.histogram("h").record(60);
        // Within the gap: the cached report comes back, no new window.
        let second = plane.maybe_tick();
        assert_eq!(first.t_ns, second.t_ns);
        assert_eq!(second.status, SloStatus::Healthy);
        plane.set_min_tick_gap(Duration::from_nanos(0));
        let third = plane.maybe_tick();
        assert_ne!(third.status, SloStatus::Healthy);
    }
}
