//! The SplitFT file facade: POSIX-style files with `O_NCL` routing.
//!
//! SplitFT intercepts file-system operations and directs them either to the
//! underlying disaggregated file system or to NCL (§4.1 of the paper). The
//! classification is **per file and static**: the application tags a file
//! that will receive small, synchronous writes with the `O_NCL` open flag
//! (its write-ahead log, append-only file, ...), and everything else — bulk
//! checkpoint and compaction output — takes the usual DFS path.
//!
//! The same facade also implements the paper's two baselines so that all
//! three configurations run the exact same application code:
//!
//! * [`Mode::StrongDft`] — every `fsync` flushes to the DFS before
//!   returning (strong guarantees, milliseconds per flush);
//! * [`Mode::WeakDft`] — `fsync` is a no-op; dirty data is flushed by a
//!   background thread, so acknowledged writes are lost if the application
//!   crashes (the weak configuration the paper's Table 1 contrasts);
//! * [`Mode::SplitFt`] — `O_NCL` files go to near-compute logs (synchronous
//!   replication, microseconds), the rest to the DFS with real `fsync`s;
//! * [`Mode::Local`] — everything on a local file system (the unrealistic
//!   `ext4` reference of Figure 11b).

pub mod fallback;
pub mod hybrid;
pub mod spill;
pub mod testbed;

pub use hybrid::{HybridFile, HybridOptions};
pub use spill::DfsSpillSink;
pub use testbed::{Testbed, TestbedConfig};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfs::{DfsClient, DfsError, IoKind, IoTrace, LocalFs};
use fallback::NclRoute;
use ncl::{NclError, NclFile, NclLib};
use parking_lot::Mutex;
use telemetry::{events, spans, Counter, HistHandle, Telemetry};

/// How the facade maps file operations onto storage tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// DFT with synchronous flushes: strong guarantees, slow small writes.
    StrongDft,
    /// DFT with lazy flushes: fast but loses acknowledged data on a crash.
    WeakDft,
    /// The paper's contribution: `O_NCL` files on near-compute logs, bulk
    /// files on the DFS.
    SplitFt,
    /// Local file system baseline.
    Local,
}

/// Errors from the facade (a union of the tiers' error domains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path not found.
    NotFound(String),
    /// Path already exists.
    AlreadyExists(String),
    /// Storage tier failure.
    Unavailable(String),
    /// Operation not supported on this file class (e.g. rename of an ncl
    /// file).
    Unsupported(String),
    /// Capacity of an ncl region exceeded.
    CapacityExceeded(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::Unavailable(m) => write!(f, "unavailable: {m}"),
            FsError::Unsupported(m) => write!(f, "unsupported: {m}"),
            FsError::CapacityExceeded(m) => write!(f, "capacity exceeded: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DfsError> for FsError {
    fn from(e: DfsError) -> Self {
        match e {
            DfsError::NotFound(p) => FsError::NotFound(p),
            DfsError::AlreadyExists(p) => FsError::AlreadyExists(p),
            DfsError::Unavailable(m) => FsError::Unavailable(m),
            DfsError::Invalid(m) => FsError::Unavailable(m),
        }
    }
}

impl From<NclError> for FsError {
    fn from(e: NclError) -> Self {
        match e {
            NclError::NotFound(p) => FsError::NotFound(p),
            NclError::AlreadyExists(p) => FsError::AlreadyExists(p),
            NclError::CapacityExceeded { capacity, needed } => {
                FsError::CapacityExceeded(format!("need {needed}, capacity {capacity}"))
            }
            other => FsError::Unavailable(other.to_string()),
        }
    }
}

/// Options for [`SplitFs::open`], mirroring the POSIX flags the paper's
/// port touches: `O_CREAT` and the new `O_NCL`.
#[derive(Debug, Clone, Copy)]
pub struct OpenOptions {
    /// Create the file if it does not exist.
    pub create: bool,
    /// Tag the file as an ncl file (small synchronous writes). Ignored —
    /// exactly like an unknown `open` flag — outside [`Mode::SplitFt`].
    pub ncl: bool,
    /// Region capacity for ncl files (the application's configured log
    /// size). Ignored for non-ncl files.
    pub capacity: usize,
    /// Route writes through the pipelined NCL path: `write` posts the
    /// record without waiting ([`ncl::NclFile::record_nowait`]) and `fsync`
    /// is the durability barrier. For applications with their own group
    /// commit this overlaps replication of consecutive records. Ignored for
    /// non-ncl files.
    pub pipelined: bool,
}

impl OpenOptions {
    /// Plain open of an existing file.
    pub fn plain() -> Self {
        OpenOptions {
            create: false,
            ncl: false,
            capacity: 0,
            pipelined: false,
        }
    }

    /// `O_CREAT` for a bulk (non-ncl) file.
    pub fn create() -> Self {
        OpenOptions {
            create: true,
            ncl: false,
            capacity: 0,
            pipelined: false,
        }
    }

    /// `O_CREAT | O_NCL` with the given log capacity; every write is
    /// synchronously durable (the paper's baseline semantics).
    pub fn create_ncl(capacity: usize) -> Self {
        OpenOptions {
            create: true,
            ncl: true,
            capacity,
            pipelined: false,
        }
    }

    /// `O_CREAT | O_NCL` with pipelined writes: durability is deferred to
    /// the `fsync` barrier, letting consecutive records' replication
    /// overlap.
    pub fn create_ncl_pipelined(capacity: usize) -> Self {
        OpenOptions {
            create: true,
            ncl: true,
            capacity,
            pipelined: true,
        }
    }
}

struct FsInner {
    mode: Mode,
    dfs: Option<DfsClient>,
    local: Option<LocalFs>,
    ncl: Option<NclLib>,
    ncl_files: Mutex<HashMap<String, Arc<NclRoute>>>,
    trace: Mutex<Option<Arc<IoTrace>>>,
    flusher_stop: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Phase breakdown of the most recent NCL file recovery (Figure 11b).
    last_recovery: Mutex<Option<ncl::file::RecoveryStats>>,
    /// Shared telemetry handle (inherited from the NCL library when
    /// mounted in SplitFT mode; disabled otherwise).
    telemetry: Telemetry,
    /// Latency of bulk writes taking the DFS route.
    dfs_write: HistHandle,
    /// Latency of the `fsync` durability barrier, whichever tier serves it.
    fsync_barrier: HistHandle,
    /// Times a route degraded to the DFS shadow journal on quorum loss.
    fallback_engaged: Counter,
    /// Records accepted while degraded (each synchronously on the DFS).
    fallback_records: Counter,
    /// Times a degraded route replayed its journal and re-attached to NCL.
    fallback_reattach: Counter,
}

/// The mounted SplitFT facade (see module docs).
#[derive(Clone)]
pub struct SplitFs {
    inner: Arc<FsInner>,
}

impl SplitFs {
    fn new(
        mode: Mode,
        dfs: Option<DfsClient>,
        local: Option<LocalFs>,
        ncl: Option<NclLib>,
    ) -> Self {
        let telemetry = ncl
            .as_ref()
            .map(|n| n.telemetry().clone())
            .unwrap_or_else(Telemetry::disabled);
        SplitFs {
            inner: Arc::new(FsInner {
                mode,
                dfs,
                local,
                ncl,
                ncl_files: Mutex::new(HashMap::new()),
                trace: Mutex::new(None),
                flusher_stop: Arc::new(AtomicBool::new(false)),
                flusher: Mutex::new(None),
                last_recovery: Mutex::new(None),
                dfs_write: telemetry.histogram("splitfs.dfs.write"),
                fsync_barrier: telemetry.histogram("splitfs.fsync.barrier"),
                fallback_engaged: telemetry.counter("splitfs.fallback.engaged"),
                fallback_records: telemetry.counter("splitfs.fallback.records"),
                fallback_reattach: telemetry.counter("splitfs.fallback.reattach"),
                telemetry,
            }),
        }
    }

    /// Strong DFT: every fsync is a synchronous replicated flush.
    pub fn dft_strong(dfs: DfsClient) -> Self {
        SplitFs::new(Mode::StrongDft, Some(dfs), None, None)
    }

    /// Weak DFT: fsync is a no-op; a background thread flushes dirty data
    /// every `flush_interval` (1 s is a typical weak-configuration value).
    pub fn dft_weak(dfs: DfsClient, flush_interval: Duration) -> Self {
        let fs = SplitFs::new(Mode::WeakDft, Some(dfs), None, None);
        let stop = Arc::clone(&fs.inner.flusher_stop);
        let client = fs.inner.dfs.clone().expect("dfs present");
        let handle = std::thread::Builder::new()
            .name("weak-flusher".to_string())
            .spawn(move || {
                let tick = Duration::from_millis(20);
                let mut since_flush = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_flush += tick;
                    if since_flush >= flush_interval {
                        since_flush = Duration::ZERO;
                        let _ = client.flush_all();
                    }
                }
            })
            .expect("spawn flusher");
        *fs.inner.flusher.lock() = Some(handle);
        fs
    }

    /// SplitFT: `O_NCL` files on near-compute logs, the rest on the DFS.
    pub fn splitft(dfs: DfsClient, ncl: NclLib) -> Self {
        SplitFs::new(Mode::SplitFt, Some(dfs), None, Some(ncl))
    }

    /// Local file system baseline.
    pub fn local(local: LocalFs) -> Self {
        SplitFs::new(Mode::Local, None, Some(local), None)
    }

    /// The mounted mode.
    pub fn mode(&self) -> Mode {
        self.inner.mode
    }

    /// Attaches an IO trace that records NCL record sizes and DFS flush
    /// sizes (the Figure 1 measurement).
    pub fn set_trace(&self, trace: Arc<IoTrace>) {
        if let Some(dfs) = &self.inner.dfs {
            dfs.set_trace(Arc::clone(&trace));
        }
        *self.inner.trace.lock() = Some(trace);
    }

    /// Access to the NCL library (SplitFT mode only).
    pub fn ncl(&self) -> Option<&NclLib> {
        self.inner.ncl.as_ref()
    }

    /// The facade's telemetry handle — the same registry and event trace
    /// the NCL library records into (disabled outside SplitFT mode).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Access to the DFS client (all modes except Local).
    pub fn dfs(&self) -> Option<&DfsClient> {
        self.inner.dfs.as_ref()
    }

    /// Phase breakdown of the most recent NCL recovery triggered through
    /// this facade (used by the Figure 11b harness).
    pub fn last_ncl_recovery(&self) -> Option<ncl::file::RecoveryStats> {
        *self.inner.last_recovery.lock()
    }

    /// The underlying local store ([`Mode::Local`] only) — lets harnesses
    /// evict its page cache to model a reboot.
    pub fn local_store(&self) -> Option<LocalFs> {
        self.inner.local.clone()
    }

    fn is_ncl_route(&self, opts: &OpenOptions) -> bool {
        self.inner.mode == Mode::SplitFt && opts.ncl
    }

    /// Opens (optionally creating) a file.
    pub fn open(&self, path: &str, opts: OpenOptions) -> Result<File, FsError> {
        if self.is_ncl_route(&opts) {
            let ncl = self.inner.ncl.as_ref().expect("splitft mode has ncl");
            // Reuse an already-open handle (multiple writers of one WAL).
            if let Some(r) = self.inner.ncl_files.lock().get(path) {
                return Ok(File {
                    fs: self.clone(),
                    path: path.to_string(),
                    backend: Backend::Ncl(Arc::clone(r)),
                    pipelined: opts.pipelined,
                });
            }
            let exists = ncl.exists(path)?;
            let file = if exists {
                // An open of an existing ncl file during application
                // recovery triggers the recover call (§4.2).
                match ncl.recover(path) {
                    Ok(f) => {
                        *self.inner.last_recovery.lock() = Some(f.recovery_stats());
                        f
                    }
                    Err(NclError::QuorumUnavailable(m)) => {
                        // More than `f` peers died while the route was
                        // degraded; the shadow journal snapshotted at engage
                        // time holds everything issued. Rebuild the log on a
                        // fresh peer set at a bumped epoch instead of
                        // failing the open.
                        self.rebuild_from_shadow(path, opts.capacity)?
                            .ok_or(FsError::Unavailable(format!("quorum unavailable: {m}")))?
                    }
                    Err(e) => return Err(e.into()),
                }
            } else if opts.create {
                ncl.create(path, opts.capacity)?
            } else {
                return Err(FsError::NotFound(path.to_string()));
            };
            let route = NclRoute::new(file);
            if exists {
                // A crash while degraded left a shadow journal behind; bring
                // the recovered log up to date before serving the handle.
                self.replay_shadow(path, &route)?;
            }
            self.inner
                .ncl_files
                .lock()
                .insert(path.to_string(), Arc::clone(&route));
            return Ok(File {
                fs: self.clone(),
                path: path.to_string(),
                backend: Backend::Ncl(route),
                pipelined: opts.pipelined,
            });
        }
        match self.inner.mode {
            Mode::Local => {
                let local = self.inner.local.as_ref().expect("local mode");
                if !local.exists(path) {
                    if opts.create {
                        local.create(path)?;
                    } else {
                        return Err(FsError::NotFound(path.to_string()));
                    }
                }
                Ok(File {
                    fs: self.clone(),
                    path: path.to_string(),
                    backend: Backend::Local,
                    pipelined: false,
                })
            }
            _ => {
                let dfs = self.inner.dfs.as_ref().expect("dft modes have dfs");
                if !dfs.exists(path) {
                    if opts.create {
                        dfs.create(path)?;
                    } else {
                        return Err(FsError::NotFound(path.to_string()));
                    }
                } else {
                    dfs.open(path)?;
                }
                Ok(File {
                    fs: self.clone(),
                    path: path.to_string(),
                    backend: Backend::Dfs,
                    pipelined: false,
                })
            }
        }
    }

    /// True when the path exists on any tier.
    pub fn exists(&self, path: &str) -> bool {
        if let Some(ncl) = &self.inner.ncl {
            if ncl.exists(path).unwrap_or(false) {
                return true;
            }
        }
        if let Some(local) = &self.inner.local {
            return local.exists(path);
        }
        self.inner
            .dfs
            .as_ref()
            .map(|d| d.exists(path))
            .unwrap_or(false)
    }

    /// Removes a file. For ncl files this is the `release` path: the log
    /// peers' regions are freed (the application just checkpointed and is
    /// garbage-collecting its log).
    pub fn unlink(&self, path: &str) -> Result<(), FsError> {
        if let Some(ncl) = &self.inner.ncl {
            if ncl.exists(path)? {
                if let Some(open) = self.inner.ncl_files.lock().remove(path) {
                    open.file.release()?;
                } else {
                    ncl.delete(path)?;
                }
                // The log is gone; any shadow journal of it is stale.
                if let Some(dfs) = &self.inner.dfs {
                    let shadow = fallback::shadow_path(path);
                    if dfs.exists(&shadow) {
                        dfs.delete(&shadow)?;
                    }
                }
                return Ok(());
            }
        }
        if let Some(local) = &self.inner.local {
            return Ok(local.delete(path)?);
        }
        Ok(self.inner.dfs.as_ref().expect("dfs").delete(path)?)
    }

    /// Renames a bulk file. NCL files cannot be renamed (the applications
    /// ported in the paper never rename their logs — they delete or reuse
    /// them, Table 2).
    pub fn rename(&self, old: &str, new: &str) -> Result<(), FsError> {
        if let Some(ncl) = &self.inner.ncl {
            if ncl.exists(old)? {
                return Err(FsError::Unsupported("rename of an ncl file".to_string()));
            }
        }
        if let Some(local) = &self.inner.local {
            return Ok(local.rename(old, new)?);
        }
        Ok(self.inner.dfs.as_ref().expect("dfs").rename(old, new)?)
    }

    /// Lists files with the given prefix across tiers (sorted, deduped).
    pub fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        let mut out = Vec::new();
        if let Some(ncl) = &self.inner.ncl {
            out.extend(
                ncl.list_files()?
                    .into_iter()
                    .filter(|f| f.starts_with(prefix)),
            );
        }
        if let Some(local) = &self.inner.local {
            out.extend(local.list(prefix));
        } else if let Some(dfs) = &self.inner.dfs {
            out.extend(dfs.list(prefix)?);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Flushes all dirty DFS data now (weak mode exposes this so tests can
    /// force the background flush deterministically).
    pub fn flush_all(&self) -> Result<(), FsError> {
        if let Some(dfs) = &self.inner.dfs {
            dfs.flush_all()?;
        }
        Ok(())
    }

    fn trace_ncl_write(&self, path: &str, bytes: usize) {
        if let Some(t) = self.inner.trace.lock().as_ref() {
            t.record(path, IoKind::FlushWrite, bytes);
        }
    }

    /// Degrades a route to direct-DFS strong mode after a quorum loss: the
    /// NCL staged image (which already contains every issued record,
    /// acknowledged or not) is snapshotted into the shadow journal with a
    /// synchronous flush, and subsequent records append to the journal until
    /// [`SplitFs::probe_reattach`] succeeds. Idempotent under races: the
    /// first caller through the lock engages, the rest observe it.
    fn engage_fallback(
        &self,
        path: &str,
        route: &NclRoute,
        cause: &NclError,
    ) -> Result<(), FsError> {
        let mut fb = route.fb.lock();
        if fb.engaged {
            return Ok(());
        }
        let dfs = self.inner.dfs.as_ref().expect("splitft mode has dfs");
        let shadow = fallback::shadow_path(path);
        let image = route.file.contents();
        if dfs.exists(&shadow) {
            dfs.delete(&shadow)?;
        }
        dfs.create(&shadow)?;
        if !image.is_empty() {
            dfs.append(&shadow, &fallback::encode_frame(0, &image))?;
        }
        dfs.fsync(&shadow)?;
        fb.len = image.len() as u64;
        fb.image = image;
        fb.records.clear();
        fb.engaged = true;
        fb.last_probe = Instant::now();
        self.inner.fallback_engaged.inc();
        self.inner.telemetry.event(
            events::DFS_FALLBACK_ENGAGE,
            &self.ncl_scope(path),
            route.file.epoch(),
            format!("quorum unreachable ({cause}); new records go direct-dfs"),
        );
        Ok(())
    }

    /// Accepts one record while degraded: append a journal frame, `fsync`
    /// it (strong-mode semantics — the record is durable on the DFS before
    /// the call returns), and update the read overlay.
    fn degraded_write(
        &self,
        path: &str,
        route: &NclRoute,
        offset: u64,
        data: &[u8],
    ) -> Result<(), FsError> {
        let mut fb = route.fb.lock();
        if !fb.engaged {
            // Re-attached under our feet; the caller retries through NCL.
            return Err(FsError::Unavailable("fallback disengaged".to_string()));
        }
        let dfs = self.inner.dfs.as_ref().expect("splitft mode has dfs");
        let shadow = fallback::shadow_path(path);
        dfs.append(&shadow, &fallback::encode_frame(offset, data))?;
        dfs.fsync(&shadow)?;
        fb.apply(offset, data);
        self.inner.fallback_records.inc();
        Ok(())
    }

    /// While degraded, periodically retries NCL maintenance; once a fresh
    /// peer set is published (bumped epoch), replays the journal through the
    /// log, deletes it, and disengages. Returns `true` when the route is
    /// attached to NCL (i.e. not, or no longer, degraded).
    fn probe_reattach(&self, path: &str, route: &NclRoute) -> bool {
        let mut fb = route.fb.lock();
        if !fb.engaged {
            return true;
        }
        let interval = self
            .inner
            .ncl
            .as_ref()
            .map(|n| n.config().reattach_probe)
            .unwrap_or(Duration::from_millis(250));
        if fb.last_probe.elapsed() < interval {
            return false;
        }
        fb.last_probe = Instant::now();
        // Repair the peer set (replacement + catch-up of the pre-degradation
        // image happens inside `maintain`). Failure means the cluster still
        // cannot host a quorum: stay degraded.
        if route.file.maintain().is_err() || route.file.repair_pending() {
            return false;
        }
        // Replay the degraded records in issue order. A mid-replay failure
        // keeps the rest queued (and the journal intact) for the next probe;
        // replaying a record twice is harmless (same offset, same bytes).
        // The replay span marks these root writes as replay traffic so the
        // trace analyzer can exempt them from "no new acks while degraded".
        let tel = &self.inner.telemetry;
        let replay_trace = tel.next_trace_id();
        let replay_start = Instant::now();
        let close_replay = |epoch: u64| {
            tel.span(
                replay_trace,
                replay_trace,
                0,
                spans::FS_REATTACH_REPLAY,
                telemetry::intern_scope(&self.ncl_scope(path)),
                epoch,
                replay_start,
                Instant::now(),
            );
        };
        let mut replayed = 0;
        for (offset, data) in fb.records.iter() {
            if route.file.record(*offset, data).is_err() {
                fb.records.drain(..replayed);
                close_replay(route.file.epoch());
                return false;
            }
            replayed += 1;
        }
        close_replay(route.file.epoch());
        fb.records.clear();
        fb.image = Vec::new();
        fb.len = 0;
        fb.engaged = false;
        if let Some(dfs) = &self.inner.dfs {
            let shadow = fallback::shadow_path(path);
            if dfs.exists(&shadow) {
                let _ = dfs.delete(&shadow);
            }
        }
        self.inner.fallback_reattach.inc();
        self.inner.telemetry.event(
            events::NCL_REATTACH,
            &self.ncl_scope(path),
            route.file.epoch(),
            format!("replayed {replayed} fallback records; resuming NCL"),
        );
        true
    }

    /// Rebuilds an ncl file whose peer quorum is gone from its shadow
    /// journal: the engage-time snapshot (frame 0) plus every degraded
    /// record hold everything ever issued, so the log is recreated on a
    /// fresh peer set at a bumped epoch and replayed. Returns `Ok(None)`
    /// when no journal exists (a plain > `f` failure, outside both the NCL
    /// fault model and the fallback's protection).
    fn rebuild_from_shadow(
        &self,
        path: &str,
        capacity: usize,
    ) -> Result<Option<Arc<NclFile>>, FsError> {
        let Some(dfs) = &self.inner.dfs else {
            return Ok(None);
        };
        let shadow = fallback::shadow_path(path);
        if !dfs.exists(&shadow) {
            return Ok(None);
        }
        let size = dfs.size(&shadow)? as usize;
        let raw = dfs.read(&shadow, 0, size)?;
        let frames = fallback::decode_frames(&raw);
        let needed = frames
            .iter()
            .map(|(o, d)| *o as usize + d.len())
            .max()
            .unwrap_or(0);
        let ncl = self.inner.ncl.as_ref().expect("splitft mode has ncl");
        ncl.delete(path)?;
        let file = ncl.create(path, capacity.max(needed))?;
        let n = frames.len();
        let tel = &self.inner.telemetry;
        let replay_trace = tel.next_trace_id();
        let replay_start = Instant::now();
        for (offset, data) in frames {
            file.record(offset, &data)?;
        }
        tel.span(
            replay_trace,
            replay_trace,
            0,
            spans::FS_REATTACH_REPLAY,
            telemetry::intern_scope(&self.ncl_scope(path)),
            file.epoch(),
            replay_start,
            Instant::now(),
        );
        dfs.delete(&shadow)?;
        self.inner.fallback_reattach.inc();
        self.inner.telemetry.event(
            events::NCL_REATTACH,
            &self.ncl_scope(path),
            file.epoch(),
            format!("rebuilt from shadow journal ({n} records) after quorum-loss recovery"),
        );
        Ok(Some(file))
    }

    /// Replays a leftover shadow journal (a crash while degraded) into a
    /// freshly recovered log, then deletes it.
    fn replay_shadow(&self, path: &str, route: &NclRoute) -> Result<(), FsError> {
        let Some(dfs) = &self.inner.dfs else {
            return Ok(());
        };
        let shadow = fallback::shadow_path(path);
        if !dfs.exists(&shadow) {
            return Ok(());
        }
        let size = dfs.size(&shadow)? as usize;
        let raw = dfs.read(&shadow, 0, size)?;
        let frames = fallback::decode_frames(&raw);
        let n = frames.len();
        let tel = &self.inner.telemetry;
        let replay_trace = tel.next_trace_id();
        let replay_start = Instant::now();
        for (offset, data) in frames {
            route.file.record(offset, &data)?;
        }
        tel.span(
            replay_trace,
            replay_trace,
            0,
            spans::FS_REATTACH_REPLAY,
            telemetry::intern_scope(&self.ncl_scope(path)),
            route.file.epoch(),
            replay_start,
            Instant::now(),
        );
        dfs.delete(&shadow)?;
        self.inner.fallback_reattach.inc();
        self.inner.telemetry.event(
            events::NCL_REATTACH,
            &self.ncl_scope(path),
            route.file.epoch(),
            format!("replayed {n} shadow-journal records at open"),
        );
        Ok(())
    }

    /// Event scope of an ncl route, matching the NCL layer's `app/file`.
    fn ncl_scope(&self, path: &str) -> String {
        match &self.inner.ncl {
            Some(n) => format!("{}/{}", n.app_id(), path),
            None => path.to_string(),
        }
    }
}

impl Drop for FsInner {
    fn drop(&mut self) {
        self.flusher_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}

enum Backend {
    Dfs,
    Local,
    Ncl(Arc<NclRoute>),
}

/// An open file handle.
pub struct File {
    fs: SplitFs,
    path: String,
    backend: Backend,
    /// NCL files only: writes post without waiting and `fsync` is the
    /// durability barrier (see [`OpenOptions::pipelined`]).
    pipelined: bool,
}

impl File {
    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// True when this handle routes to a near-compute log.
    pub fn is_ncl(&self) -> bool {
        matches!(self.backend, Backend::Ncl(_))
    }

    /// True when writes through this handle defer durability to `fsync`.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined && self.is_ncl()
    }

    /// Writes `data` at `offset`.
    ///
    /// NCL files replicate here — synchronously (acknowledged when a
    /// majority of peers hold the write), or posted without waiting when
    /// the handle is pipelined; bulk files buffer until [`File::fsync`].
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        match &self.backend {
            Backend::Ncl(route) => {
                self.ncl_write(route, offset, data)?;
                self.fs.trace_ncl_write(&self.path, data.len());
                Ok(())
            }
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .write(&self.path, offset, data)?),
            Backend::Dfs => {
                let t0 = self.fs.inner.dfs_write.is_live().then(Instant::now);
                let dfs = self.fs.inner.dfs.as_ref().expect("dfs");
                dfs.write(&self.path, offset, data)?;
                if let Some(t0) = t0 {
                    self.fs.inner.dfs_write.record_since(t0);
                }
                Ok(())
            }
        }
    }

    /// Appends at the end of file, returning the write offset.
    pub fn append(&self, data: &[u8]) -> Result<u64, FsError> {
        match &self.backend {
            Backend::Ncl(route) => {
                let offset = {
                    let fb = route.fb.lock();
                    if fb.engaged {
                        fb.len
                    } else {
                        route.file.len()
                    }
                };
                self.ncl_write(route, offset, data)?;
                self.fs.trace_ncl_write(&self.path, data.len());
                Ok(offset)
            }
            Backend::Local => {
                let local = self.fs.inner.local.as_ref().expect("local");
                let offset = local.size(&self.path)?;
                local.write(&self.path, offset, data)?;
                Ok(offset)
            }
            Backend::Dfs => {
                let t0 = self.fs.inner.dfs_write.is_live().then(Instant::now);
                let dfs = self.fs.inner.dfs.as_ref().expect("dfs");
                let offset = dfs.append(&self.path, data)?;
                if let Some(t0) = t0 {
                    self.fs.inner.dfs_write.record_since(t0);
                }
                Ok(offset)
            }
        }
    }

    /// Flushes any staged (pipelined) NCL records to the NIC — one doorbell
    /// batch per peer — without waiting for durability. Lets a caller start
    /// a group's replication and overlap it with other work before the
    /// [`File::fsync`] barrier. A no-op for non-NCL backends and for
    /// synchronous NCL handles (nothing is ever staged there).
    pub fn submit(&self) {
        if let Backend::Ncl(route) = &self.backend {
            if !route.engaged() {
                route.file.submit();
            }
        }
    }

    /// Routes one NCL record, degrading to the DFS shadow journal on quorum
    /// loss and retrying re-attachment while degraded.
    fn ncl_write(&self, route: &Arc<NclRoute>, offset: u64, data: &[u8]) -> Result<(), FsError> {
        if route.engaged() && !self.fs.probe_reattach(&self.path, route) {
            return self.fs.degraded_write(&self.path, route, offset, data);
        }
        let result = if self.pipelined {
            route.file.record_nowait(offset, data).map(|_| ())
        } else {
            route.file.record(offset, data)
        };
        match result {
            Ok(()) => Ok(()),
            Err(cause @ NclError::QuorumUnavailable(_)) => {
                // The staged image snapshotted by `engage_fallback` already
                // holds this record's bytes; the explicit degraded write
                // keeps the journal frame (and ordering) uniform.
                self.fs.engage_fallback(&self.path, route, &cause)?;
                self.fs.degraded_write(&self.path, route, offset, data)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Durability barrier. Mode-dependent: strong flushes to the DFS, weak
    /// is a no-op, local flushes to "disk". For NCL files this waits until
    /// every issued record is durable — a no-op after synchronous writes,
    /// the real barrier for pipelined handles.
    pub fn fsync(&self) -> Result<(), FsError> {
        let t0 = self.fs.inner.fsync_barrier.is_live().then(Instant::now);
        let result = match &self.backend {
            Backend::Ncl(route) => {
                if route.engaged() {
                    // Degraded records were each synchronously flushed to
                    // the DFS; the barrier is already satisfied. Use it as a
                    // re-attachment opportunity.
                    self.fs.probe_reattach(&self.path, route);
                    Ok(())
                } else {
                    match route.file.fsync() {
                        Ok(()) => Ok(()),
                        Err(cause @ NclError::QuorumUnavailable(_)) => {
                            // Snapshotting the staged image journals every
                            // issued-but-unacknowledged record, so the
                            // barrier's contract is met on the DFS instead.
                            self.fs.engage_fallback(&self.path, route, &cause)?;
                            Ok(())
                        }
                        Err(e) => Err(e.into()),
                    }
                }
            }
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .fsync(&self.path)?),
            Backend::Dfs => match self.fs.inner.mode {
                Mode::WeakDft => Ok(()), // Lazy: background flusher owns it.
                _ => Ok(self.fs.inner.dfs.as_ref().expect("dfs").fsync(&self.path)?),
            },
        };
        if let (Some(t0), Ok(())) = (t0, &result) {
            self.fs.inner.fsync_barrier.record_since(t0);
        }
        result
    }

    /// Reads up to `len` bytes at `offset` (short at end of file).
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        match &self.backend {
            Backend::Ncl(route) => {
                let fb = route.fb.lock();
                if fb.engaged {
                    let start = (offset as usize).min(fb.len as usize);
                    let end = (offset as usize).saturating_add(len).min(fb.len as usize);
                    Ok(fb.image[start..end.max(start)].to_vec())
                } else {
                    Ok(route.file.read(offset, len))
                }
            }
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .read(&self.path, offset, len)?),
            Backend::Dfs => Ok(self
                .fs
                .inner
                .dfs
                .as_ref()
                .expect("dfs")
                .read(&self.path, offset, len)?),
        }
    }

    /// Current file size.
    pub fn size(&self) -> Result<u64, FsError> {
        match &self.backend {
            Backend::Ncl(route) => {
                let fb = route.fb.lock();
                if fb.engaged {
                    Ok(fb.len)
                } else {
                    Ok(route.file.len())
                }
            }
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .size(&self.path)?),
            Backend::Dfs => Ok(self.fs.inner.dfs.as_ref().expect("dfs").size(&self.path)?),
        }
    }

    /// The underlying NCL handle for ncl files (used by recovery-oriented
    /// benchmarks that need `read_remote`/stats access).
    pub fn ncl_handle(&self) -> Option<&Arc<NclFile>> {
        match &self.backend {
            Backend::Ncl(route) => Some(&route.file),
            _ => None,
        }
    }

    /// True while this handle is degraded to the DFS shadow journal
    /// (quorum loss; see the [`fallback`] module).
    pub fn is_degraded(&self) -> bool {
        match &self.backend {
            Backend::Ncl(route) => route.engaged(),
            _ => false,
        }
    }
}
