//! The SplitFT file facade: POSIX-style files with `O_NCL` routing.
//!
//! SplitFT intercepts file-system operations and directs them either to the
//! underlying disaggregated file system or to NCL (§4.1 of the paper). The
//! classification is **per file and static**: the application tags a file
//! that will receive small, synchronous writes with the `O_NCL` open flag
//! (its write-ahead log, append-only file, ...), and everything else — bulk
//! checkpoint and compaction output — takes the usual DFS path.
//!
//! The same facade also implements the paper's two baselines so that all
//! three configurations run the exact same application code:
//!
//! * [`Mode::StrongDft`] — every `fsync` flushes to the DFS before
//!   returning (strong guarantees, milliseconds per flush);
//! * [`Mode::WeakDft`] — `fsync` is a no-op; dirty data is flushed by a
//!   background thread, so acknowledged writes are lost if the application
//!   crashes (the weak configuration the paper's Table 1 contrasts);
//! * [`Mode::SplitFt`] — `O_NCL` files go to near-compute logs (synchronous
//!   replication, microseconds), the rest to the DFS with real `fsync`s;
//! * [`Mode::Local`] — everything on a local file system (the unrealistic
//!   `ext4` reference of Figure 11b).

pub mod hybrid;
pub mod testbed;

pub use hybrid::{HybridFile, HybridOptions};
pub use testbed::{Testbed, TestbedConfig};

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dfs::{DfsClient, DfsError, IoKind, IoTrace, LocalFs};
use ncl::{NclError, NclFile, NclLib};
use parking_lot::Mutex;
use telemetry::{HistHandle, Telemetry};

/// How the facade maps file operations onto storage tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// DFT with synchronous flushes: strong guarantees, slow small writes.
    StrongDft,
    /// DFT with lazy flushes: fast but loses acknowledged data on a crash.
    WeakDft,
    /// The paper's contribution: `O_NCL` files on near-compute logs, bulk
    /// files on the DFS.
    SplitFt,
    /// Local file system baseline.
    Local,
}

/// Errors from the facade (a union of the tiers' error domains).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path not found.
    NotFound(String),
    /// Path already exists.
    AlreadyExists(String),
    /// Storage tier failure.
    Unavailable(String),
    /// Operation not supported on this file class (e.g. rename of an ncl
    /// file).
    Unsupported(String),
    /// Capacity of an ncl region exceeded.
    CapacityExceeded(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            FsError::Unavailable(m) => write!(f, "unavailable: {m}"),
            FsError::Unsupported(m) => write!(f, "unsupported: {m}"),
            FsError::CapacityExceeded(m) => write!(f, "capacity exceeded: {m}"),
        }
    }
}

impl std::error::Error for FsError {}

impl From<DfsError> for FsError {
    fn from(e: DfsError) -> Self {
        match e {
            DfsError::NotFound(p) => FsError::NotFound(p),
            DfsError::AlreadyExists(p) => FsError::AlreadyExists(p),
            DfsError::Unavailable(m) => FsError::Unavailable(m),
            DfsError::Invalid(m) => FsError::Unavailable(m),
        }
    }
}

impl From<NclError> for FsError {
    fn from(e: NclError) -> Self {
        match e {
            NclError::NotFound(p) => FsError::NotFound(p),
            NclError::AlreadyExists(p) => FsError::AlreadyExists(p),
            NclError::CapacityExceeded { capacity, needed } => {
                FsError::CapacityExceeded(format!("need {needed}, capacity {capacity}"))
            }
            other => FsError::Unavailable(other.to_string()),
        }
    }
}

/// Options for [`SplitFs::open`], mirroring the POSIX flags the paper's
/// port touches: `O_CREAT` and the new `O_NCL`.
#[derive(Debug, Clone, Copy)]
pub struct OpenOptions {
    /// Create the file if it does not exist.
    pub create: bool,
    /// Tag the file as an ncl file (small synchronous writes). Ignored —
    /// exactly like an unknown `open` flag — outside [`Mode::SplitFt`].
    pub ncl: bool,
    /// Region capacity for ncl files (the application's configured log
    /// size). Ignored for non-ncl files.
    pub capacity: usize,
    /// Route writes through the pipelined NCL path: `write` posts the
    /// record without waiting ([`ncl::NclFile::record_nowait`]) and `fsync`
    /// is the durability barrier. For applications with their own group
    /// commit this overlaps replication of consecutive records. Ignored for
    /// non-ncl files.
    pub pipelined: bool,
}

impl OpenOptions {
    /// Plain open of an existing file.
    pub fn plain() -> Self {
        OpenOptions {
            create: false,
            ncl: false,
            capacity: 0,
            pipelined: false,
        }
    }

    /// `O_CREAT` for a bulk (non-ncl) file.
    pub fn create() -> Self {
        OpenOptions {
            create: true,
            ncl: false,
            capacity: 0,
            pipelined: false,
        }
    }

    /// `O_CREAT | O_NCL` with the given log capacity; every write is
    /// synchronously durable (the paper's baseline semantics).
    pub fn create_ncl(capacity: usize) -> Self {
        OpenOptions {
            create: true,
            ncl: true,
            capacity,
            pipelined: false,
        }
    }

    /// `O_CREAT | O_NCL` with pipelined writes: durability is deferred to
    /// the `fsync` barrier, letting consecutive records' replication
    /// overlap.
    pub fn create_ncl_pipelined(capacity: usize) -> Self {
        OpenOptions {
            create: true,
            ncl: true,
            capacity,
            pipelined: true,
        }
    }
}

struct FsInner {
    mode: Mode,
    dfs: Option<DfsClient>,
    local: Option<LocalFs>,
    ncl: Option<NclLib>,
    ncl_files: Mutex<HashMap<String, Arc<NclFile>>>,
    trace: Mutex<Option<Arc<IoTrace>>>,
    flusher_stop: Arc<AtomicBool>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Phase breakdown of the most recent NCL file recovery (Figure 11b).
    last_recovery: Mutex<Option<ncl::file::RecoveryStats>>,
    /// Shared telemetry handle (inherited from the NCL library when
    /// mounted in SplitFT mode; disabled otherwise).
    telemetry: Telemetry,
    /// Latency of bulk writes taking the DFS route.
    dfs_write: HistHandle,
    /// Latency of the `fsync` durability barrier, whichever tier serves it.
    fsync_barrier: HistHandle,
}

/// The mounted SplitFT facade (see module docs).
#[derive(Clone)]
pub struct SplitFs {
    inner: Arc<FsInner>,
}

impl SplitFs {
    fn new(
        mode: Mode,
        dfs: Option<DfsClient>,
        local: Option<LocalFs>,
        ncl: Option<NclLib>,
    ) -> Self {
        let telemetry = ncl
            .as_ref()
            .map(|n| n.telemetry().clone())
            .unwrap_or_else(Telemetry::disabled);
        SplitFs {
            inner: Arc::new(FsInner {
                mode,
                dfs,
                local,
                ncl,
                ncl_files: Mutex::new(HashMap::new()),
                trace: Mutex::new(None),
                flusher_stop: Arc::new(AtomicBool::new(false)),
                flusher: Mutex::new(None),
                last_recovery: Mutex::new(None),
                dfs_write: telemetry.histogram("splitfs.dfs.write"),
                fsync_barrier: telemetry.histogram("splitfs.fsync.barrier"),
                telemetry,
            }),
        }
    }

    /// Strong DFT: every fsync is a synchronous replicated flush.
    pub fn dft_strong(dfs: DfsClient) -> Self {
        SplitFs::new(Mode::StrongDft, Some(dfs), None, None)
    }

    /// Weak DFT: fsync is a no-op; a background thread flushes dirty data
    /// every `flush_interval` (1 s is a typical weak-configuration value).
    pub fn dft_weak(dfs: DfsClient, flush_interval: Duration) -> Self {
        let fs = SplitFs::new(Mode::WeakDft, Some(dfs), None, None);
        let stop = Arc::clone(&fs.inner.flusher_stop);
        let client = fs.inner.dfs.clone().expect("dfs present");
        let handle = std::thread::Builder::new()
            .name("weak-flusher".to_string())
            .spawn(move || {
                let tick = Duration::from_millis(20);
                let mut since_flush = Duration::ZERO;
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    since_flush += tick;
                    if since_flush >= flush_interval {
                        since_flush = Duration::ZERO;
                        let _ = client.flush_all();
                    }
                }
            })
            .expect("spawn flusher");
        *fs.inner.flusher.lock() = Some(handle);
        fs
    }

    /// SplitFT: `O_NCL` files on near-compute logs, the rest on the DFS.
    pub fn splitft(dfs: DfsClient, ncl: NclLib) -> Self {
        SplitFs::new(Mode::SplitFt, Some(dfs), None, Some(ncl))
    }

    /// Local file system baseline.
    pub fn local(local: LocalFs) -> Self {
        SplitFs::new(Mode::Local, None, Some(local), None)
    }

    /// The mounted mode.
    pub fn mode(&self) -> Mode {
        self.inner.mode
    }

    /// Attaches an IO trace that records NCL record sizes and DFS flush
    /// sizes (the Figure 1 measurement).
    pub fn set_trace(&self, trace: Arc<IoTrace>) {
        if let Some(dfs) = &self.inner.dfs {
            dfs.set_trace(Arc::clone(&trace));
        }
        *self.inner.trace.lock() = Some(trace);
    }

    /// Access to the NCL library (SplitFT mode only).
    pub fn ncl(&self) -> Option<&NclLib> {
        self.inner.ncl.as_ref()
    }

    /// The facade's telemetry handle — the same registry and event trace
    /// the NCL library records into (disabled outside SplitFT mode).
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Access to the DFS client (all modes except Local).
    pub fn dfs(&self) -> Option<&DfsClient> {
        self.inner.dfs.as_ref()
    }

    /// Phase breakdown of the most recent NCL recovery triggered through
    /// this facade (used by the Figure 11b harness).
    pub fn last_ncl_recovery(&self) -> Option<ncl::file::RecoveryStats> {
        *self.inner.last_recovery.lock()
    }

    /// The underlying local store ([`Mode::Local`] only) — lets harnesses
    /// evict its page cache to model a reboot.
    pub fn local_store(&self) -> Option<LocalFs> {
        self.inner.local.clone()
    }

    fn is_ncl_route(&self, opts: &OpenOptions) -> bool {
        self.inner.mode == Mode::SplitFt && opts.ncl
    }

    /// Opens (optionally creating) a file.
    pub fn open(&self, path: &str, opts: OpenOptions) -> Result<File, FsError> {
        if self.is_ncl_route(&opts) {
            let ncl = self.inner.ncl.as_ref().expect("splitft mode has ncl");
            // Reuse an already-open handle (multiple writers of one WAL).
            if let Some(f) = self.inner.ncl_files.lock().get(path) {
                return Ok(File {
                    fs: self.clone(),
                    path: path.to_string(),
                    backend: Backend::Ncl(Arc::clone(f)),
                    pipelined: opts.pipelined,
                });
            }
            let exists = ncl.exists(path)?;
            let file = if exists {
                // An open of an existing ncl file during application
                // recovery triggers the recover call (§4.2).
                let f = ncl.recover(path)?;
                *self.inner.last_recovery.lock() = Some(f.recovery_stats());
                f
            } else if opts.create {
                ncl.create(path, opts.capacity)?
            } else {
                return Err(FsError::NotFound(path.to_string()));
            };
            let file = Arc::new(file);
            self.inner
                .ncl_files
                .lock()
                .insert(path.to_string(), Arc::clone(&file));
            return Ok(File {
                fs: self.clone(),
                path: path.to_string(),
                backend: Backend::Ncl(file),
                pipelined: opts.pipelined,
            });
        }
        match self.inner.mode {
            Mode::Local => {
                let local = self.inner.local.as_ref().expect("local mode");
                if !local.exists(path) {
                    if opts.create {
                        local.create(path)?;
                    } else {
                        return Err(FsError::NotFound(path.to_string()));
                    }
                }
                Ok(File {
                    fs: self.clone(),
                    path: path.to_string(),
                    backend: Backend::Local,
                    pipelined: false,
                })
            }
            _ => {
                let dfs = self.inner.dfs.as_ref().expect("dft modes have dfs");
                if !dfs.exists(path) {
                    if opts.create {
                        dfs.create(path)?;
                    } else {
                        return Err(FsError::NotFound(path.to_string()));
                    }
                } else {
                    dfs.open(path)?;
                }
                Ok(File {
                    fs: self.clone(),
                    path: path.to_string(),
                    backend: Backend::Dfs,
                    pipelined: false,
                })
            }
        }
    }

    /// True when the path exists on any tier.
    pub fn exists(&self, path: &str) -> bool {
        if let Some(ncl) = &self.inner.ncl {
            if ncl.exists(path).unwrap_or(false) {
                return true;
            }
        }
        if let Some(local) = &self.inner.local {
            return local.exists(path);
        }
        self.inner
            .dfs
            .as_ref()
            .map(|d| d.exists(path))
            .unwrap_or(false)
    }

    /// Removes a file. For ncl files this is the `release` path: the log
    /// peers' regions are freed (the application just checkpointed and is
    /// garbage-collecting its log).
    pub fn unlink(&self, path: &str) -> Result<(), FsError> {
        if let Some(ncl) = &self.inner.ncl {
            if ncl.exists(path)? {
                if let Some(open) = self.inner.ncl_files.lock().remove(path) {
                    open.release()?;
                } else {
                    ncl.delete(path)?;
                }
                return Ok(());
            }
        }
        if let Some(local) = &self.inner.local {
            return Ok(local.delete(path)?);
        }
        Ok(self.inner.dfs.as_ref().expect("dfs").delete(path)?)
    }

    /// Renames a bulk file. NCL files cannot be renamed (the applications
    /// ported in the paper never rename their logs — they delete or reuse
    /// them, Table 2).
    pub fn rename(&self, old: &str, new: &str) -> Result<(), FsError> {
        if let Some(ncl) = &self.inner.ncl {
            if ncl.exists(old)? {
                return Err(FsError::Unsupported("rename of an ncl file".to_string()));
            }
        }
        if let Some(local) = &self.inner.local {
            return Ok(local.rename(old, new)?);
        }
        Ok(self.inner.dfs.as_ref().expect("dfs").rename(old, new)?)
    }

    /// Lists files with the given prefix across tiers (sorted, deduped).
    pub fn list(&self, prefix: &str) -> Result<Vec<String>, FsError> {
        let mut out = Vec::new();
        if let Some(ncl) = &self.inner.ncl {
            out.extend(
                ncl.list_files()?
                    .into_iter()
                    .filter(|f| f.starts_with(prefix)),
            );
        }
        if let Some(local) = &self.inner.local {
            out.extend(local.list(prefix));
        } else if let Some(dfs) = &self.inner.dfs {
            out.extend(dfs.list(prefix)?);
        }
        out.sort();
        out.dedup();
        Ok(out)
    }

    /// Flushes all dirty DFS data now (weak mode exposes this so tests can
    /// force the background flush deterministically).
    pub fn flush_all(&self) -> Result<(), FsError> {
        if let Some(dfs) = &self.inner.dfs {
            dfs.flush_all()?;
        }
        Ok(())
    }

    fn trace_ncl_write(&self, path: &str, bytes: usize) {
        if let Some(t) = self.inner.trace.lock().as_ref() {
            t.record(path, IoKind::FlushWrite, bytes);
        }
    }
}

impl Drop for FsInner {
    fn drop(&mut self) {
        self.flusher_stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.flusher.lock().take() {
            let _ = h.join();
        }
    }
}

enum Backend {
    Dfs,
    Local,
    Ncl(Arc<NclFile>),
}

/// An open file handle.
pub struct File {
    fs: SplitFs,
    path: String,
    backend: Backend,
    /// NCL files only: writes post without waiting and `fsync` is the
    /// durability barrier (see [`OpenOptions::pipelined`]).
    pipelined: bool,
}

impl File {
    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// True when this handle routes to a near-compute log.
    pub fn is_ncl(&self) -> bool {
        matches!(self.backend, Backend::Ncl(_))
    }

    /// True when writes through this handle defer durability to `fsync`.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined && self.is_ncl()
    }

    /// Writes `data` at `offset`.
    ///
    /// NCL files replicate here — synchronously (acknowledged when a
    /// majority of peers hold the write), or posted without waiting when
    /// the handle is pipelined; bulk files buffer until [`File::fsync`].
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        match &self.backend {
            Backend::Ncl(f) => {
                if self.pipelined {
                    f.record_nowait(offset, data)?;
                } else {
                    f.record(offset, data)?;
                }
                self.fs.trace_ncl_write(&self.path, data.len());
                Ok(())
            }
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .write(&self.path, offset, data)?),
            Backend::Dfs => {
                let t0 = self.fs.inner.dfs_write.is_live().then(Instant::now);
                let dfs = self.fs.inner.dfs.as_ref().expect("dfs");
                dfs.write(&self.path, offset, data)?;
                if let Some(t0) = t0 {
                    self.fs.inner.dfs_write.record_since(t0);
                }
                Ok(())
            }
        }
    }

    /// Appends at the end of file, returning the write offset.
    pub fn append(&self, data: &[u8]) -> Result<u64, FsError> {
        match &self.backend {
            Backend::Ncl(f) => {
                let offset = f.len();
                if self.pipelined {
                    f.record_nowait(offset, data)?;
                } else {
                    f.record(offset, data)?;
                }
                self.fs.trace_ncl_write(&self.path, data.len());
                Ok(offset)
            }
            Backend::Local => {
                let local = self.fs.inner.local.as_ref().expect("local");
                let offset = local.size(&self.path)?;
                local.write(&self.path, offset, data)?;
                Ok(offset)
            }
            Backend::Dfs => {
                let t0 = self.fs.inner.dfs_write.is_live().then(Instant::now);
                let dfs = self.fs.inner.dfs.as_ref().expect("dfs");
                let offset = dfs.append(&self.path, data)?;
                if let Some(t0) = t0 {
                    self.fs.inner.dfs_write.record_since(t0);
                }
                Ok(offset)
            }
        }
    }

    /// Flushes any staged (pipelined) NCL records to the NIC — one doorbell
    /// batch per peer — without waiting for durability. Lets a caller start
    /// a group's replication and overlap it with other work before the
    /// [`File::fsync`] barrier. A no-op for non-NCL backends and for
    /// synchronous NCL handles (nothing is ever staged there).
    pub fn submit(&self) {
        if let Backend::Ncl(f) = &self.backend {
            f.submit();
        }
    }

    /// Durability barrier. Mode-dependent: strong flushes to the DFS, weak
    /// is a no-op, local flushes to "disk". For NCL files this waits until
    /// every issued record is durable — a no-op after synchronous writes,
    /// the real barrier for pipelined handles.
    pub fn fsync(&self) -> Result<(), FsError> {
        let t0 = self.fs.inner.fsync_barrier.is_live().then(Instant::now);
        let result = match &self.backend {
            Backend::Ncl(f) => Ok(f.fsync()?),
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .fsync(&self.path)?),
            Backend::Dfs => match self.fs.inner.mode {
                Mode::WeakDft => Ok(()), // Lazy: background flusher owns it.
                _ => Ok(self.fs.inner.dfs.as_ref().expect("dfs").fsync(&self.path)?),
            },
        };
        if let (Some(t0), Ok(())) = (t0, &result) {
            self.fs.inner.fsync_barrier.record_since(t0);
        }
        result
    }

    /// Reads up to `len` bytes at `offset` (short at end of file).
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        match &self.backend {
            Backend::Ncl(f) => Ok(f.read(offset, len)),
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .read(&self.path, offset, len)?),
            Backend::Dfs => Ok(self
                .fs
                .inner
                .dfs
                .as_ref()
                .expect("dfs")
                .read(&self.path, offset, len)?),
        }
    }

    /// Current file size.
    pub fn size(&self) -> Result<u64, FsError> {
        match &self.backend {
            Backend::Ncl(f) => Ok(f.len()),
            Backend::Local => Ok(self
                .fs
                .inner
                .local
                .as_ref()
                .expect("local")
                .size(&self.path)?),
            Backend::Dfs => Ok(self.fs.inner.dfs.as_ref().expect("dfs").size(&self.path)?),
        }
    }

    /// The underlying NCL handle for ncl files (used by recovery-oriented
    /// benchmarks that need `read_remote`/stats access).
    pub fn ncl_handle(&self) -> Option<&Arc<NclFile>> {
        match &self.backend {
            Backend::Ncl(f) => Some(f),
            _ => None,
        }
    }
}
