//! Graceful degradation of `O_NCL` files to direct-DFS strong mode.
//!
//! When the durable quorum behind an NCL file is unreachable past the record
//! deadline, the facade must not fail the application's `write`/`fsync`: the
//! paper's availability argument is that SplitFT never does *worse* than the
//! strong-DFT baseline. So the route degrades: new records are appended to a
//! **shadow journal** on the DFS (`<path>.fallback`) with a synchronous
//! `fsync` per record — exactly strong-mode semantics — while an in-memory
//! overlay keeps reads and sizes coherent. A throttled probe retries NCL
//! maintenance; once a fresh peer set is published (bumped epoch), the
//! journal is replayed through the log, deleted, and the route re-attaches.
//! A crash while degraded replays the journal at the next `open` instead.
//!
//! The shadow journal is a sequence of self-delimiting frames:
//!
//! ```text
//! [offset: u64 LE][len: u32 LE][crc: u32 LE (FNV-1a of offset‖data)][data]
//! ```
//!
//! Parsing stops at the first truncated or corrupt frame, so a crash in the
//! middle of an append loses only that (never-acknowledged) record.

use std::sync::Arc;
use std::time::Instant;

use ncl::NclFile;
use parking_lot::Mutex;

/// Fixed bytes before each frame's data: offset + length + checksum.
const FRAME_HEADER: usize = 8 + 4 + 4;

/// One `O_NCL` file's route: the NCL handle plus the degradation state that
/// lets the facade fall back to direct-DFS strong mode on quorum loss.
pub(crate) struct NclRoute {
    pub(crate) file: Arc<NclFile>,
    pub(crate) fb: Mutex<Fallback>,
}

impl NclRoute {
    pub(crate) fn new(file: Arc<NclFile>) -> Arc<Self> {
        Arc::new(NclRoute {
            file,
            fb: Mutex::new(Fallback::new()),
        })
    }

    /// True while the route is degraded to the DFS shadow journal.
    pub(crate) fn engaged(&self) -> bool {
        self.fb.lock().engaged
    }
}

/// Degradation state of one route. All fields are meaningful only while
/// `engaged`.
pub(crate) struct Fallback {
    pub(crate) engaged: bool,
    /// Overlay image serving reads while degraded; starts as a snapshot of
    /// the NCL staged image (which includes every issued record).
    pub(crate) image: Vec<u8>,
    /// Logical file length of the overlay.
    pub(crate) len: u64,
    /// Records accepted while degraded, in issue order, pending replay
    /// through NCL on re-attach.
    pub(crate) records: Vec<(u64, Vec<u8>)>,
    /// When the controller was last probed for a fresh peer set.
    pub(crate) last_probe: Instant,
}

impl Fallback {
    pub(crate) fn new() -> Self {
        Fallback {
            engaged: false,
            image: Vec::new(),
            len: 0,
            records: Vec::new(),
            last_probe: Instant::now(),
        }
    }

    /// Applies a degraded record to the overlay and queues it for replay.
    pub(crate) fn apply(&mut self, offset: u64, data: &[u8]) {
        let end = offset as usize + data.len();
        if self.image.len() < end {
            self.image.resize(end, 0);
        }
        self.image[offset as usize..end].copy_from_slice(data);
        self.len = self.len.max(end as u64);
        self.records.push((offset, data.to_vec()));
    }
}

/// The DFS path of a route's shadow journal.
pub(crate) fn shadow_path(path: &str) -> String {
    format!("{path}.fallback")
}

/// Encodes one journal frame.
pub(crate) fn encode_frame(offset: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + data.len());
    out.extend_from_slice(&offset.to_le_bytes());
    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
    out.extend_from_slice(&frame_crc(offset, data).to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Decodes a journal back into `(offset, data)` records, stopping at the
/// first truncated or corrupt frame (the crash-interrupted tail).
pub(crate) fn decode_frames(raw: &[u8]) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    let mut at = 0usize;
    while raw.len() - at >= FRAME_HEADER {
        let offset = u64::from_le_bytes(raw[at..at + 8].try_into().expect("8 bytes"));
        let len = u32::from_le_bytes(raw[at + 8..at + 12].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(raw[at + 12..at + 16].try_into().expect("4 bytes"));
        let data_at = at + FRAME_HEADER;
        if raw.len() - data_at < len {
            break; // Truncated mid-append.
        }
        let data = &raw[data_at..data_at + len];
        if frame_crc(offset, data) != crc {
            break; // Torn or corrupt frame; nothing after it is trusted.
        }
        out.push((offset, data.to_vec()));
        at = data_at + len;
    }
    out
}

/// FNV-1a over the frame's offset and data — cheap, dependency-free torn
/// write detection (this guards against partial appends, not adversaries).
fn frame_crc(offset: u64, data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for b in offset.to_le_bytes().iter().chain(data) {
        h ^= u32::from(*b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut raw = encode_frame(0, b"hello");
        raw.extend_from_slice(&encode_frame(5, b" world"));
        let frames = decode_frames(&raw);
        assert_eq!(
            frames,
            vec![(0, b"hello".to_vec()), (5, b" world".to_vec())]
        );
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let mut raw = encode_frame(0, b"keep");
        let second = encode_frame(4, b"lost");
        raw.extend_from_slice(&second[..second.len() - 2]);
        assert_eq!(decode_frames(&raw), vec![(0, b"keep".to_vec())]);
    }

    #[test]
    fn corrupt_frame_stops_the_parse() {
        let mut raw = encode_frame(0, b"keep");
        let mut second = encode_frame(4, b"torn");
        let flip = second.len() - 1;
        second[flip] ^= 0xff;
        raw.extend_from_slice(&second);
        raw.extend_from_slice(&encode_frame(8, b"after"));
        assert_eq!(decode_frames(&raw), vec![(0, b"keep".to_vec())]);
    }

    #[test]
    fn overlay_apply_extends_and_overwrites() {
        let mut fb = Fallback::new();
        fb.apply(0, b"aaaa");
        fb.apply(2, b"bbbb");
        assert_eq!(fb.len, 6);
        assert_eq!(&fb.image, b"aabbbb");
        assert_eq!(fb.records.len(), 2);
    }
}
