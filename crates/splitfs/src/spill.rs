//! DFS-backed spill sink for erasure-coded NCL files.
//!
//! The EC durability path demotes cold acked log prefixes out of peer
//! memory before recycling a fragment generation (see `ncl::ec`). The
//! snapshot must survive an application crash, so the production tier is
//! the DFS itself: one file per `(scope, generation)` under
//! `ncl-spill/<scope>/<gen>`, written and fsynced before the engine is
//! told the demotion is durable. Recovery loads the snapshot for the
//! maximum responder generation and replays fragments on top of it.
//!
//! Wire format (little-endian): `[spill_seq u64 | len u64 | capacity u64 |
//! overwritten u8 | data[..len]]`. A re-stored snapshot for the same key
//! may shrink the payload; the `len` field bounds the read, so stale tail
//! bytes from a longer predecessor are harmless.

use dfs::DfsClient;
use ncl::{SpillSink, SpillSnapshot};

/// Fixed-size snapshot header preceding the data image.
const SPILL_HEADER: usize = 25;

/// [`SpillSink`] over a [`DfsClient`]: the spill tier of a SplitFT
/// deployment. [`crate::Testbed::start`] wires one up automatically for
/// erasure-coded configurations that did not bring their own sink.
pub struct DfsSpillSink {
    client: DfsClient,
}

impl std::fmt::Debug for DfsSpillSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DfsSpillSink")
            .field("node", &self.client.node())
            .finish()
    }
}

impl DfsSpillSink {
    /// Wraps a DFS client (typically one on a dedicated service node).
    pub fn new(client: DfsClient) -> Self {
        DfsSpillSink { client }
    }

    fn path(scope: &str, gen: u64) -> String {
        format!("ncl-spill/{scope}/{gen}")
    }
}

impl SpillSink for DfsSpillSink {
    fn store(&self, scope: &str, gen: u64, snap: &SpillSnapshot) -> Result<(), String> {
        let path = Self::path(scope, gen);
        if !self.client.exists(&path) {
            self.client
                .create(&path)
                .map_err(|e| format!("spill create {path}: {e}"))?;
        }
        let mut buf = Vec::with_capacity(SPILL_HEADER + snap.data.len());
        buf.extend_from_slice(&snap.spill_seq.to_le_bytes());
        buf.extend_from_slice(&snap.len.to_le_bytes());
        buf.extend_from_slice(&snap.capacity.to_le_bytes());
        buf.push(snap.overwritten as u8);
        buf.extend_from_slice(&snap.data[..snap.len as usize]);
        self.client
            .write(&path, 0, &buf)
            .map_err(|e| format!("spill write {path}: {e}"))?;
        // The engine flips the fragment generation once `store` returns;
        // the snapshot must be durable, not merely cached, by then.
        self.client
            .fsync(&path)
            .map_err(|e| format!("spill fsync {path}: {e}"))
    }

    fn load(&self, scope: &str, gen: u64) -> Result<Option<SpillSnapshot>, String> {
        let path = Self::path(scope, gen);
        if !self.client.exists(&path) {
            return Ok(None);
        }
        let size = self
            .client
            .size(&path)
            .map_err(|e| format!("spill size {path}: {e}"))? as usize;
        if size < SPILL_HEADER {
            return Err(format!("spill snapshot {path} truncated ({size} bytes)"));
        }
        let buf = self
            .client
            .read_direct(&path, 0, size)
            .map_err(|e| format!("spill read {path}: {e}"))?;
        let spill_seq = u64::from_le_bytes(buf[0..8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
        let capacity = u64::from_le_bytes(buf[16..24].try_into().expect("8 bytes"));
        let overwritten = buf[24] != 0;
        if buf.len() < SPILL_HEADER + len as usize {
            return Err(format!(
                "spill snapshot {path} short: header says {len} data bytes, file holds {}",
                buf.len() - SPILL_HEADER
            ));
        }
        let mut data = buf;
        data.drain(..SPILL_HEADER);
        data.truncate(len as usize);
        Ok(Some(SpillSnapshot {
            spill_seq,
            len,
            overwritten,
            capacity,
            data,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfs::{DfsCluster, DfsConfig};
    use sim::Cluster;

    #[test]
    fn snapshots_round_trip_through_the_dfs() {
        let cluster = Cluster::new();
        let dfs = DfsCluster::start(&cluster, DfsConfig::zero());
        let node = cluster.add_node("spill-test");
        let sink = DfsSpillSink::new(dfs.client(node));
        assert_eq!(sink.load("app/wal", 1).unwrap(), None);
        let snap = SpillSnapshot {
            spill_seq: 42,
            len: 5,
            overwritten: true,
            capacity: 4096,
            data: b"hello".to_vec(),
        };
        sink.store("app/wal", 1, &snap).unwrap();
        assert_eq!(sink.load("app/wal", 1).unwrap(), Some(snap.clone()));
        // Re-store with a shorter image: the header bounds the read.
        let smaller = SpillSnapshot {
            spill_seq: 43,
            len: 2,
            overwritten: false,
            capacity: 4096,
            data: b"hi".to_vec(),
        };
        sink.store("app/wal", 1, &smaller).unwrap();
        assert_eq!(sink.load("app/wal", 1).unwrap(), Some(smaller));
        // Other generations and scopes are independent keys.
        assert_eq!(sink.load("app/wal", 2).unwrap(), None);
        assert_eq!(sink.load("other/wal", 1).unwrap(), None);
    }
}
