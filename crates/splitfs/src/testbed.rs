//! A full simulated deployment in one value — the "CloudLab cluster" of the
//! paper's evaluation (§5): a DFS cluster, the NCL controller, a pool of log
//! peers, and as many application servers as you mount.
//!
//! Used by integration tests, the YCSB harness, the benchmark binaries and
//! the examples; exposed here (rather than in a test-only crate) because a
//! downstream user wanting to try SplitFT needs exactly this wiring.

use std::sync::Arc;
use std::time::Duration;

use dfs::{DfsCluster, DfsConfig, LocalFs};
use ncl::{Controller, NclConfig, NclLib, NclRegistry, NclRuntime, Peer};
use sim::{Cluster, NodeId};
use telemetry::export::http::ScrapeServer;
use telemetry::{FlightRecorder, OnlineMonitor, SloPlane};

use crate::{Mode, SplitFs};

/// Parameters for [`Testbed::start`].
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// DFS latency/striping configuration.
    pub dfs: DfsConfig,
    /// NCL latency/failure-budget configuration.
    pub ncl: NclConfig,
    /// Number of log peers to start.
    pub peers: usize,
    /// Memory each peer lends, in bytes. Overridden by the
    /// `SPLITFT_PEER_MEM` environment variable (bytes) at
    /// [`Testbed::start`].
    pub peer_mem: u64,
    /// When set, every peer runs its periodic GC/pressure thread at this
    /// interval (epoch leak GC, lease expiry, pressure-signal draining).
    /// `None` leaves GC caller-driven via [`ncl::Peer::gc_sweep`].
    /// Overridden by the `SPLITFT_PEER_GC_MS` environment variable
    /// (milliseconds; `0` disables) at [`Testbed::start`].
    pub peer_gc_interval: Option<Duration>,
    /// Weak-mode background flush interval.
    pub weak_flush_interval: Duration,
    /// When set, serve the shared telemetry handle over HTTP at this
    /// address (`/metrics` Prometheus text, `/snapshot` JSON, `/trace`
    /// Chrome trace). Use `"127.0.0.1:0"` to let the OS pick a port.
    pub scrape_addr: Option<String>,
    /// Reactor shards for the thread-per-core NCL runtime. `0` (the
    /// default) keeps the classic waiter-driven completion path; any
    /// positive count starts an [`ncl::NclRuntime`] and hosts every NCL
    /// file opened through this testbed on one of its shards. Overridden
    /// by the `NCL_SHARDS` environment variable at [`Testbed::start`].
    pub shards: usize,
    /// When true, attach a streaming [`telemetry::OnlineMonitor`] to the
    /// shared telemetry handle: the analyzer's invariants are verified live
    /// against the span/event stream, violations increment
    /// `invariant.violations.total`, flip the scrape endpoint's `/health`
    /// to 503, and (when `FLIGHT_DUMP_DIR` is set) dump the flight
    /// recorder. Overridden by the `SPLITFT_ONLINE_MONITOR` environment
    /// variable (`1`/`true` enables, `0`/`false` disables) at
    /// [`Testbed::start`].
    pub online_monitor: bool,
}

impl TestbedConfig {
    /// Zero latencies everywhere: functional testing at memory speed.
    pub fn zero(peers: usize) -> Self {
        TestbedConfig {
            dfs: DfsConfig::zero(),
            ncl: NclConfig::zero(),
            peers,
            peer_mem: 256 << 20,
            peer_gc_interval: None,
            weak_flush_interval: Duration::from_millis(100),
            scrape_addr: None,
            shards: 0,
            online_monitor: false,
        }
    }

    /// Calibrated latencies reproducing the paper's testbed shape.
    pub fn calibrated(peers: usize) -> Self {
        TestbedConfig {
            dfs: DfsConfig::calibrated(),
            ncl: NclConfig::calibrated(),
            peers,
            peer_mem: 1 << 30,
            peer_gc_interval: Some(Duration::from_millis(100)),
            weak_flush_interval: Duration::from_secs(1),
            scrape_addr: None,
            shards: 0,
            online_monitor: false,
        }
    }
}

/// The assembled simulated datacenter.
pub struct Testbed {
    /// Node registry and failure injection.
    pub cluster: Cluster,
    /// The disaggregated file system.
    pub dfs: DfsCluster,
    /// The NCL controller.
    pub controller: Controller,
    /// Peer name resolution.
    pub registry: Arc<NclRegistry>,
    /// The running log peers.
    pub peers: Vec<Peer>,
    config: TestbedConfig,
    /// The operator scrape endpoint, when [`TestbedConfig::scrape_addr`]
    /// asked for one; stops on drop.
    scrape: Option<ScrapeServer>,
    /// SLO/health plane over the shared telemetry handle. Pre-loaded with
    /// the NCL objectives and served on the scrape endpoint's `/health`.
    slo: SloPlane,
    /// Black-box flight recorder over the same handle; dumps on SLO breach
    /// (and panic) when `FLIGHT_DUMP_DIR` is set.
    flight: FlightRecorder,
    /// Streaming invariant monitor, when [`TestbedConfig::online_monitor`]
    /// (or `SPLITFT_ONLINE_MONITOR=1`) asked for one.
    monitor: Option<OnlineMonitor>,
}

impl Testbed {
    /// Starts every service described by `config`.
    ///
    /// The `NCL_SHARDS` environment variable, when set to a positive
    /// integer, overrides [`TestbedConfig::shards`] — handy for running an
    /// existing test or bench binary against the sharded runtime without
    /// recompiling.
    pub fn start(mut config: TestbedConfig) -> Self {
        if let Ok(v) = std::env::var("NCL_SHARDS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                config.shards = n;
            }
        }
        if let Ok(v) = std::env::var("SPLITFT_PEER_MEM") {
            if let Ok(bytes) = v.trim().parse::<u64>() {
                config.peer_mem = bytes;
            }
        }
        if let Ok(v) = std::env::var("SPLITFT_PEER_GC_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                config.peer_gc_interval = (ms > 0).then(|| Duration::from_millis(ms));
            }
        }
        if let Ok(v) = std::env::var("SPLITFT_ONLINE_MONITOR") {
            match v.trim() {
                "1" | "true" | "on" => config.online_monitor = true,
                "0" | "false" | "off" => config.online_monitor = false,
                _ => {}
            }
        }
        // Attach the monitor before any service starts so the very first
        // span/event is already streamed through it.
        let monitor = config
            .online_monitor
            .then(|| OnlineMonitor::attach(&config.ncl.telemetry, config.ncl.quorum()));
        if config.shards > 0 && config.ncl.runtime.is_none() {
            config.ncl.runtime = Some(NclRuntime::start_with_telemetry(
                config.shards,
                config.ncl.telemetry.clone(),
            ));
        }
        let cluster = Cluster::new();
        let dfs = DfsCluster::start(&cluster, config.dfs.clone());
        // Erasure-coded durability needs a spill tier; unless the caller
        // brought a sink, demote cold acked prefixes to the DFS itself.
        if config.ncl.durability.is_ec() && config.ncl.spill.is_none() {
            let node = cluster.add_node("ncl-spill-sink");
            config.ncl.spill = Some(Arc::new(crate::DfsSpillSink::new(dfs.client(node))));
        }
        // Control-plane services share the application's telemetry handle so
        // ap-map updates and peer membership land in one event trace.
        let controller = Controller::start_with_telemetry(&cluster, config.ncl.telemetry.clone());
        let registry = NclRegistry::with_telemetry(config.ncl.telemetry.clone());
        let mut peers: Vec<Peer> = (0..config.peers)
            .map(|i| {
                Peer::start(
                    &cluster,
                    &format!("peer-{i}"),
                    config.peer_mem,
                    &config.ncl,
                    &controller,
                    &registry,
                )
            })
            .collect();
        if let Some(interval) = config.peer_gc_interval {
            for peer in &mut peers {
                peer.spawn_gc(interval);
            }
        }
        let slo = SloPlane::with_ncl_objectives(config.ncl.telemetry.clone());
        let flight =
            FlightRecorder::with_limits(config.ncl.telemetry.clone(), 32, 64, config.ncl.quorum());
        // `FLIGHT_DUMP_DIR` arms the black box: on the first transition into
        // Breached (and on panic) the last N spans/events/counter deltas are
        // preserved as an analyzer-readable JSONL dump.
        if let Ok(dir) = std::env::var("FLIGHT_DUMP_DIR") {
            let recorder = flight.clone();
            let dump_dir = std::path::PathBuf::from(&dir);
            slo.on_breach(move |report| {
                recorder.tick();
                let _ = recorder.dump_into(
                    &dump_dir,
                    "slo-breach",
                    &format!("slo-breach status={}", report.status.as_str()),
                );
            });
            // An invariant violation is a stronger signal than an SLO
            // breach: preserve the offending window the moment the monitor
            // flags it, tagged so operators can tell the dumps apart.
            if let Some(monitor) = &monitor {
                let recorder = flight.clone();
                let dump_dir = std::path::PathBuf::from(&dir);
                monitor.on_violation(move |v| {
                    recorder.tick();
                    let _ = recorder.dump_into(
                        &dump_dir,
                        "invariant",
                        &format!("invariant-violation [{}] {}", v.invariant, v.message),
                    );
                });
            }
            flight.install_panic_hook(dir);
        }
        let profiler = config.ncl.runtime.as_ref().map(|rt| rt.profiler().clone());
        let scrape = config.scrape_addr.as_deref().map(|addr| {
            ScrapeServer::start_with_observability(
                config.ncl.telemetry.clone(),
                addr,
                Some(slo.clone()),
                profiler,
            )
            .expect("scrape endpoint binds")
        });
        Testbed {
            cluster,
            dfs,
            controller,
            registry,
            peers,
            config,
            scrape,
            slo,
            flight,
            monitor,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &TestbedConfig {
        &self.config
    }

    /// Bound address of the scrape endpoint, when one was requested.
    pub fn scrape_addr(&self) -> Option<std::net::SocketAddr> {
        self.scrape.as_ref().map(|s| s.addr())
    }

    /// The SLO/health plane (served on the scrape endpoint's `/health`).
    /// Add workload-specific objectives with [`SloPlane::add`].
    pub fn slo_plane(&self) -> &SloPlane {
        &self.slo
    }

    /// The black-box flight recorder over the testbed's telemetry handle.
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The streaming invariant monitor, when one was requested via
    /// [`TestbedConfig::online_monitor`] or `SPLITFT_ONLINE_MONITOR=1`.
    pub fn online_monitor(&self) -> Option<&OnlineMonitor> {
        self.monitor.as_ref()
    }

    /// Registers a fresh application-server node.
    pub fn add_app_node(&self, name: &str) -> NodeId {
        self.cluster.add_node(name)
    }

    /// Mounts a facade for application `app_id` in `mode` on a fresh node,
    /// returning the facade and the node (for failure injection).
    ///
    /// # Panics
    ///
    /// Panics if `mode` is [`Mode::SplitFt`] and another live instance of
    /// `app_id` holds the NCL instance lock.
    pub fn mount(&self, mode: Mode, app_id: &str) -> (SplitFs, NodeId) {
        let node = self.add_app_node(&format!("app-{app_id}"));
        let fs = match mode {
            Mode::StrongDft => SplitFs::dft_strong(self.dfs.client(node)),
            Mode::WeakDft => {
                SplitFs::dft_weak(self.dfs.client(node), self.config.weak_flush_interval)
            }
            Mode::SplitFt => {
                let ncl = NclLib::new(
                    &self.cluster,
                    node,
                    app_id,
                    self.config.ncl.clone(),
                    &self.controller,
                    &self.registry,
                )
                .expect("NCL instance lock available");
                SplitFs::splitft(self.dfs.client(node), ncl)
            }
            Mode::Local => SplitFs::local(LocalFs::new()),
        };
        (fs, node)
    }

    /// Finds a peer by its published name.
    pub fn peer_named(&self, name: &str) -> Option<&Peer> {
        self.peers.iter().find(|p| p.name() == name)
    }

    /// Adds one more peer to the pool at runtime.
    pub fn add_peer(&mut self, name: &str) -> &Peer {
        let mut peer = Peer::start(
            &self.cluster,
            name,
            self.config.peer_mem,
            &self.config.ncl,
            &self.controller,
            &self.registry,
        );
        if let Some(interval) = self.config.peer_gc_interval {
            peer.spawn_gc(interval);
        }
        self.peers.push(peer);
        self.peers.last().expect("just pushed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OpenOptions;

    #[test]
    fn testbed_mounts_all_modes() {
        let tb = Testbed::start(TestbedConfig::zero(3));
        for mode in [Mode::StrongDft, Mode::WeakDft, Mode::SplitFt, Mode::Local] {
            let (fs, _node) = tb.mount(mode, &format!("app-{mode:?}"));
            let f = fs.open("probe", OpenOptions::create()).unwrap();
            f.write_at(0, b"ok").unwrap();
            f.fsync().unwrap();
            assert_eq!(f.read(0, 2).unwrap(), b"ok");
        }
    }

    #[test]
    fn sharded_testbed_hosts_ncl_files() {
        let mut cfg = TestbedConfig::zero(3);
        cfg.shards = 2;
        let tb = Testbed::start(cfg);
        assert!(tb.config().ncl.runtime.is_some());
        let (fs, _node) = tb.mount(Mode::SplitFt, "app-sharded");
        let f = fs.open("probe", OpenOptions::create()).unwrap();
        f.write_at(0, b"sharded").unwrap();
        f.fsync().unwrap();
        assert_eq!(f.read(0, 7).unwrap(), b"sharded");
    }

    #[test]
    fn ec_testbed_wires_a_dfs_spill_sink() {
        let mut cfg = TestbedConfig::zero(4);
        cfg.ncl.durability = ncl::Durability::Ec { k: 2, n: 3 };
        let tb = Testbed::start(cfg);
        assert!(tb.config().ncl.spill.is_some(), "spill sink auto-wired");
        let (fs, _node) = tb.mount(Mode::SplitFt, "app-ec");
        let f = fs.open("probe", OpenOptions::create()).unwrap();
        f.write_at(0, b"ec-ok").unwrap();
        f.fsync().unwrap();
        assert_eq!(f.read(0, 5).unwrap(), b"ec-ok");
    }

    #[test]
    fn testbed_wires_health_plane_and_flight_recorder() {
        let mut cfg = TestbedConfig::zero(3);
        cfg.scrape_addr = Some("127.0.0.1:0".into());
        let tb = Testbed::start(cfg);
        assert!(tb.scrape_addr().is_some());
        // The plane starts healthy (no SLO has data yet) and the recorder
        // watches the same telemetry handle as the testbed services.
        assert!(!tb.slo_plane().tick().breached());
        let (fs, _node) = tb.mount(Mode::SplitFt, "app-health");
        let f = fs.open("probe", OpenOptions::create_ncl(1 << 16)).unwrap();
        f.write_at(0, b"observed").unwrap();
        f.fsync().unwrap();
        tb.flight_recorder().tick();
        let dump = tb.flight_recorder().capture();
        assert!(
            !dump.spans.is_empty(),
            "flight recorder must see the write's spans"
        );
    }

    #[test]
    fn online_monitor_stays_clean_on_healthy_writes() {
        let mut cfg = TestbedConfig::zero(3);
        cfg.online_monitor = true;
        let tb = Testbed::start(cfg);
        let monitor = tb.online_monitor().expect("monitor attached").clone();
        let (fs, _node) = tb.mount(Mode::SplitFt, "app-monitored");
        let f = fs.open("probe", OpenOptions::create_ncl(1 << 16)).unwrap();
        for i in 0..16u64 {
            f.write_at(i * 8, b"monitor!").unwrap();
        }
        f.fsync().unwrap();
        let report = monitor.finalize();
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.acked_writes > 0, "monitor saw the write stream");
        assert_eq!(report.violations.len(), 0);
    }

    #[test]
    fn sharded_testbed_serves_profile_endpoint() {
        use std::io::{Read as _, Write as _};

        let mut cfg = TestbedConfig::zero(3);
        cfg.shards = 2;
        cfg.scrape_addr = Some("127.0.0.1:0".into());
        let tb = Testbed::start(cfg);
        let (fs, _node) = tb.mount(Mode::SplitFt, "app-profiled");
        let f = fs.open("probe", OpenOptions::create_ncl(1 << 16)).unwrap();
        f.write_at(0, b"profiled").unwrap();
        f.fsync().unwrap();

        let addr = tb.scrape_addr().unwrap();
        let mut stream = std::net::TcpStream::connect(addr).unwrap();
        write!(stream, "GET /profile HTTP/1.0\r\n\r\n").unwrap();
        let mut text = String::new();
        stream.read_to_string(&mut text).unwrap();
        assert!(text.contains("200"), "{text}");
        assert!(text.contains("\"shards\""), "{text}");
        assert!(text.contains("\"apply_ns\""), "{text}");
    }

    #[test]
    fn add_peer_grows_pool() {
        let mut tb = Testbed::start(TestbedConfig::zero(1));
        assert_eq!(tb.peers.len(), 1);
        tb.add_peer("late-peer");
        assert_eq!(tb.peers.len(), 2);
        assert!(tb.peer_named("late-peer").is_some());
    }
}
