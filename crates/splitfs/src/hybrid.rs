//! Fine-granular write splitting (§6 of the paper).
//!
//! The file-level `O_NCL` classification works because most applications
//! segregate small synchronous writes and bulk writes into different files.
//! For applications that mix both *in one file*, the paper sketches a
//! size-threshold split: writes below the threshold go to NCL, larger ones
//! to the DFS, with byte-range metadata — "conveniently stored in the NCL
//! layer" — tracking where the latest data for each range lives.
//!
//! [`HybridFile`] implements that design. The NCL region holds a framed
//! *journal*: each small write is appended as a `(offset, data)` record,
//! and each large write appends a small *supersede* marker for its range
//! before the bulk data goes to the DFS. Recovery replays the journal in
//! order over the DFS image, so the newest writer of every byte wins —
//! whichever tier it used. When the journal fills, a checkpoint flushes the
//! outstanding small-write overlay to the DFS and starts a fresh journal.

use dfs::ExtentMap;
use std::sync::Arc;

use ncl::{NclFile, NclLib};
use parking_lot::Mutex;

use crate::{FsError, SplitFs};

/// Journal record tags.
const TAG_DATA: u8 = 1;
const TAG_SUPERSEDE: u8 = 2;

/// Configuration for a hybrid file.
#[derive(Debug, Clone, Copy)]
pub struct HybridOptions {
    /// Writes strictly smaller than this go to NCL; the rest to the DFS.
    pub threshold: usize,
    /// NCL journal capacity; a checkpoint runs when it fills.
    pub journal_capacity: usize,
}

impl Default for HybridOptions {
    fn default() -> Self {
        HybridOptions {
            threshold: 16 << 10,
            journal_capacity: 16 << 20,
        }
    }
}

struct HybridInner {
    journal: Arc<NclFile>,
    journal_used: u64,
    /// Byte ranges whose latest data lives in the journal (the recovery
    /// metadata the paper describes, reconstructed from the journal).
    overlay: ExtentMap,
    size: u64,
}

/// A file whose writes are split by *size*, not by file classification.
pub struct HybridFile {
    fs: SplitFs,
    path: String,
    journal_path: String,
    opts: HybridOptions,
    inner: Mutex<HybridInner>,
}

fn encode_data_record(offset: u64, data: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(data.len() + 16);
    body.push(TAG_DATA);
    body.extend_from_slice(&offset.to_le_bytes());
    body.extend_from_slice(&(data.len() as u32).to_le_bytes());
    body.extend_from_slice(data);
    frame(&body)
}

fn encode_supersede_record(offset: u64, len: u64) -> Vec<u8> {
    let mut body = Vec::with_capacity(24);
    body.push(TAG_SUPERSEDE);
    body.extend_from_slice(&offset.to_le_bytes());
    body.extend_from_slice(&len.to_le_bytes());
    frame(&body)
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&sim::crc32c(body).to_le_bytes());
    out.extend_from_slice(body);
    out
}

/// Replays a journal image into the overlay map.
fn replay_journal(image: &[u8]) -> (ExtentMap, u64) {
    let mut overlay = ExtentMap::new();
    let mut max_end = 0u64;
    let mut pos = 0usize;
    while pos + 8 <= image.len() {
        let len = u32::from_le_bytes(image[pos..pos + 4].try_into().expect("4")) as usize;
        if len == 0 {
            break;
        }
        let crc = u32::from_le_bytes(image[pos + 4..pos + 8].try_into().expect("4"));
        if pos + 8 + len > image.len() {
            break;
        }
        let body = &image[pos + 8..pos + 8 + len];
        if sim::crc32c(body) != crc || body.is_empty() {
            break;
        }
        match body[0] {
            TAG_DATA if body.len() >= 13 => {
                let offset = u64::from_le_bytes(body[1..9].try_into().expect("8"));
                let dlen = u32::from_le_bytes(body[9..13].try_into().expect("4")) as usize;
                if 13 + dlen <= body.len() {
                    overlay.insert(offset, &body[13..13 + dlen]);
                    max_end = max_end.max(offset + dlen as u64);
                }
            }
            TAG_SUPERSEDE if body.len() >= 17 => {
                let offset = u64::from_le_bytes(body[1..9].try_into().expect("8"));
                let slen = u64::from_le_bytes(body[9..17].try_into().expect("8"));
                overlay.remove_range(offset, slen);
                max_end = max_end.max(offset + slen);
            }
            _ => break,
        }
        pos += 8 + len;
    }
    (overlay, max_end)
}

impl HybridFile {
    /// Opens (creating or recovering) a hybrid file. `fs` must be mounted in
    /// SplitFT mode.
    pub fn open(fs: &SplitFs, path: &str, opts: HybridOptions) -> Result<Self, FsError> {
        let ncl: &NclLib = fs
            .ncl()
            .ok_or_else(|| FsError::Unsupported("hybrid files need SplitFT mode".to_string()))?;
        let journal_path = format!("{path}.ncl-journal");

        // Base file on the DFS.
        let dfs = fs.dfs().expect("splitft mode has a dfs");
        if !dfs.exists(path) {
            dfs.create(path).map_err(FsError::from)?;
        } else {
            dfs.open(path).map_err(FsError::from)?;
        }

        let (journal, overlay, journal_used, size) =
            if ncl.exists(&journal_path).map_err(FsError::from)? {
                // Recovery: replay the journal over the DFS image.
                let journal = ncl.recover(&journal_path).map_err(FsError::from)?;
                let image = journal.contents();
                let (overlay, overlay_end) = replay_journal(&image);
                let dfs_size = dfs.size(path).map_err(FsError::from)?;
                (
                    journal,
                    overlay,
                    image.len() as u64,
                    dfs_size.max(overlay_end),
                )
            } else {
                let journal = ncl
                    .create(&journal_path, opts.journal_capacity)
                    .map_err(FsError::from)?;
                let dfs_size = dfs.size(path).map_err(FsError::from)?;
                (journal, ExtentMap::new(), 0, dfs_size)
            };

        Ok(HybridFile {
            fs: fs.clone(),
            path: path.to_string(),
            journal_path,
            opts,
            inner: Mutex::new(HybridInner {
                journal,
                journal_used,
                overlay,
                size,
            }),
        })
    }

    /// The file's path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Current size.
    pub fn size(&self) -> u64 {
        self.inner.lock().size
    }

    /// Bytes currently living in the NCL overlay (diagnostics/tests).
    pub fn overlay_bytes(&self) -> usize {
        self.inner.lock().overlay.byte_len()
    }

    /// Writes `data` at `offset`, routing by size: small writes are durable
    /// on return (NCL); large writes go to the DFS and are durable after
    /// [`HybridFile::fsync`], as bulk writes usually are.
    pub fn write_at(&self, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        if data.len() < self.opts.threshold {
            let record = encode_data_record(offset, data);
            self.append_journal(&mut inner, &record)?;
            inner.overlay.insert(offset, data);
        } else {
            // Large write: supersede marker into the journal *first* (so a
            // crash between the two cannot resurrect stale overlay bytes —
            // the DFS write below is only acknowledged at the next fsync,
            // exactly like any bulk DFT write), then bulk data to the DFS.
            let record = encode_supersede_record(offset, data.len() as u64);
            self.append_journal(&mut inner, &record)?;
            inner.overlay.remove_range(offset, data.len() as u64);
            let dfs = self.fs.dfs().expect("splitft");
            dfs.write(&self.path, offset, data).map_err(FsError::from)?;
        }
        inner.size = inner.size.max(offset + data.len() as u64);
        Ok(())
    }

    fn append_journal(&self, inner: &mut HybridInner, record: &[u8]) -> Result<(), FsError> {
        if inner.journal_used as usize + record.len() > self.opts.journal_capacity {
            self.checkpoint_locked(inner)?;
        }
        inner
            .journal
            .record(inner.journal_used, record)
            .map_err(FsError::from)?;
        inner.journal_used += record.len() as u64;
        Ok(())
    }

    /// Reads `len` bytes at `offset`: DFS base with the NCL overlay on top.
    pub fn read(&self, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let inner = self.inner.lock();
        if offset >= inner.size {
            return Ok(Vec::new());
        }
        let len = len.min((inner.size - offset) as usize);
        let dfs = self.fs.dfs().expect("splitft");
        let base = dfs.read(&self.path, offset, len).map_err(FsError::from)?;
        let mut buf = base;
        buf.resize(len, 0);
        inner.overlay.read_into(offset, &mut buf);
        Ok(buf)
    }

    /// Flushes the DFS-resident part (bulk writes) to durability.
    pub fn fsync(&self) -> Result<(), FsError> {
        let dfs = self.fs.dfs().expect("splitft");
        dfs.fsync(&self.path).map_err(FsError::from)
    }

    /// Checkpoint: pushes the NCL overlay into the DFS and resets the
    /// journal (the journal's GC, run automatically when it fills).
    pub fn checkpoint(&self) -> Result<(), FsError> {
        let mut inner = self.inner.lock();
        self.checkpoint_locked(&mut inner)
    }

    fn checkpoint_locked(&self, inner: &mut HybridInner) -> Result<(), FsError> {
        let dfs = self.fs.dfs().expect("splitft");
        for (off, data) in inner.overlay.iter() {
            dfs.write(&self.path, off, data).map_err(FsError::from)?;
        }
        dfs.fsync(&self.path).map_err(FsError::from)?;
        inner.overlay.clear();
        // Fresh journal (new region, new epoch) replaces the full one.
        inner.journal.release().map_err(FsError::from)?;
        let ncl = self.fs.ncl().expect("splitft");
        inner.journal = ncl
            .create(&self.journal_path, self.opts.journal_capacity)
            .map_err(FsError::from)?;
        inner.journal_used = 0;
        Ok(())
    }

    /// Deletes the file and its journal.
    pub fn delete(self) -> Result<(), FsError> {
        let inner = self.inner.lock();
        inner.journal.release().map_err(FsError::from)?;
        let dfs = self.fs.dfs().expect("splitft");
        dfs.delete(&self.path).map_err(FsError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testbed::{Testbed, TestbedConfig};
    use crate::Mode;

    fn setup() -> (Testbed, SplitFs, sim::NodeId) {
        let tb = Testbed::start(TestbedConfig::zero(4));
        let (fs, node) = tb.mount(Mode::SplitFt, "hybrid-app");
        (tb, fs, node)
    }

    #[test]
    fn small_and_large_writes_roundtrip() {
        let (_tb, fs, _) = setup();
        let opts = HybridOptions {
            threshold: 1024,
            journal_capacity: 64 << 10,
        };
        let f = HybridFile::open(&fs, "mixed", opts).unwrap();
        f.write_at(0, &vec![1u8; 4096]).unwrap(); // Large → DFS.
        f.write_at(4096, b"small-tail").unwrap(); // Small → NCL.
        f.write_at(10, b"patch").unwrap(); // Small overwrite of DFS range.
        assert_eq!(f.size(), 4096 + 10);
        let back = f.read(0, 4106).unwrap();
        assert_eq!(&back[0..10], &[1u8; 10]);
        assert_eq!(&back[10..15], b"patch");
        assert_eq!(&back[15..4096], &vec![1u8; 4081][..]);
        assert_eq!(&back[4096..], b"small-tail");
        assert!(f.overlay_bytes() > 0);
    }

    #[test]
    fn small_writes_survive_crash_without_fsync() {
        let (tb, fs, node) = setup();
        let opts = HybridOptions {
            threshold: 1024,
            journal_capacity: 64 << 10,
        };
        {
            let f = HybridFile::open(&fs, "mixed", opts).unwrap();
            f.write_at(0, &vec![7u8; 2048]).unwrap(); // Large.
            f.fsync().unwrap(); // Bulk data made durable.
            f.write_at(100, b"latest-small").unwrap(); // Small, no fsync.
        }
        tb.cluster.crash(node);
        drop(fs);
        let (fs2, _) = tb.mount(Mode::SplitFt, "hybrid-app");
        let f = HybridFile::open(&fs2, "mixed", opts).unwrap();
        let back = f.read(0, 2048).unwrap();
        assert_eq!(&back[0..100], &vec![7u8; 100][..]);
        assert_eq!(&back[100..112], b"latest-small");
        assert_eq!(&back[112..], &vec![7u8; 2048 - 112][..]);
    }

    #[test]
    fn large_write_supersedes_earlier_small_writes() {
        let (tb, fs, node) = setup();
        let opts = HybridOptions {
            threshold: 1024,
            journal_capacity: 64 << 10,
        };
        {
            let f = HybridFile::open(&fs, "mixed", opts).unwrap();
            f.write_at(50, b"old-small-data").unwrap();
            f.write_at(0, &vec![9u8; 2048]).unwrap(); // Covers the range.
            f.fsync().unwrap();
        }
        tb.cluster.crash(node);
        drop(fs);
        let (fs2, _) = tb.mount(Mode::SplitFt, "hybrid-app");
        let f = HybridFile::open(&fs2, "mixed", opts).unwrap();
        // The stale small write must NOT resurrect over the newer bulk data.
        assert_eq!(f.read(0, 2048).unwrap(), vec![9u8; 2048]);
    }

    #[test]
    fn journal_overflow_triggers_checkpoint() {
        let (_tb, fs, _) = setup();
        let opts = HybridOptions {
            threshold: 512,
            journal_capacity: 4 << 10,
        };
        let f = HybridFile::open(&fs, "mixed", opts).unwrap();
        for i in 0..100u64 {
            f.write_at(i * 100, &[i as u8; 100]).unwrap();
        }
        // The journal filled several times over; data is all intact.
        for i in 0..100u64 {
            assert_eq!(f.read(i * 100, 100).unwrap(), vec![i as u8; 100]);
        }
    }

    #[test]
    fn checkpoint_flushes_overlay_and_resets_journal() {
        let (tb, fs, node) = setup();
        let opts = HybridOptions {
            threshold: 1024,
            journal_capacity: 64 << 10,
        };
        {
            let f = HybridFile::open(&fs, "mixed", opts).unwrap();
            f.write_at(0, b"journaled").unwrap();
            f.checkpoint().unwrap();
            assert_eq!(f.overlay_bytes(), 0);
            f.write_at(9, b"-after").unwrap();
        }
        tb.cluster.crash(node);
        drop(fs);
        let (fs2, _) = tb.mount(Mode::SplitFt, "hybrid-app");
        let f = HybridFile::open(&fs2, "mixed", opts).unwrap();
        assert_eq!(f.read(0, 15).unwrap(), b"journaled-after");
    }

    #[test]
    fn delete_removes_both_tiers() {
        let (_tb, fs, _) = setup();
        let opts = HybridOptions::default();
        let f = HybridFile::open(&fs, "mixed", opts).unwrap();
        f.write_at(0, b"x").unwrap();
        f.delete().unwrap();
        assert!(!fs.exists("mixed"));
        assert!(!fs.exists("mixed.ncl-journal"));
    }

    #[test]
    fn requires_splitft_mode() {
        let tb = Testbed::start(TestbedConfig::zero(3));
        let (fs, _) = tb.mount(Mode::StrongDft, "plain");
        assert!(matches!(
            HybridFile::open(&fs, "f", HybridOptions::default()),
            Err(FsError::Unsupported(_))
        ));
    }
}
