//! Full-stack tests of the SplitFT facade: DFS + controller + peers + NCL.

use std::sync::Arc;
use std::time::Duration;

use dfs::{DfsCluster, DfsConfig, IoTrace, LocalFs};
use ncl::{Controller, NclConfig, NclLib, NclRegistry, Peer};
use sim::Cluster;
use splitfs::{FsError, Mode, OpenOptions, SplitFs};

struct Harness {
    cluster: Cluster,
    dfs: DfsCluster,
    controller: Controller,
    registry: Arc<NclRegistry>,
    peers: Vec<Peer>,
    config: NclConfig,
    app_seq: std::cell::Cell<u32>,
}

impl Harness {
    fn new() -> Self {
        let cluster = Cluster::new();
        let dfs = DfsCluster::start(&cluster, DfsConfig::zero_small_objects());
        let controller = Controller::start(&cluster);
        let registry = NclRegistry::new();
        let config = NclConfig::zero();
        let peers = (0..4)
            .map(|i| {
                Peer::start(
                    &cluster,
                    &format!("p{i}"),
                    32 << 20,
                    &config,
                    &controller,
                    &registry,
                )
            })
            .collect();
        Harness {
            cluster,
            dfs,
            controller,
            registry,
            peers,
            config,
            app_seq: std::cell::Cell::new(0),
        }
    }

    fn next_node(&self, tag: &str) -> sim::NodeId {
        self.app_seq.set(self.app_seq.get() + 1);
        self.cluster
            .add_node(format!("{tag}-{}", self.app_seq.get()))
    }

    fn splitft(&self, app: &str) -> SplitFs {
        let node = self.next_node("app");
        let ncl = NclLib::new(
            &self.cluster,
            node,
            app,
            self.config.clone(),
            &self.controller,
            &self.registry,
        )
        .expect("instance lock");
        SplitFs::splitft(self.dfs.client(node), ncl)
    }

    fn strong(&self) -> SplitFs {
        SplitFs::dft_strong(self.dfs.client(self.next_node("app")))
    }

    fn weak(&self, interval: Duration) -> SplitFs {
        SplitFs::dft_weak(self.dfs.client(self.next_node("app")), interval)
    }
}

#[test]
fn splitft_routes_by_oncl_flag() {
    let h = Harness::new();
    let fs = h.splitft("db");
    let wal = fs.open("wal", OpenOptions::create_ncl(4096)).unwrap();
    let sst = fs.open("sst-1", OpenOptions::create()).unwrap();
    assert!(wal.is_ncl());
    assert!(!sst.is_ncl());
    wal.write_at(0, b"log entry").unwrap();
    sst.write_at(0, b"bulk data").unwrap();
    sst.fsync().unwrap();
    assert_eq!(wal.read(0, 9).unwrap(), b"log entry");
    assert_eq!(sst.read(0, 9).unwrap(), b"bulk data");
}

#[test]
fn oncl_flag_is_ignored_in_dft_modes() {
    let h = Harness::new();
    let fs = h.strong();
    let f = fs.open("wal", OpenOptions::create_ncl(4096)).unwrap();
    assert!(!f.is_ncl(), "strong DFT must route O_NCL files to the DFS");
}

#[test]
fn strong_mode_survives_crash_weak_mode_loses_data() {
    let h = Harness::new();

    // Strong: fsync makes data durable in the DFS.
    {
        let fs = h.strong();
        let f = fs.open("strong.log", OpenOptions::create()).unwrap();
        f.write_at(0, b"durable").unwrap();
        f.fsync().unwrap();
    } // Application crash: facade dropped.
    {
        let fs = h.strong();
        let f = fs.open("strong.log", OpenOptions::plain()).unwrap();
        assert_eq!(f.read(0, 7).unwrap(), b"durable");
    }

    // Weak: fsync is a no-op and the flusher never ran before the crash.
    {
        let fs = h.weak(Duration::from_secs(3600));
        let f = fs.open("weak.log", OpenOptions::create()).unwrap();
        f.write_at(0, b"vanishes").unwrap();
        f.fsync().unwrap(); // Returns instantly, durability not guaranteed.
    }
    {
        let fs = h.strong();
        let f = fs.open("weak.log", OpenOptions::plain()).unwrap();
        assert_eq!(f.size().unwrap(), 0, "acknowledged write was lost");
    }
}

#[test]
fn splitft_ncl_file_survives_app_crash() {
    let h = Harness::new();
    let app_node;
    {
        let fs = h.splitft("kv");
        app_node = fs.ncl().unwrap().node();
        let wal = fs.open("wal", OpenOptions::create_ncl(4096)).unwrap();
        wal.append(b"rec1;").unwrap();
        wal.append(b"rec2;").unwrap();
        // No fsync needed: records are synchronously replicated.
    }
    h.cluster.crash(app_node);
    let fs2 = h.splitft("kv");
    // Opening the existing ncl file triggers recovery.
    let wal = fs2.open("wal", OpenOptions::create_ncl(4096)).unwrap();
    assert_eq!(wal.read(0, 10).unwrap(), b"rec1;rec2;");
}

#[test]
fn splitft_bulk_files_survive_via_dfs() {
    let h = Harness::new();
    let app_node;
    {
        let fs = h.splitft("kv");
        app_node = fs.ncl().unwrap().node();
        let sst = fs.open("sst-9", OpenOptions::create()).unwrap();
        sst.write_at(0, b"compacted").unwrap();
        sst.fsync().unwrap();
    }
    h.cluster.crash(app_node);
    let fs2 = h.splitft("kv");
    let sst = fs2.open("sst-9", OpenOptions::plain()).unwrap();
    assert_eq!(sst.read(0, 9).unwrap(), b"compacted");
}

#[test]
fn unlink_ncl_file_releases_peer_regions() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    let wal = fs.open("wal", OpenOptions::create_ncl(1024)).unwrap();
    wal.append(b"x").unwrap();
    let before: usize = h.peers.iter().map(|p| p.region_count()).sum();
    assert_eq!(before, 3);
    drop(wal);
    fs.unlink("wal").unwrap();
    let after: usize = h.peers.iter().map(|p| p.region_count()).sum();
    assert_eq!(after, 0);
    assert!(!fs.exists("wal"));
}

#[test]
fn unlink_unopened_ncl_file_after_restart() {
    // The delete-the-stale-WAL-at-startup pattern (RocksDB, Table 2).
    let h = Harness::new();
    let app_node;
    {
        let fs = h.splitft("kv");
        app_node = fs.ncl().unwrap().node();
        let wal = fs.open("old-wal", OpenOptions::create_ncl(1024)).unwrap();
        wal.append(b"obsolete").unwrap();
    }
    h.cluster.crash(app_node);
    let fs2 = h.splitft("kv");
    fs2.unlink("old-wal").unwrap();
    assert!(!fs2.exists("old-wal"));
    let regions: usize = h.peers.iter().map(|p| p.region_count()).sum();
    assert_eq!(regions, 0);
}

#[test]
fn list_merges_ncl_and_dfs_namespaces() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    fs.open("wal-1", OpenOptions::create_ncl(1024)).unwrap();
    fs.open("sst-1", OpenOptions::create()).unwrap();
    fs.open("sst-2", OpenOptions::create()).unwrap();
    assert_eq!(fs.list("").unwrap(), vec!["sst-1", "sst-2", "wal-1"]);
    assert_eq!(fs.list("sst").unwrap(), vec!["sst-1", "sst-2"]);
}

#[test]
fn rename_bulk_ok_ncl_rejected() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    fs.open("wal", OpenOptions::create_ncl(1024)).unwrap();
    fs.open("tmp", OpenOptions::create()).unwrap();
    fs.rename("tmp", "final").unwrap();
    assert!(fs.exists("final"));
    assert!(matches!(
        fs.rename("wal", "wal2"),
        Err(FsError::Unsupported(_))
    ));
}

#[test]
fn weak_flusher_eventually_persists() {
    let h = Harness::new();
    {
        let fs = h.weak(Duration::from_millis(50));
        let f = fs.open("bg.log", OpenOptions::create()).unwrap();
        f.write_at(0, b"eventually").unwrap();
        // Wait for at least one flush cycle.
        std::thread::sleep(Duration::from_millis(300));
    }
    let fs2 = h.strong();
    let f = fs2.open("bg.log", OpenOptions::plain()).unwrap();
    assert_eq!(f.read(0, 10).unwrap(), b"eventually");
}

#[test]
fn open_missing_without_create_fails() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    assert!(matches!(
        fs.open("nope", OpenOptions::plain()),
        Err(FsError::NotFound(_))
    ));
    let mut opts = OpenOptions::plain();
    opts.ncl = true;
    assert!(matches!(fs.open("nope", opts), Err(FsError::NotFound(_))));
}

#[test]
fn reopening_ncl_file_shares_handle() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    let a = fs.open("wal", OpenOptions::create_ncl(1024)).unwrap();
    let b = fs.open("wal", OpenOptions::create_ncl(1024)).unwrap();
    a.append(b"one").unwrap();
    b.append(b"two").unwrap();
    assert_eq!(a.read(0, 6).unwrap(), b"onetwo");
    let regions: usize = h.peers.iter().map(|p| p.region_count()).sum();
    assert_eq!(regions, 3, "no duplicate allocation");
}

#[test]
fn trace_captures_ncl_record_sizes() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    let trace = IoTrace::new();
    trace.enable();
    fs.set_trace(Arc::clone(&trace));
    let wal = fs.open("wal", OpenOptions::create_ncl(4096)).unwrap();
    wal.append(&[0u8; 124]).unwrap();
    wal.append(&[0u8; 124]).unwrap();
    let events = trace.events();
    assert_eq!(events.len(), 2);
    assert!(events.iter().all(|e| e.bytes == 124 && e.path == "wal"));
}

#[test]
fn local_mode_roundtrip() {
    let fs = SplitFs::local(LocalFs::zero());
    assert_eq!(fs.mode(), Mode::Local);
    let f = fs.open("f", OpenOptions::create()).unwrap();
    f.write_at(0, b"local").unwrap();
    f.fsync().unwrap();
    assert_eq!(f.read(0, 5).unwrap(), b"local");
    assert_eq!(f.size().unwrap(), 5);
    fs.rename("f", "g").unwrap();
    assert!(fs.exists("g"));
    fs.unlink("g").unwrap();
    assert!(!fs.exists("g"));
}

#[test]
fn append_returns_monotonic_offsets() {
    let h = Harness::new();
    let fs = h.splitft("kv");
    let wal = fs.open("wal", OpenOptions::create_ncl(4096)).unwrap();
    assert_eq!(wal.append(b"aaa").unwrap(), 0);
    assert_eq!(wal.append(b"bb").unwrap(), 3);
    let sst = fs.open("sst", OpenOptions::create()).unwrap();
    assert_eq!(sst.append(b"xxxx").unwrap(), 0);
    assert_eq!(sst.append(b"y").unwrap(), 4);
}
