//! Quorum-loss degradation: when more than `f` log peers die and no spares
//! exist, the facade must keep accepting writes by falling back to
//! direct-DFS strong mode, and must re-attach to NCL (replaying the shadow
//! journal) once a fresh peer set can be assembled.

use std::time::Duration;

use splitfs::{Mode, OpenOptions, Testbed, TestbedConfig};
use telemetry::events;

fn quick_timeout_config(peers: usize) -> TestbedConfig {
    let mut cfg = TestbedConfig::zero(peers);
    // Quorum loss should trip the fallback quickly, not after 5 s.
    cfg.ncl.write_timeout = Duration::from_millis(300);
    cfg
}

/// Crashes every assigned peer except one (losing the `f + 1` quorum) and
/// returns how many were crashed.
fn crash_all_but_one(tb: &Testbed, peer_names: &[String]) -> usize {
    let mut crashed = 0;
    for name in peer_names.iter().skip(1) {
        let peer = tb.peer_named(name).expect("assigned peer exists");
        tb.cluster.crash(peer.node());
        crashed += 1;
    }
    crashed
}

#[test]
fn quorum_loss_degrades_and_reattaches_with_fresh_peers() {
    let mut tb = Testbed::start(quick_timeout_config(3));
    let (fs, app_node) = tb.mount(Mode::SplitFt, "degrade");
    let f = fs.open("wal", OpenOptions::create_ncl(1 << 16)).unwrap();
    f.write_at(0, b"before-loss").unwrap();

    // Lose the quorum: 2 of the 3 assigned peers die, no spares exist.
    let names = f.ncl_handle().unwrap().peer_names();
    assert_eq!(crash_all_but_one(&tb, &names), 2);

    // The next write cannot assemble a majority; instead of failing, the
    // facade degrades to the DFS shadow journal and acknowledges.
    let off = f.size().unwrap();
    f.write_at(off, b"|during-loss").unwrap();
    assert!(f.is_degraded(), "quorum loss must engage the fallback");
    assert_eq!(fs.telemetry().counter_value("splitfs.fallback.engaged"), 1);

    // While degraded, no record is ever acknowledged through NCL: the log's
    // issue and durability watermarks freeze while the fallback counter and
    // the overlay keep advancing.
    let ncl = f.ncl_handle().unwrap().clone();
    let (frozen_seq, frozen_durable) = (ncl.seq(), ncl.durable_seq());
    let records_before = fs.telemetry().counter_value("splitfs.fallback.records");
    let off = f.size().unwrap();
    f.write_at(off, b"|still-degraded").unwrap();
    f.fsync().unwrap();
    assert_eq!(ncl.seq(), frozen_seq, "degraded write leaked into NCL");
    assert_eq!(
        ncl.durable_seq(),
        frozen_durable,
        "NCL acked while degraded"
    );
    assert!(fs.telemetry().counter_value("splitfs.fallback.records") > records_before);

    // Reads and sizes stay coherent through the overlay.
    let size = f.size().unwrap();
    let image = f.read(0, size as usize).unwrap();
    assert_eq!(image, b"before-loss|during-loss|still-degraded");

    // Publish fresh capacity and let the probe re-attach.
    tb.add_peer("spare-a");
    tb.add_peer("spare-b");
    let reattach_deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        std::thread::sleep(tb.config().ncl.reattach_probe);
        let off = f.size().unwrap();
        f.write_at(off, b".").unwrap();
        if !f.is_degraded() {
            break;
        }
        assert!(
            std::time::Instant::now() < reattach_deadline,
            "fallback never re-attached after fresh peers were published"
        );
    }
    assert_eq!(fs.telemetry().counter_value("splitfs.fallback.reattach"), 1);

    // Event-trace ordering: engage strictly before re-attach, and the
    // re-attach runs at a bumped epoch (the replacement's fence).
    let evs = fs.telemetry().events();
    let engage = evs
        .iter()
        .position(|e| e.kind == events::DFS_FALLBACK_ENGAGE)
        .expect("engage event");
    let reattach = evs
        .iter()
        .position(|e| e.kind == events::NCL_REATTACH)
        .expect("re-attach event");
    assert!(engage < reattach, "engage must precede re-attach");
    assert!(
        evs[reattach].epoch > evs[engage].epoch,
        "re-attach must carry a bumped epoch ({} vs {})",
        evs[reattach].epoch,
        evs[engage].epoch
    );

    // Everything acknowledged — through NCL or the fallback — survives an
    // application crash and a recovery on a fresh node.
    let expected = {
        let size = f.size().unwrap();
        f.read(0, size as usize).unwrap()
    };
    tb.cluster.crash(app_node);
    drop(f);
    drop(fs);
    let (fs2, _) = tb.mount(Mode::SplitFt, "degrade");
    let f2 = fs2.open("wal", OpenOptions::create_ncl(1 << 16)).unwrap();
    let size = f2.size().unwrap();
    assert_eq!(f2.read(0, size as usize).unwrap(), expected);
}

#[test]
fn crash_while_degraded_replays_the_shadow_journal_at_open() {
    let tb = Testbed::start(quick_timeout_config(3));
    let (fs, app_node) = tb.mount(Mode::SplitFt, "degrade-crash");
    let f = fs.open("wal", OpenOptions::create_ncl(1 << 16)).unwrap();
    f.write_at(0, b"ncl-data").unwrap();

    let names = f.ncl_handle().unwrap().peer_names();
    assert_eq!(crash_all_but_one(&tb, &names), 2);
    let off = f.size().unwrap();
    f.write_at(off, b"|journal-only").unwrap();
    assert!(f.is_degraded());

    // Crash the application while still degraded: the journal (not the log)
    // holds the tail. The crashed peers lost their regions (DRAM), so NCL
    // recovery alone cannot find a quorum — the open must rebuild the log
    // from the shadow journal on a fresh peer set. Restarting the peers
    // provides that capacity, not the lost regions.
    tb.cluster.crash(app_node);
    drop(f);
    drop(fs);
    for name in names.iter().skip(1) {
        tb.cluster
            .restart(tb.peer_named(name).expect("peer").node());
    }

    let (fs2, _) = tb.mount(Mode::SplitFt, "degrade-crash");
    let f2 = fs2.open("wal", OpenOptions::create_ncl(1 << 16)).unwrap();
    let size = f2.size().unwrap();
    assert_eq!(f2.read(0, size as usize).unwrap(), b"ncl-data|journal-only");
    assert!(!f2.is_degraded());
    // The replay is reported as a re-attach on the recovering mount's trace.
    assert!(fs2
        .telemetry()
        .events()
        .iter()
        .any(|e| e.kind == events::NCL_REATTACH));
}
