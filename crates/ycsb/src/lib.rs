//! YCSB workload generation and a closed-loop benchmark runner.
//!
//! Reimplements the slice of the Yahoo! Cloud Serving Benchmark the paper
//! evaluates with (§5.3): workloads A (update-heavy), B (read-mostly),
//! C (read-only), D (read-latest) and F (read-modify-write), driven by
//! closed-loop client threads against any [`apps::KvApp`]. Workload E
//! (scans) is omitted, as in the paper.
//!
//! Key/value shapes follow the paper's setup: 24-byte keys and 100-byte
//! values, zipfian request distributions, and per-thread latency histograms
//! merged into a [`Report`].

pub mod generator;
pub mod runner;
pub mod workload;

pub use generator::{KeyChooser, ScrambledZipfian, Zipfian};
pub use runner::{LoadSpec, Report, RunSpec, Runner};
pub use workload::{OpKind, Workload, WorkloadMix};
