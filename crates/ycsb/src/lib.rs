//! YCSB workload generation with closed-loop and open-loop runners.
//!
//! Reimplements the slice of the Yahoo! Cloud Serving Benchmark the paper
//! evaluates with (§5.3): workloads A (update-heavy), B (read-mostly),
//! C (read-only), D (read-latest) and F (read-modify-write), driven by
//! client threads against any [`apps::KvApp`]. Workload E (scans) is
//! omitted, as in the paper.
//!
//! Two measurement modes:
//!
//! * **Closed-loop** ([`Runner::run`]): each thread sends back-to-back
//!   requests; throughput is the output. This is how the paper's figures
//!   are produced.
//! * **Open-loop** ([`Runner::run_open_loop`]): an [`ArrivalSchedule`]
//!   (fixed-rate or Poisson, drawn from the deterministic sim RNG) decides
//!   when requests leave; offered load is the input and latency — measured
//!   from the *intended* arrival time, correcting for coordinated
//!   omission — is the output. This is what latency-under-load curves need.
//!
//! Key/value shapes follow the paper's setup: 24-byte keys and 100-byte
//! values, zipfian request distributions, and per-thread latency histograms
//! merged into a [`Report`] / [`OpenLoopReport`].

pub mod generator;
pub mod runner;
pub mod workload;

pub use generator::{ArrivalSchedule, KeyChooser, ScrambledZipfian, Zipfian};
pub use runner::{LoadSpec, OpenLoopReport, OpenLoopSpec, Report, RunSpec, Runner};
pub use workload::{OpKind, Workload, WorkloadMix};
