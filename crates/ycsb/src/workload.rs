//! YCSB workload definitions (A, B, C, D, F).

use sim::Xoshiro256StarStar;

use crate::generator::{KeyChooser, ScrambledZipfian, Zipfian};

/// One benchmark operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Point read.
    Read,
    /// Overwrite of an existing key.
    Update,
    /// Insert of a new key.
    Insert,
    /// Read-modify-write of an existing key.
    ReadModifyWrite,
}

/// Operation proportions (must sum to ~1.0).
#[derive(Debug, Clone, Copy)]
pub struct WorkloadMix {
    /// Fraction of reads.
    pub read: f64,
    /// Fraction of updates.
    pub update: f64,
    /// Fraction of inserts.
    pub insert: f64,
    /// Fraction of read-modify-writes.
    pub rmw: f64,
}

impl WorkloadMix {
    fn pick(&self, rng: &mut Xoshiro256StarStar) -> OpKind {
        let x = rng.next_f64();
        if x < self.read {
            OpKind::Read
        } else if x < self.read + self.update {
            OpKind::Update
        } else if x < self.read + self.update + self.insert {
            OpKind::Insert
        } else {
            OpKind::ReadModifyWrite
        }
    }
}

/// A named workload: an operation mix plus a request distribution.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Short name ("a".."f").
    pub name: &'static str,
    /// Operation proportions.
    pub mix: WorkloadMix,
    /// Key selection for reads/updates/RMWs.
    pub chooser: KeyChooser,
}

impl Workload {
    /// YCSB-A: 50% reads, 50% updates, zipfian.
    pub fn a(record_count: u64) -> Self {
        Workload {
            name: "a",
            mix: WorkloadMix {
                read: 0.5,
                update: 0.5,
                insert: 0.0,
                rmw: 0.0,
            },
            chooser: KeyChooser::Zipfian(ScrambledZipfian::new(record_count)),
        }
    }

    /// YCSB-B: 95% reads, 5% updates, zipfian.
    pub fn b(record_count: u64) -> Self {
        Workload {
            name: "b",
            mix: WorkloadMix {
                read: 0.95,
                update: 0.05,
                insert: 0.0,
                rmw: 0.0,
            },
            chooser: KeyChooser::Zipfian(ScrambledZipfian::new(record_count)),
        }
    }

    /// YCSB-C: 100% reads, zipfian.
    pub fn c(record_count: u64) -> Self {
        Workload {
            name: "c",
            mix: WorkloadMix {
                read: 1.0,
                update: 0.0,
                insert: 0.0,
                rmw: 0.0,
            },
            chooser: KeyChooser::Zipfian(ScrambledZipfian::new(record_count)),
        }
    }

    /// YCSB-D: 95% reads of recent keys, 5% inserts.
    pub fn d(record_count: u64) -> Self {
        Workload {
            name: "d",
            mix: WorkloadMix {
                read: 0.95,
                update: 0.0,
                insert: 0.05,
                rmw: 0.0,
            },
            chooser: KeyChooser::Latest(Zipfian::new(record_count)),
        }
    }

    /// YCSB-F: 50% reads, 50% read-modify-writes, zipfian.
    pub fn f(record_count: u64) -> Self {
        Workload {
            name: "f",
            mix: WorkloadMix {
                read: 0.5,
                update: 0.0,
                insert: 0.0,
                rmw: 0.5,
            },
            chooser: KeyChooser::Zipfian(ScrambledZipfian::new(record_count)),
        }
    }

    /// A 100%-update workload (the paper's §5.2 write-only benchmark).
    pub fn write_only(record_count: u64) -> Self {
        Workload {
            name: "write-only",
            mix: WorkloadMix {
                read: 0.0,
                update: 1.0,
                insert: 0.0,
                rmw: 0.0,
            },
            chooser: KeyChooser::Zipfian(ScrambledZipfian::new(record_count)),
        }
    }

    /// All five paper workloads in figure order.
    pub fn paper_suite(record_count: u64) -> Vec<Workload> {
        vec![
            Workload::a(record_count),
            Workload::b(record_count),
            Workload::c(record_count),
            Workload::d(record_count),
            Workload::f(record_count),
        ]
    }

    /// Draws the next operation kind.
    pub fn next_op(&self, rng: &mut Xoshiro256StarStar) -> OpKind {
        self.mix.pick(rng)
    }
}

/// Formats a key index in the paper's shape: 24-byte keys.
pub fn key_of(index: u64) -> String {
    format!("user{index:020}")
}

/// Generates a deterministic value of `len` bytes for a key index.
pub fn value_of(index: u64, len: usize) -> Vec<u8> {
    let mut rng = Xoshiro256StarStar::new(index ^ 0x5911_17F7);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_24_bytes() {
        assert_eq!(key_of(0).len(), 24);
        assert_eq!(key_of(u64::MAX / 2).len(), 24);
    }

    #[test]
    fn value_is_deterministic() {
        assert_eq!(value_of(7, 100), value_of(7, 100));
        assert_ne!(value_of(7, 100), value_of(8, 100));
        assert_eq!(value_of(7, 100).len(), 100);
    }

    #[test]
    fn mixes_sum_to_one() {
        for w in Workload::paper_suite(100) {
            let m = w.mix;
            let sum = m.read + m.update + m.insert + m.rmw;
            assert!((sum - 1.0).abs() < 1e-9, "workload {}", w.name);
        }
    }

    #[test]
    fn workload_c_is_read_only() {
        let w = Workload::c(100);
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..1000 {
            assert_eq!(w.next_op(&mut rng), OpKind::Read);
        }
    }

    #[test]
    fn workload_a_is_half_updates() {
        let w = Workload::a(100);
        let mut rng = Xoshiro256StarStar::new(1);
        let updates = (0..10_000)
            .filter(|_| w.next_op(&mut rng) == OpKind::Update)
            .count();
        assert!((4_000..6_000).contains(&updates), "got {updates}");
    }

    #[test]
    fn workload_d_inserts_present() {
        let w = Workload::d(100);
        let mut rng = Xoshiro256StarStar::new(1);
        let inserts = (0..10_000)
            .filter(|_| w.next_op(&mut rng) == OpKind::Insert)
            .count();
        assert!((300..800).contains(&inserts), "got {inserts}");
    }
}
