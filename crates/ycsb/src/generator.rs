//! Request-distribution generators (uniform, zipfian, scrambled, latest)
//! and arrival schedules (closed-loop, fixed-rate, Poisson).

use sim::Xoshiro256StarStar;

/// The standard YCSB zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipfian generator over `[0, n)` (Gray et al., "Quickly generating
/// billion-record synthetic databases" — the algorithm YCSB uses).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Builds a generator over `items` elements with the standard constant.
    pub fn new(items: u64) -> Self {
        Self::with_constant(items, ZIPFIAN_CONSTANT)
    }

    /// Builds a generator with an explicit skew constant.
    pub fn with_constant(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs at least one item");
        let zetan = Self::zeta(items, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; sampled approximation for large n (the sum
        // converges and YCSB itself memoises known values).
        if n <= 1_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=1_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // Integral approximation of the tail.
            let a = 1_000_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Draws the next rank (0 = most popular).
    pub fn next(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// The zeta(2, θ) constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// Zipfian ranks scattered uniformly over the key space, so popularity is
/// not correlated with insertion order (YCSB's `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Builds a scrambled generator over `items` keys.
    pub fn new(items: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(items),
        }
    }

    /// Draws the next key index in `[0, items)`.
    pub fn next(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        let rank = self.inner.next(rng);
        fnv64(rank) % self.inner.items()
    }
}

/// FNV-1a over the rank's bytes (YCSB's scramble hash).
pub fn fnv64(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// When requests are *issued*, independent of when they complete.
///
/// Closed-loop clients send the next request the moment the previous one
/// returns, so a slow server silently throttles the offered load and the
/// measured latency distribution suffers from coordinated omission. The two
/// open-loop variants instead draw inter-arrival gaps from the deterministic
/// sim RNG: the schedule — not the server — decides when each request
/// leaves, and latency can be measured from the *intended* arrival time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalSchedule {
    /// Back-to-back requests; the server's speed sets the rate.
    ClosedLoop,
    /// Deterministic arrivals every `1/rate_per_sec` seconds.
    FixedRate {
        /// Arrivals per second.
        rate_per_sec: f64,
    },
    /// Poisson process: exponentially distributed inter-arrival gaps with
    /// mean `1/rate_per_sec` (the standard open-system model).
    Poisson {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
}

impl ArrivalSchedule {
    /// Whether arrivals are scheduled independently of completions.
    pub fn is_open_loop(&self) -> bool {
        !matches!(self, ArrivalSchedule::ClosedLoop)
    }

    /// The aggregate offered rate, when one is defined.
    pub fn rate_per_sec(&self) -> Option<f64> {
        match *self {
            ArrivalSchedule::ClosedLoop => None,
            ArrivalSchedule::FixedRate { rate_per_sec }
            | ArrivalSchedule::Poisson { rate_per_sec } => Some(rate_per_sec),
        }
    }

    /// Splits an aggregate schedule evenly across `clients` threads (the
    /// superposition of independent Poisson streams is Poisson, so per-client
    /// thinning preserves the aggregate process).
    pub fn per_client(&self, clients: usize) -> ArrivalSchedule {
        let clients = clients.max(1) as f64;
        match *self {
            ArrivalSchedule::ClosedLoop => ArrivalSchedule::ClosedLoop,
            ArrivalSchedule::FixedRate { rate_per_sec } => ArrivalSchedule::FixedRate {
                rate_per_sec: rate_per_sec / clients,
            },
            ArrivalSchedule::Poisson { rate_per_sec } => ArrivalSchedule::Poisson {
                rate_per_sec: rate_per_sec / clients,
            },
        }
    }

    /// Draws the next inter-arrival gap in nanoseconds (`None` for
    /// closed-loop, where the previous completion is the trigger).
    pub fn next_gap_ns(&self, rng: &mut Xoshiro256StarStar) -> Option<u64> {
        match *self {
            ArrivalSchedule::ClosedLoop => None,
            ArrivalSchedule::FixedRate { rate_per_sec } => Some(gap_ns(1.0, rate_per_sec)),
            ArrivalSchedule::Poisson { rate_per_sec } => {
                // Inverse-CDF sample of Exp(rate): gap = -ln(1-u)/rate.
                // `next_f64` is in [0, 1), so 1-u is in (0, 1] and the log
                // is finite.
                let u = rng.next_f64();
                Some(gap_ns(-(1.0 - u).ln(), rate_per_sec))
            }
        }
    }
}

fn gap_ns(units: f64, rate_per_sec: f64) -> u64 {
    assert!(
        rate_per_sec > 0.0 && rate_per_sec.is_finite(),
        "open-loop rate must be positive and finite, got {rate_per_sec}"
    );
    (units * 1e9 / rate_per_sec).round() as u64
}

/// How request keys are chosen.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Uniform over the current key count.
    Uniform,
    /// Scrambled zipfian over the loaded key count.
    Zipfian(ScrambledZipfian),
    /// Skewed towards the most recently inserted keys (workload D).
    Latest(Zipfian),
}

impl KeyChooser {
    /// Picks a key index given the current number of keys.
    pub fn next(&self, rng: &mut Xoshiro256StarStar, current_keys: u64) -> u64 {
        match self {
            KeyChooser::Uniform => rng.next_below(current_keys.max(1)),
            KeyChooser::Zipfian(z) => z.next(rng),
            KeyChooser::Latest(z) => {
                let back = z.next(rng).min(current_keys.saturating_sub(1));
                current_keys - 1 - back
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(42)
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::new(1000);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.next(&mut r) < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(10_000);
        let mut r = rng();
        let mut top10 = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if z.next(&mut r) < 10 {
                top10 += 1;
            }
        }
        // With θ=0.99 over 10k items, the top-10 ranks get roughly a third
        // of the traffic; uniform would give 0.1%.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.15, "zipfian not skewed enough: {frac}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1000);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(z.next(&mut r));
        }
        // The hottest scrambled keys should not all be clustered at index 0.
        assert!(seen.iter().any(|&k| k > 500));
        assert!(seen.len() > 50);
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let chooser = KeyChooser::Latest(Zipfian::new(1000));
        let mut r = rng();
        let mut recent = 0;
        let n = 10_000;
        for _ in 0..n {
            let k = chooser.next(&mut r, 1000);
            assert!(k < 1000);
            if k >= 990 {
                recent += 1;
            }
        }
        assert!(recent as f64 / n as f64 > 0.2, "latest not recency-skewed");
    }

    #[test]
    fn uniform_covers_space() {
        let chooser = KeyChooser::Uniform;
        let mut r = rng();
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[(chooser.next(&mut r, 1000) / 100) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 700, "uniform bucket too small: {b}");
        }
    }

    #[test]
    fn single_item_zipfian_works() {
        let z = Zipfian::new(1);
        let mut r = rng();
        assert_eq!(z.next(&mut r), 0);
    }

    #[test]
    fn fixed_rate_gaps_are_exact() {
        let s = ArrivalSchedule::FixedRate {
            rate_per_sec: 2_000.0,
        };
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(s.next_gap_ns(&mut r), Some(500_000));
        }
        assert!(s.is_open_loop());
        assert_eq!(s.rate_per_sec(), Some(2_000.0));
    }

    #[test]
    fn poisson_gaps_have_the_right_mean() {
        let rate = 10_000.0;
        let s = ArrivalSchedule::Poisson { rate_per_sec: rate };
        let mut r = rng();
        let n = 100_000;
        let total: u64 = (0..n).map(|_| s.next_gap_ns(&mut r).unwrap()).sum();
        let mean = total as f64 / n as f64;
        let expected = 1e9 / rate;
        // 100k exponential samples: the sample mean is within a few percent.
        assert!(
            (mean - expected).abs() / expected < 0.05,
            "mean gap {mean} vs expected {expected}"
        );
    }

    #[test]
    fn poisson_gaps_are_deterministic_per_seed() {
        let s = ArrivalSchedule::Poisson {
            rate_per_sec: 500.0,
        };
        let mut a = Xoshiro256StarStar::new(9);
        let mut b = Xoshiro256StarStar::new(9);
        for _ in 0..100 {
            assert_eq!(s.next_gap_ns(&mut a), s.next_gap_ns(&mut b));
        }
    }

    #[test]
    fn per_client_splits_the_aggregate_rate() {
        let s = ArrivalSchedule::Poisson {
            rate_per_sec: 8_000.0,
        };
        assert_eq!(s.per_client(4).rate_per_sec(), Some(2_000.0));
        assert_eq!(s.per_client(0).rate_per_sec(), Some(8_000.0));
        assert_eq!(
            ArrivalSchedule::ClosedLoop.per_client(4),
            ArrivalSchedule::ClosedLoop
        );
        assert_eq!(ArrivalSchedule::ClosedLoop.next_gap_ns(&mut rng()), None);
        assert!(!ArrivalSchedule::ClosedLoop.is_open_loop());
    }
}
