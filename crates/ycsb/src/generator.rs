//! Request-distribution generators (uniform, zipfian, scrambled, latest).

use sim::Xoshiro256StarStar;

/// The standard YCSB zipfian constant.
pub const ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipfian generator over `[0, n)` (Gray et al., "Quickly generating
/// billion-record synthetic databases" — the algorithm YCSB uses).
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    zeta2theta: f64,
}

impl Zipfian {
    /// Builds a generator over `items` elements with the standard constant.
    pub fn new(items: u64) -> Self {
        Self::with_constant(items, ZIPFIAN_CONSTANT)
    }

    /// Builds a generator with an explicit skew constant.
    pub fn with_constant(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs at least one item");
        let zetan = Self::zeta(items, theta);
        let zeta2theta = Self::zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / items as f64).powf(1.0 - theta)) / (1.0 - zeta2theta / zetan);
        Zipfian {
            items,
            theta,
            alpha,
            zetan,
            eta,
            zeta2theta,
        }
    }

    fn zeta(n: u64, theta: f64) -> f64 {
        // Exact for small n; sampled approximation for large n (the sum
        // converges and YCSB itself memoises known values).
        if n <= 1_000_000 {
            (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
        } else {
            let head: f64 = (1..=1_000_000u64)
                .map(|i| 1.0 / (i as f64).powf(theta))
                .sum();
            // Integral approximation of the tail.
            let a = 1_000_000f64;
            let b = n as f64;
            head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
        }
    }

    /// Number of items.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Draws the next rank (0 = most popular).
    pub fn next(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        let u = rng.next_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }

    /// The zeta(2, θ) constant (exposed for tests).
    pub fn zeta2(&self) -> f64 {
        self.zeta2theta
    }
}

/// Zipfian ranks scattered uniformly over the key space, so popularity is
/// not correlated with insertion order (YCSB's `ScrambledZipfianGenerator`).
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    inner: Zipfian,
}

impl ScrambledZipfian {
    /// Builds a scrambled generator over `items` keys.
    pub fn new(items: u64) -> Self {
        ScrambledZipfian {
            inner: Zipfian::new(items),
        }
    }

    /// Draws the next key index in `[0, items)`.
    pub fn next(&self, rng: &mut Xoshiro256StarStar) -> u64 {
        let rank = self.inner.next(rng);
        fnv64(rank) % self.inner.items()
    }
}

/// FNV-1a over the rank's bytes (YCSB's scramble hash).
pub fn fnv64(v: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in v.to_le_bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// How request keys are chosen.
#[derive(Debug, Clone)]
pub enum KeyChooser {
    /// Uniform over the current key count.
    Uniform,
    /// Scrambled zipfian over the loaded key count.
    Zipfian(ScrambledZipfian),
    /// Skewed towards the most recently inserted keys (workload D).
    Latest(Zipfian),
}

impl KeyChooser {
    /// Picks a key index given the current number of keys.
    pub fn next(&self, rng: &mut Xoshiro256StarStar, current_keys: u64) -> u64 {
        match self {
            KeyChooser::Uniform => rng.next_below(current_keys.max(1)),
            KeyChooser::Zipfian(z) => z.next(rng),
            KeyChooser::Latest(z) => {
                let back = z.next(rng).min(current_keys.saturating_sub(1));
                current_keys - 1 - back
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::new(42)
    }

    #[test]
    fn zipfian_stays_in_range() {
        let z = Zipfian::new(1000);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(z.next(&mut r) < 1000);
        }
    }

    #[test]
    fn zipfian_is_skewed_toward_low_ranks() {
        let z = Zipfian::new(10_000);
        let mut r = rng();
        let mut top10 = 0u32;
        let n = 50_000;
        for _ in 0..n {
            if z.next(&mut r) < 10 {
                top10 += 1;
            }
        }
        // With θ=0.99 over 10k items, the top-10 ranks get roughly a third
        // of the traffic; uniform would give 0.1%.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.15, "zipfian not skewed enough: {frac}");
    }

    #[test]
    fn scrambled_zipfian_spreads_hot_keys() {
        let z = ScrambledZipfian::new(1000);
        let mut r = rng();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(z.next(&mut r));
        }
        // The hottest scrambled keys should not all be clustered at index 0.
        assert!(seen.iter().any(|&k| k > 500));
        assert!(seen.len() > 50);
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let chooser = KeyChooser::Latest(Zipfian::new(1000));
        let mut r = rng();
        let mut recent = 0;
        let n = 10_000;
        for _ in 0..n {
            let k = chooser.next(&mut r, 1000);
            assert!(k < 1000);
            if k >= 990 {
                recent += 1;
            }
        }
        assert!(recent as f64 / n as f64 > 0.2, "latest not recency-skewed");
    }

    #[test]
    fn uniform_covers_space() {
        let chooser = KeyChooser::Uniform;
        let mut r = rng();
        let mut buckets = [0u32; 10];
        for _ in 0..10_000 {
            buckets[(chooser.next(&mut r, 1000) / 100) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 700, "uniform bucket too small: {b}");
        }
    }

    #[test]
    fn single_item_zipfian_works() {
        let z = Zipfian::new(1);
        let mut r = rng();
        assert_eq!(z.next(&mut r), 0);
    }
}
