//! Benchmark runners: load phase, closed-loop run phase, and an open-loop
//! run phase with coordinated-omission-corrected latencies.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apps::KvApp;
use sim::{ThroughputSampler, Xoshiro256StarStar};
use telemetry::{HistHandle, Histogram, Summary};

use crate::generator::ArrivalSchedule;
use crate::workload::{key_of, value_of, OpKind, Workload};

/// Parameters of the load phase.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of records to insert.
    pub record_count: u64,
    /// Value size in bytes (the paper uses 100 B with 24 B keys).
    pub value_size: usize,
    /// Loader threads.
    pub threads: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            record_count: 10_000,
            value_size: 100,
            threads: 4,
        }
    }
}

/// Parameters of the run phase.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Client threads (the paper uses 20 for RocksDB/Redis, 1 for SQLite).
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Value size for updates/inserts.
    pub value_size: usize,
    /// Optional real-time throughput sampling window (Figure 12).
    pub sample_window: Option<Duration>,
    /// RNG seed (distributions are deterministic given the seed).
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            threads: 4,
            duration: Duration::from_secs(1),
            value_size: 100,
            sample_window: None,
            seed: 0xC0FFEE,
        }
    }
}

/// Results of a run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workload name.
    pub workload: String,
    /// Operations completed.
    pub ops: u64,
    /// Failed operations (should be 0).
    pub errors: u64,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// Latency summary across all operations (nanoseconds).
    pub latency: Summary,
    /// Read-only latency summary.
    pub read_latency: Summary,
    /// Write (update/insert/RMW) latency summary.
    pub write_latency: Summary,
    /// Real-time throughput series, when sampling was enabled.
    pub series: Vec<(f64, f64)>,
}

impl Report {
    /// Throughput in thousands of operations per second (the paper's unit).
    pub fn kops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e3
    }

    /// One-line summary for harness output.
    pub fn line(&self) -> String {
        format!(
            "{:<12} {:>9.1} KOps/s  avg {:>8.1} µs  p99 {:>9.1} µs  ops {:>9}  errs {}",
            self.workload,
            self.kops(),
            self.latency.mean_us(),
            self.latency.p99_ns as f64 / 1e3,
            self.ops,
            self.errors
        )
    }
}

/// Parameters of an open-loop run.
///
/// Unlike [`RunSpec`], the offered load is an input: `schedule` carries the
/// aggregate arrival rate, split evenly across `clients` threads. Each
/// client draws its own inter-arrival gaps from the deterministic sim RNG
/// and issues every scheduled request even when it is already late — a
/// request that had to wait behind a slow predecessor is charged that wait
/// in its *corrected* latency, which is what closed-loop measurement omits.
#[derive(Clone)]
pub struct OpenLoopSpec {
    /// Concurrent client threads sharing the offered load.
    pub clients: usize,
    /// Scheduling horizon: arrivals are generated for this long.
    pub duration: Duration,
    /// Value size for updates/inserts.
    pub value_size: usize,
    /// Aggregate arrival schedule (must be open-loop).
    pub schedule: ArrivalSchedule,
    /// RNG seed (arrival gaps and key choices are deterministic given it).
    pub seed: u64,
    /// Extra wall-clock grace past `duration` to drain the backlog before
    /// the remaining scheduled requests are counted as abandoned. Keeps a
    /// hopelessly overloaded run from running forever while still reporting
    /// honestly that it could not serve the offered load.
    pub max_overrun: Duration,
    /// Optional telemetry histogram that also receives every corrected
    /// latency (so an SLO can watch the client-observed distribution live).
    pub sink: Option<HistHandle>,
}

impl Default for OpenLoopSpec {
    fn default() -> Self {
        OpenLoopSpec {
            clients: 4,
            duration: Duration::from_secs(1),
            value_size: 100,
            schedule: ArrivalSchedule::Poisson {
                rate_per_sec: 10_000.0,
            },
            seed: 0xC0FFEE,
            max_overrun: Duration::from_secs(2),
            sink: None,
        }
    }
}

/// Results of an open-loop run.
///
/// Latencies are kept as full [`Histogram`]s (not [`Summary`]s) so callers
/// can extract arbitrary quantiles — p999 tails are the entire point of
/// latency-under-load measurement.
#[derive(Debug, Clone)]
pub struct OpenLoopReport {
    /// Workload name.
    pub workload: String,
    /// Operations issued and completed.
    pub ops: u64,
    /// Failed operations (should be 0).
    pub errors: u64,
    /// Requests scheduled before the horizon but never issued because the
    /// run overran `duration + max_overrun`. Non-zero means the offered
    /// load exceeded capacity by more than the grace period could drain.
    pub abandoned: u64,
    /// Wall-clock time from start to last completion.
    pub elapsed: Duration,
    /// Offered load actually scheduled, in ops/sec.
    pub offered_rate: f64,
    /// Coordinated-omission-corrected latency: completion minus *intended*
    /// arrival, including any wait behind earlier requests.
    pub corrected: Histogram,
    /// Service latency: completion minus actual issue time.
    pub service: Histogram,
    /// Corrected latency of reads only.
    pub corrected_reads: Histogram,
    /// Corrected latency of writes (update/insert/RMW) only.
    pub corrected_writes: Histogram,
}

impl OpenLoopReport {
    /// Completions per second over the run.
    pub fn achieved_rate(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// One-line summary for harness output.
    pub fn line(&self) -> String {
        format!(
            "{:<12} offered {:>9.0}/s achieved {:>9.0}/s  corrected p50 {:>8.1} µs p99 {:>9.1} µs  service p99 {:>9.1} µs  abandoned {}",
            self.workload,
            self.offered_rate,
            self.achieved_rate(),
            self.corrected.percentile(50.0).unwrap_or(0) as f64 / 1e3,
            self.corrected.percentile(99.0).unwrap_or(0) as f64 / 1e3,
            self.service.percentile(99.0).unwrap_or(0) as f64 / 1e3,
            self.abandoned,
        )
    }
}

/// Drives a [`KvApp`] with YCSB workloads.
pub struct Runner;

impl Runner {
    /// Loads `spec.record_count` records (`user…` keys, fixed-size values).
    pub fn load(app: &dyn KvApp, spec: &LoadSpec) -> Result<(), apps::AppError> {
        let next = AtomicU64::new(0);
        let error: parking_lot::Mutex<Option<apps::AppError>> = parking_lot::Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..spec.threads.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= spec.record_count || error.lock().is_some() {
                        return;
                    }
                    if let Err(e) = app.insert(&key_of(i), &value_of(i, spec.value_size)) {
                        *error.lock() = Some(e);
                        return;
                    }
                });
            }
        });
        match error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs `workload` for `spec.duration`, returning the merged report.
    ///
    /// `loaded` is the number of records present from the load phase;
    /// inserts (workload D) extend the key space atomically across threads.
    pub fn run(app: &dyn KvApp, workload: &Workload, loaded: u64, spec: &RunSpec) -> Report {
        let stop = AtomicBool::new(false);
        let key_count = AtomicU64::new(loaded);
        let sampler = spec.sample_window.map(|w| {
            Arc::new(ThroughputSampler::new(
                w,
                spec.duration + Duration::from_secs(1),
            ))
        });
        struct ThreadOut {
            all: Histogram,
            reads: Histogram,
            writes: Histogram,
            ops: u64,
            errors: u64,
        }
        let start = Instant::now();
        let outs: Vec<ThreadOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..spec.threads.max(1) {
                let stop = &stop;
                let key_count = &key_count;
                let sampler = sampler.clone();
                handles.push(scope.spawn(move || {
                    let mut rng =
                        Xoshiro256StarStar::new(spec.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    let mut out = ThreadOut {
                        all: Histogram::new(),
                        reads: Histogram::new(),
                        writes: Histogram::new(),
                        ops: 0,
                        errors: 0,
                    };
                    // Updates must write *fresh* values (YCSB generates a
                    // new random field per update); a counter salt keeps the
                    // generation deterministic without repeating bytes.
                    let mut update_salt: u64 = (t as u64) << 48;
                    while !stop.load(Ordering::Relaxed) {
                        let op = workload.next_op(&mut rng);
                        let current = key_count.load(Ordering::Relaxed);
                        let sw = Instant::now();
                        let result = match op {
                            OpKind::Read => {
                                let k = workload.chooser.next(&mut rng, current);
                                app.read(&key_of(k)).map(|_| ())
                            }
                            OpKind::Update => {
                                let k = workload.chooser.next(&mut rng, current);
                                update_salt += 1;
                                app.update(&key_of(k), &value_of(k ^ update_salt, spec.value_size))
                            }
                            OpKind::Insert => {
                                let k = key_count.fetch_add(1, Ordering::Relaxed);
                                app.insert(&key_of(k), &value_of(k, spec.value_size))
                            }
                            OpKind::ReadModifyWrite => {
                                let k = workload.chooser.next(&mut rng, current);
                                update_salt += 1;
                                app.read_modify_write(
                                    &key_of(k),
                                    &value_of(k ^ update_salt, spec.value_size),
                                )
                            }
                        };
                        let elapsed = sw.elapsed().as_nanos() as u64;
                        out.all.record(elapsed);
                        match op {
                            OpKind::Read => out.reads.record(elapsed),
                            _ => out.writes.record(elapsed),
                        }
                        out.ops += 1;
                        if result.is_err() {
                            out.errors += 1;
                        }
                        if let Some(s) = &sampler {
                            s.record();
                        }
                    }
                    out
                }));
            }
            // Timekeeper.
            std::thread::sleep(spec.duration);
            stop.store(true, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        let elapsed = start.elapsed();

        let mut all = Histogram::new();
        let mut reads = Histogram::new();
        let mut writes = Histogram::new();
        let mut ops = 0;
        let mut errors = 0;
        for o in outs {
            all.merge(&o.all);
            reads.merge(&o.reads);
            writes.merge(&o.writes);
            ops += o.ops;
            errors += o.errors;
        }
        Report {
            workload: workload.name.to_string(),
            ops,
            errors,
            elapsed,
            latency: all.summary(),
            read_latency: reads.summary(),
            write_latency: writes.summary(),
            series: sampler.map(|s| s.series()).unwrap_or_default(),
        }
    }

    /// Runs `workload` open-loop at the offered rate in `spec.schedule`.
    ///
    /// Each client thread walks its own intended-arrival clock: gaps come
    /// from the schedule, late requests are issued immediately (never
    /// skipped), and every corrected latency is measured from the intended
    /// arrival — the coordinated-omission correction. The per-thread
    /// backlog models a FIFO queue in front of the server.
    ///
    /// # Panics
    ///
    /// Panics if `spec.schedule` is [`ArrivalSchedule::ClosedLoop`]; use
    /// [`Runner::run`] for closed-loop measurement.
    pub fn run_open_loop(
        app: &dyn KvApp,
        workload: &Workload,
        loaded: u64,
        spec: &OpenLoopSpec,
    ) -> OpenLoopReport {
        assert!(
            spec.schedule.is_open_loop(),
            "run_open_loop needs a FixedRate or Poisson schedule"
        );
        let clients = spec.clients.max(1);
        let per_client = spec.schedule.per_client(clients);
        let key_count = AtomicU64::new(loaded);
        let horizon_ns = spec.duration.as_nanos() as u64;
        let overrun_deadline = spec.duration + spec.max_overrun;

        struct ThreadOut {
            corrected: Histogram,
            service: Histogram,
            reads: Histogram,
            writes: Histogram,
            ops: u64,
            errors: u64,
            abandoned: u64,
        }
        let start = Instant::now();
        let outs: Vec<ThreadOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..clients {
                let key_count = &key_count;
                let sink = spec.sink.clone();
                handles.push(scope.spawn(move || {
                    let mut rng =
                        Xoshiro256StarStar::new(spec.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    let mut out = ThreadOut {
                        corrected: Histogram::new(),
                        service: Histogram::new(),
                        reads: Histogram::new(),
                        writes: Histogram::new(),
                        ops: 0,
                        errors: 0,
                        abandoned: 0,
                    };
                    let mut update_salt: u64 = (t as u64) << 48;
                    let gap = |rng: &mut Xoshiro256StarStar| {
                        per_client.next_gap_ns(rng).expect("open-loop schedule")
                    };
                    let mut intended_ns = gap(&mut rng);
                    while intended_ns < horizon_ns {
                        if start.elapsed() > overrun_deadline {
                            // Hopelessly behind the schedule: stop issuing
                            // and count the rest of the horizon honestly.
                            out.abandoned += 1;
                            while {
                                intended_ns = intended_ns.saturating_add(gap(&mut rng));
                                intended_ns < horizon_ns
                            } {
                                out.abandoned += 1;
                            }
                            break;
                        }
                        wait_until(start, Duration::from_nanos(intended_ns));
                        let op = workload.next_op(&mut rng);
                        let current = key_count.load(Ordering::Relaxed);
                        let sw = Instant::now();
                        let result = match op {
                            OpKind::Read => {
                                let k = workload.chooser.next(&mut rng, current);
                                app.read(&key_of(k)).map(|_| ())
                            }
                            OpKind::Update => {
                                let k = workload.chooser.next(&mut rng, current);
                                update_salt += 1;
                                app.update(&key_of(k), &value_of(k ^ update_salt, spec.value_size))
                            }
                            OpKind::Insert => {
                                let k = key_count.fetch_add(1, Ordering::Relaxed);
                                app.insert(&key_of(k), &value_of(k, spec.value_size))
                            }
                            OpKind::ReadModifyWrite => {
                                let k = workload.chooser.next(&mut rng, current);
                                update_salt += 1;
                                app.read_modify_write(
                                    &key_of(k),
                                    &value_of(k ^ update_salt, spec.value_size),
                                )
                            }
                        };
                        let service_ns = sw.elapsed().as_nanos() as u64;
                        let done_ns = start.elapsed().as_nanos() as u64;
                        let corrected_ns = done_ns.saturating_sub(intended_ns);
                        out.corrected.record(corrected_ns);
                        out.service.record(service_ns);
                        match op {
                            OpKind::Read => out.reads.record(corrected_ns),
                            _ => out.writes.record(corrected_ns),
                        }
                        if let Some(sink) = &sink {
                            sink.record(corrected_ns);
                        }
                        out.ops += 1;
                        if result.is_err() {
                            out.errors += 1;
                        }
                        intended_ns = intended_ns.saturating_add(gap(&mut rng));
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("open-loop client"))
                .collect()
        });
        let elapsed = start.elapsed();

        let mut corrected = Histogram::new();
        let mut service = Histogram::new();
        let mut reads = Histogram::new();
        let mut writes = Histogram::new();
        let (mut ops, mut errors, mut abandoned) = (0, 0, 0);
        for o in outs {
            corrected.merge(&o.corrected);
            service.merge(&o.service);
            reads.merge(&o.reads);
            writes.merge(&o.writes);
            ops += o.ops;
            errors += o.errors;
            abandoned += o.abandoned;
        }
        OpenLoopReport {
            workload: workload.name.to_string(),
            ops,
            errors,
            abandoned,
            elapsed,
            offered_rate: (ops + abandoned) as f64 / spec.duration.as_secs_f64().max(1e-9),
            corrected,
            service,
            corrected_reads: reads,
            corrected_writes: writes,
        }
    }
}

/// Sleeps (coarsely) then spins (precisely) until `start + intended`.
///
/// OS sleep overshoots by tens of microseconds; raw spinning burns a core
/// per client. Sleeping short of the target and spinning the rest keeps
/// intended arrival times accurate without pegging the CPU between them.
fn wait_until(start: Instant, intended: Duration) {
    loop {
        let now = start.elapsed();
        if now >= intended {
            return;
        }
        let remaining = intended - now;
        if remaining > Duration::from_micros(200) {
            std::thread::sleep(remaining - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use apps::AppError;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// A trivial in-memory KvApp for runner tests.
    struct MemApp {
        map: Mutex<HashMap<String, Vec<u8>>>,
    }

    impl MemApp {
        fn new() -> Self {
            MemApp {
                map: Mutex::new(HashMap::new()),
            }
        }
    }

    impl KvApp for MemApp {
        fn insert(&self, key: &str, value: &[u8]) -> Result<(), AppError> {
            self.map.lock().insert(key.to_string(), value.to_vec());
            Ok(())
        }
        fn update(&self, key: &str, value: &[u8]) -> Result<(), AppError> {
            self.insert(key, value)
        }
        fn read(&self, key: &str) -> Result<Option<Vec<u8>>, AppError> {
            Ok(self.map.lock().get(key).cloned())
        }
    }

    #[test]
    fn load_inserts_exactly_record_count() {
        let app = MemApp::new();
        let spec = LoadSpec {
            record_count: 500,
            value_size: 16,
            threads: 4,
        };
        Runner::load(&app, &spec).unwrap();
        assert_eq!(app.map.lock().len(), 500);
        assert!(app.map.lock().contains_key(&key_of(499)));
    }

    #[test]
    fn run_produces_consistent_report() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 100,
                value_size: 16,
                threads: 2,
            },
        )
        .unwrap();
        let w = Workload::a(100);
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(150),
            value_size: 16,
            sample_window: None,
            seed: 7,
        };
        let report = Runner::run(&app, &w, 100, &spec);
        assert!(report.ops > 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count, report.ops);
        assert!(report.kops() > 0.0);
        assert!(!report.line().is_empty());
    }

    #[test]
    fn workload_d_grows_keyspace() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 50,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::d(50);
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(150),
            value_size: 8,
            sample_window: None,
            seed: 11,
        };
        let _ = Runner::run(&app, &w, 50, &spec);
        assert!(
            app.map.lock().len() > 50,
            "inserts should extend the keyspace"
        );
    }

    #[test]
    fn sampler_series_populated_when_enabled() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 10,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::c(10);
        let spec = RunSpec {
            threads: 1,
            duration: Duration::from_millis(120),
            value_size: 8,
            sample_window: Some(Duration::from_millis(10)),
            seed: 3,
        };
        let report = Runner::run(&app, &w, 10, &spec);
        assert!(!report.series.is_empty());
        let total: f64 = report.series.iter().map(|(_, ops)| ops * 0.01).sum();
        assert!((total - report.ops as f64).abs() < report.ops as f64 * 0.1 + 10.0);
    }

    /// A KvApp that takes a fixed amount of wall-clock time per operation —
    /// a server with a known capacity, for overload tests.
    struct SlowApp {
        inner: MemApp,
        per_op: Duration,
    }

    impl KvApp for SlowApp {
        fn insert(&self, key: &str, value: &[u8]) -> Result<(), AppError> {
            std::thread::sleep(self.per_op);
            self.inner.insert(key, value)
        }
        fn update(&self, key: &str, value: &[u8]) -> Result<(), AppError> {
            std::thread::sleep(self.per_op);
            self.inner.update(key, value)
        }
        fn read(&self, key: &str) -> Result<Option<Vec<u8>>, AppError> {
            std::thread::sleep(self.per_op);
            self.inner.read(key)
        }
    }

    #[test]
    fn open_loop_tracks_the_offered_rate() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 100,
                value_size: 16,
                threads: 2,
            },
        )
        .unwrap();
        let w = Workload::a(100);
        let spec = OpenLoopSpec {
            clients: 2,
            duration: Duration::from_millis(250),
            value_size: 16,
            schedule: ArrivalSchedule::FixedRate {
                rate_per_sec: 2_000.0,
            },
            seed: 5,
            ..OpenLoopSpec::default()
        };
        let report = Runner::run_open_loop(&app, &w, 100, &spec);
        // 2000/s for 250ms ≈ 500 ops; the app is near-instant, so nothing
        // is abandoned and the achieved rate tracks the offered rate.
        assert_eq!(report.abandoned, 0);
        assert_eq!(report.errors, 0);
        assert!(
            (400..=520).contains(&report.ops),
            "ops={} not near 500",
            report.ops
        );
        assert_eq!(report.corrected.count(), report.ops);
        assert_eq!(report.service.count(), report.ops);
        assert_eq!(
            report.corrected_reads.count() + report.corrected_writes.count(),
            report.ops
        );
        assert!(report.offered_rate > 1_500.0, "{}", report.offered_rate);
        assert!(!report.line().is_empty());
    }

    #[test]
    fn open_loop_schedule_is_deterministic_per_seed() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 50,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::c(50);
        let spec = OpenLoopSpec {
            clients: 3,
            duration: Duration::from_millis(120),
            value_size: 8,
            schedule: ArrivalSchedule::Poisson {
                rate_per_sec: 5_000.0,
            },
            seed: 77,
            ..OpenLoopSpec::default()
        };
        let a = Runner::run_open_loop(&app, &w, 50, &spec);
        let b = Runner::run_open_loop(&app, &w, 50, &spec);
        // Arrival gaps come only from the seeded RNG, so the number of
        // *scheduled* requests (issued + abandoned) is timing-independent.
        assert_eq!(a.ops + a.abandoned, b.ops + b.abandoned);
    }

    #[test]
    fn overload_shows_up_in_corrected_latency_not_service_latency() {
        let app = SlowApp {
            inner: MemApp::new(),
            per_op: Duration::from_millis(2),
        };
        Runner::load(
            &app.inner,
            &LoadSpec {
                record_count: 50,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::c(50);
        // One client at 2ms/op serves ≤500/s; offer 4× that.
        let spec = OpenLoopSpec {
            clients: 1,
            duration: Duration::from_millis(300),
            value_size: 8,
            schedule: ArrivalSchedule::FixedRate {
                rate_per_sec: 2_000.0,
            },
            seed: 13,
            max_overrun: Duration::from_secs(5),
            sink: None,
        };
        let report = Runner::run_open_loop(&app, &w, 50, &spec);
        assert!(report.ops > 50);
        let service_p99 = report.service.percentile(99.0).unwrap();
        let corrected_p99 = report.corrected.percentile(99.0).unwrap();
        // Service time stays ~2ms; the corrected tail carries the queueing
        // delay of a 4×-overloaded server and must be far larger.
        assert!(service_p99 < 20_000_000, "service p99 {service_p99}");
        assert!(
            corrected_p99 > 4 * service_p99,
            "corrected p99 {corrected_p99} vs service {service_p99}"
        );
        assert!(report.achieved_rate() < report.offered_rate * 0.75);
    }

    #[test]
    fn open_loop_sink_receives_every_corrected_latency() {
        let tel = telemetry::Telemetry::new();
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 20,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::c(20);
        let spec = OpenLoopSpec {
            clients: 2,
            duration: Duration::from_millis(100),
            value_size: 8,
            schedule: ArrivalSchedule::Poisson {
                rate_per_sec: 3_000.0,
            },
            seed: 3,
            sink: Some(tel.histogram("client.corrected")),
            ..OpenLoopSpec::default()
        };
        let report = Runner::run_open_loop(&app, &w, 20, &spec);
        let (_, h) = tel
            .histograms_full()
            .into_iter()
            .find(|(n, _)| n == "client.corrected")
            .unwrap();
        assert_eq!(h.count(), report.ops);
    }
}
