//! Closed-loop benchmark runner: load phase + timed run phase.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apps::KvApp;
use sim::{ThroughputSampler, Xoshiro256StarStar};
use telemetry::{Histogram, Summary};

use crate::workload::{key_of, value_of, OpKind, Workload};

/// Parameters of the load phase.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Number of records to insert.
    pub record_count: u64,
    /// Value size in bytes (the paper uses 100 B with 24 B keys).
    pub value_size: usize,
    /// Loader threads.
    pub threads: usize,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            record_count: 10_000,
            value_size: 100,
            threads: 4,
        }
    }
}

/// Parameters of the run phase.
#[derive(Debug, Clone)]
pub struct RunSpec {
    /// Client threads (the paper uses 20 for RocksDB/Redis, 1 for SQLite).
    pub threads: usize,
    /// Wall-clock duration of the run.
    pub duration: Duration,
    /// Value size for updates/inserts.
    pub value_size: usize,
    /// Optional real-time throughput sampling window (Figure 12).
    pub sample_window: Option<Duration>,
    /// RNG seed (distributions are deterministic given the seed).
    pub seed: u64,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            threads: 4,
            duration: Duration::from_secs(1),
            value_size: 100,
            sample_window: None,
            seed: 0xC0FFEE,
        }
    }
}

/// Results of a run.
#[derive(Debug, Clone)]
pub struct Report {
    /// Workload name.
    pub workload: String,
    /// Operations completed.
    pub ops: u64,
    /// Failed operations (should be 0).
    pub errors: u64,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
    /// Latency summary across all operations (nanoseconds).
    pub latency: Summary,
    /// Read-only latency summary.
    pub read_latency: Summary,
    /// Write (update/insert/RMW) latency summary.
    pub write_latency: Summary,
    /// Real-time throughput series, when sampling was enabled.
    pub series: Vec<(f64, f64)>,
}

impl Report {
    /// Throughput in thousands of operations per second (the paper's unit).
    pub fn kops(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64() / 1e3
    }

    /// One-line summary for harness output.
    pub fn line(&self) -> String {
        format!(
            "{:<12} {:>9.1} KOps/s  avg {:>8.1} µs  p99 {:>9.1} µs  ops {:>9}  errs {}",
            self.workload,
            self.kops(),
            self.latency.mean_us(),
            self.latency.p99_ns as f64 / 1e3,
            self.ops,
            self.errors
        )
    }
}

/// Drives a [`KvApp`] with YCSB workloads.
pub struct Runner;

impl Runner {
    /// Loads `spec.record_count` records (`user…` keys, fixed-size values).
    pub fn load(app: &dyn KvApp, spec: &LoadSpec) -> Result<(), apps::AppError> {
        let next = AtomicU64::new(0);
        let error: parking_lot::Mutex<Option<apps::AppError>> = parking_lot::Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..spec.threads.max(1) {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= spec.record_count || error.lock().is_some() {
                        return;
                    }
                    if let Err(e) = app.insert(&key_of(i), &value_of(i, spec.value_size)) {
                        *error.lock() = Some(e);
                        return;
                    }
                });
            }
        });
        match error.into_inner() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Runs `workload` for `spec.duration`, returning the merged report.
    ///
    /// `loaded` is the number of records present from the load phase;
    /// inserts (workload D) extend the key space atomically across threads.
    pub fn run(app: &dyn KvApp, workload: &Workload, loaded: u64, spec: &RunSpec) -> Report {
        let stop = AtomicBool::new(false);
        let key_count = AtomicU64::new(loaded);
        let sampler = spec.sample_window.map(|w| {
            Arc::new(ThroughputSampler::new(
                w,
                spec.duration + Duration::from_secs(1),
            ))
        });
        struct ThreadOut {
            all: Histogram,
            reads: Histogram,
            writes: Histogram,
            ops: u64,
            errors: u64,
        }
        let start = Instant::now();
        let outs: Vec<ThreadOut> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for t in 0..spec.threads.max(1) {
                let stop = &stop;
                let key_count = &key_count;
                let sampler = sampler.clone();
                handles.push(scope.spawn(move || {
                    let mut rng =
                        Xoshiro256StarStar::new(spec.seed ^ (t as u64).wrapping_mul(0x9E37_79B9));
                    let mut out = ThreadOut {
                        all: Histogram::new(),
                        reads: Histogram::new(),
                        writes: Histogram::new(),
                        ops: 0,
                        errors: 0,
                    };
                    // Updates must write *fresh* values (YCSB generates a
                    // new random field per update); a counter salt keeps the
                    // generation deterministic without repeating bytes.
                    let mut update_salt: u64 = (t as u64) << 48;
                    while !stop.load(Ordering::Relaxed) {
                        let op = workload.next_op(&mut rng);
                        let current = key_count.load(Ordering::Relaxed);
                        let sw = Instant::now();
                        let result = match op {
                            OpKind::Read => {
                                let k = workload.chooser.next(&mut rng, current);
                                app.read(&key_of(k)).map(|_| ())
                            }
                            OpKind::Update => {
                                let k = workload.chooser.next(&mut rng, current);
                                update_salt += 1;
                                app.update(&key_of(k), &value_of(k ^ update_salt, spec.value_size))
                            }
                            OpKind::Insert => {
                                let k = key_count.fetch_add(1, Ordering::Relaxed);
                                app.insert(&key_of(k), &value_of(k, spec.value_size))
                            }
                            OpKind::ReadModifyWrite => {
                                let k = workload.chooser.next(&mut rng, current);
                                update_salt += 1;
                                app.read_modify_write(
                                    &key_of(k),
                                    &value_of(k ^ update_salt, spec.value_size),
                                )
                            }
                        };
                        let elapsed = sw.elapsed().as_nanos() as u64;
                        out.all.record(elapsed);
                        match op {
                            OpKind::Read => out.reads.record(elapsed),
                            _ => out.writes.record(elapsed),
                        }
                        out.ops += 1;
                        if result.is_err() {
                            out.errors += 1;
                        }
                        if let Some(s) = &sampler {
                            s.record();
                        }
                    }
                    out
                }));
            }
            // Timekeeper.
            std::thread::sleep(spec.duration);
            stop.store(true, Ordering::Relaxed);
            handles
                .into_iter()
                .map(|h| h.join().expect("worker"))
                .collect()
        });
        let elapsed = start.elapsed();

        let mut all = Histogram::new();
        let mut reads = Histogram::new();
        let mut writes = Histogram::new();
        let mut ops = 0;
        let mut errors = 0;
        for o in outs {
            all.merge(&o.all);
            reads.merge(&o.reads);
            writes.merge(&o.writes);
            ops += o.ops;
            errors += o.errors;
        }
        Report {
            workload: workload.name.to_string(),
            ops,
            errors,
            elapsed,
            latency: all.summary(),
            read_latency: reads.summary(),
            write_latency: writes.summary(),
            series: sampler.map(|s| s.series()).unwrap_or_default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use apps::AppError;
    use parking_lot::Mutex;
    use std::collections::HashMap;

    /// A trivial in-memory KvApp for runner tests.
    struct MemApp {
        map: Mutex<HashMap<String, Vec<u8>>>,
    }

    impl MemApp {
        fn new() -> Self {
            MemApp {
                map: Mutex::new(HashMap::new()),
            }
        }
    }

    impl KvApp for MemApp {
        fn insert(&self, key: &str, value: &[u8]) -> Result<(), AppError> {
            self.map.lock().insert(key.to_string(), value.to_vec());
            Ok(())
        }
        fn update(&self, key: &str, value: &[u8]) -> Result<(), AppError> {
            self.insert(key, value)
        }
        fn read(&self, key: &str) -> Result<Option<Vec<u8>>, AppError> {
            Ok(self.map.lock().get(key).cloned())
        }
    }

    #[test]
    fn load_inserts_exactly_record_count() {
        let app = MemApp::new();
        let spec = LoadSpec {
            record_count: 500,
            value_size: 16,
            threads: 4,
        };
        Runner::load(&app, &spec).unwrap();
        assert_eq!(app.map.lock().len(), 500);
        assert!(app.map.lock().contains_key(&key_of(499)));
    }

    #[test]
    fn run_produces_consistent_report() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 100,
                value_size: 16,
                threads: 2,
            },
        )
        .unwrap();
        let w = Workload::a(100);
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(150),
            value_size: 16,
            sample_window: None,
            seed: 7,
        };
        let report = Runner::run(&app, &w, 100, &spec);
        assert!(report.ops > 0);
        assert_eq!(report.errors, 0);
        assert_eq!(report.latency.count, report.ops);
        assert!(report.kops() > 0.0);
        assert!(!report.line().is_empty());
    }

    #[test]
    fn workload_d_grows_keyspace() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 50,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::d(50);
        let spec = RunSpec {
            threads: 2,
            duration: Duration::from_millis(150),
            value_size: 8,
            sample_window: None,
            seed: 11,
        };
        let _ = Runner::run(&app, &w, 50, &spec);
        assert!(
            app.map.lock().len() > 50,
            "inserts should extend the keyspace"
        );
    }

    #[test]
    fn sampler_series_populated_when_enabled() {
        let app = MemApp::new();
        Runner::load(
            &app,
            &LoadSpec {
                record_count: 10,
                value_size: 8,
                threads: 1,
            },
        )
        .unwrap();
        let w = Workload::c(10);
        let spec = RunSpec {
            threads: 1,
            duration: Duration::from_millis(120),
            value_size: 8,
            sample_window: Some(Duration::from_millis(10)),
            seed: 3,
        };
        let report = Runner::run(&app, &w, 10, &spec);
        assert!(!report.series.is_empty());
        let total: f64 = report.series.iter().map(|(_, ops)| ops * 0.01).sum();
        assert!((total - report.ops as f64).abs() < report.ops as f64 * 0.1 + 10.0);
    }
}
