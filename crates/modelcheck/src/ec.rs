//! Exhaustive model of the erasure-coded durability path.
//!
//! Abstraction (mirroring `ncl::file::flush_staged_ec` + `recover_ec`):
//!
//! * Writes are coalesced; the unit of the model is one **burst** — one
//!   fragment entry posted to each of the `n` peers plus one header write
//!   per peer, in QP order (entry before header, burst `b` before burst
//!   `b+1`). Bursts are abstract tokens; fragment contents are not modelled
//!   because the MDS property of the code is checked separately in
//!   `ncl::ec` — here a burst is *reconstructible* from a responder set iff
//!   at least `k` members hold its fragment entry.
//! * A peer's state is `(entries, headers)` — how many of the posted
//!   messages it has applied, with `headers <= entries` (in-order QP).
//!   A peer *serves* during recovery exactly what its **header** covers:
//!   the active-half fragments of bursts `<= headers` in the header's
//!   generation, plus (once flipped) every fragment of the previous
//!   generation via `prev_tail`.
//! * The spill tier is a three-step protocol: `spill_start` snapshots the
//!   acked prefix at a burst boundary, `snap_durable` lands it in the sink,
//!   and `gen_switch` flips the fragment area to the next generation —
//!   *only after* the snapshot is durable (the seeded
//!   [`EcBugMode::ResetBeforeSnapshot`] flips early).
//! * Acknowledgement requires header completions from **all** `n` peers
//!   (the seeded [`EcBugMode::AckAtK`] acks at `k`, which is exactly the
//!   classic erasure-coding mistake: `k` completions make a burst
//!   *readable today*, not *reconstructible after `n - k` failures*).
//!
//! The invariant checked at every reachable state: for **every** `k`-subset
//! of the live peers, running the recovery decode rule (max responder
//! generation `G`, durable snapshot for `G`, then a contiguous walk over
//! generations `G-1` and `G` requiring `>= k` fragment holders per burst)
//! recovers at least the acked prefix. With [`EcBugMode::None`] no
//! interleaving of bursts, deliveries, spills, generation switches, and
//! peer crashes violates it; both seeded bugs produce shortest-trace
//! counterexamples.

use std::collections::{HashMap, VecDeque};

use crate::model::{CheckResult, Violation};

/// Seeded bugs for the erasure-coded durability model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EcBugMode {
    /// The correct protocol.
    None,
    /// Acknowledge a burst once `k` (instead of all `n`) header
    /// completions arrive. Recovery from an unlucky `k`-subset of
    /// survivors then lacks the fragments to reconstruct an acked burst.
    AckAtK,
    /// Flip the fragment area to the next generation before the spill
    /// snapshot is durable. A crash after the flip strands the demoted
    /// prefix: the max-generation responders need `snapshot(G)`, which
    /// never landed.
    ResetBeforeSnapshot,
}

/// Bounds for the erasure-coded model exploration.
#[derive(Debug, Clone, Copy)]
pub struct EcModelConfig {
    /// Data fragments needed for reconstruction.
    pub k: usize,
    /// Total fragments (peers holding the log).
    pub n: usize,
    /// Bursts the writer may flush.
    pub max_bursts: u8,
    /// Peer crashes the adversary may inject.
    pub crash_budget: u8,
    /// Highest generation the spill tier may reach (so at most
    /// `max_gens` switches are explored).
    pub max_gens: u8,
    /// Seeded bug to inject.
    pub bug: EcBugMode,
    /// Safety valve on exploration size (0 = unbounded).
    pub max_states: usize,
}

impl Default for EcModelConfig {
    fn default() -> Self {
        EcModelConfig {
            k: 2,
            n: 3,
            max_bursts: 3,
            crash_budget: 1,
            max_gens: 2,
            bug: EcBugMode::None,
            max_states: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EcPeer {
    alive: bool,
    /// Fragment entries applied (bursts `1..=entries`).
    entries: u8,
    /// Header writes applied (`headers <= entries`).
    headers: u8,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct EcState {
    /// Bursts flushed to the wire.
    issued: u8,
    /// Writer's current generation.
    gen: u8,
    /// Generation each burst was posted under (`gen_of[b - 1]`).
    gen_of: Vec<u8>,
    /// In-flight spill: covered burst boundary + snapshot durability.
    /// Target generation is always `gen + 1`.
    spill: Option<(u8, bool)>,
    /// Durable snapshot boundary per generation (`snaps[g]`).
    snaps: Vec<Option<u8>>,
    peers: Vec<EcPeer>,
    crashes_left: u8,
}

impl EcState {
    fn initial(config: &EcModelConfig) -> Self {
        EcState {
            issued: 0,
            gen: 0,
            gen_of: Vec::new(),
            spill: None,
            snaps: vec![None; config.max_gens as usize + 1],
            peers: vec![
                EcPeer {
                    alive: true,
                    entries: 0,
                    headers: 0,
                };
                config.n
            ],
            crashes_left: config.crash_budget,
        }
    }

    /// Generation of the header a peer last applied (gen of its newest
    /// applied burst; a peer with no headers is still at generation 0).
    fn header_gen(&self, p: usize) -> u8 {
        let h = self.peers[p].headers;
        if h == 0 {
            0
        } else {
            self.gen_of[h as usize - 1]
        }
    }

    /// What the application believes is acked, derived from delivered
    /// header completions: the correct rule needs all `n`, the seeded
    /// [`EcBugMode::AckAtK`] stops at `k`. Completions delivered before a
    /// peer crashed still count (they reached the writer).
    fn acked(&self, config: &EcModelConfig) -> u8 {
        let mut hs: Vec<u8> = self.peers.iter().map(|p| p.headers).collect();
        hs.sort_unstable_by(|a, b| b.cmp(a));
        let need = match config.bug {
            EcBugMode::AckAtK => config.k,
            _ => config.n,
        };
        hs[need - 1]
    }

    /// Does responder `p` serve burst `b` when the decode walk targets
    /// `gmax`? Mirrors `recover_ec`'s serve rule: a responder at
    /// generation `gmax` serves its active half up to its *header* tail
    /// plus all of the previous generation via `prev_tail`; a responder
    /// one generation behind serves only its active half.
    fn serves(&self, p: usize, b: u8, gmax: u8) -> bool {
        let bg = self.gen_of[b as usize - 1];
        let pg = self.header_gen(p);
        if pg == gmax {
            (bg == gmax && b <= self.peers[p].headers) || (gmax > 0 && bg == gmax - 1)
        } else if pg + 1 == gmax {
            bg == gmax - 1 && b <= self.peers[p].headers
        } else {
            false
        }
    }
}

/// Runs the recovery decode rule for every `k`-subset of the live peers
/// and returns the first subset that loses acked data.
fn check_recovery(config: &EcModelConfig, st: &EcState) -> Option<String> {
    let acked = st.acked(config);
    if acked == 0 {
        return None;
    }
    let live: Vec<usize> = (0..config.n).filter(|&p| st.peers[p].alive).collect();
    if live.len() < config.k {
        // Fewer than `k` survivors: recovery legitimately reports
        // `QuorumUnavailable` — outside the durability contract.
        return None;
    }
    let mut combos: Vec<Vec<usize>> = Vec::new();
    fn rec(
        live: &[usize],
        k: usize,
        start: usize,
        cur: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..live.len() {
            cur.push(live[i]);
            rec(live, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut cur = Vec::new();
    rec(&live, config.k, 0, &mut cur, &mut combos);

    for responders in &combos {
        let gmax = responders
            .iter()
            .map(|&p| st.header_gen(p))
            .max()
            .expect("responders nonempty");
        // Base prefix: the durable snapshot for `gmax`. `recover_ec`
        // refuses to proceed without it — modelled as recovering nothing.
        let base = if gmax == 0 {
            0
        } else {
            match st.snaps[gmax as usize] {
                Some(seq) => seq,
                None => {
                    if acked > 0 {
                        return Some(format!(
                            "responders {responders:?} sit at generation {gmax} but \
                             snapshot({gmax}) never became durable; acked burst b{acked} lost"
                        ));
                    }
                    continue;
                }
            }
        };
        // Contiguous walk over generations `gmax-1` and `gmax`: burst
        // `b` extends the prefix iff at least `k` responders serve it.
        let mut recovered = base;
        while recovered < st.issued {
            let b = recovered + 1;
            let bg = st.gen_of[b as usize - 1];
            if bg + 1 < gmax || bg > gmax {
                break;
            }
            let holders = responders
                .iter()
                .filter(|&&p| st.serves(p, b, gmax))
                .count();
            if holders < config.k {
                break;
            }
            recovered = b;
        }
        if recovered < acked {
            return Some(format!(
                "acked burst lost: responders {responders:?} reconstruct only b{recovered} \
                 < acked b{acked} (gmax={gmax}, base=b{base})"
            ));
        }
    }
    None
}

type Successor = (String, EcState);

fn successors(config: &EcModelConfig, st: &EcState) -> Vec<Successor> {
    let mut out: Vec<Successor> = Vec::new();

    // --- Flush the next burst under the writer's current generation. ---
    if st.issued < config.max_bursts {
        let mut next = st.clone();
        next.issued += 1;
        next.gen_of.push(st.gen);
        out.push((format!("flush(b{},g{})", next.issued, st.gen), next));
    }

    // --- Message delivery: each live peer advances one message, entry
    // before header (QP order). ---
    for p in 0..config.n {
        let peer = st.peers[p];
        if !peer.alive {
            continue;
        }
        if peer.entries == peer.headers && peer.entries < st.issued {
            let mut next = st.clone();
            next.peers[p].entries += 1;
            out.push((format!("apply_entry(p{p},b{})", peer.entries + 1), next));
        } else if peer.headers < peer.entries {
            let mut next = st.clone();
            next.peers[p].headers += 1;
            out.push((format!("apply_header(p{p},b{})", peer.headers + 1), next));
        }
    }

    // --- Spill tier. ---
    if st.spill.is_none() && st.issued > 0 && st.gen < config.max_gens {
        let boundary_new = st
            .snaps
            .iter()
            .flatten()
            .copied()
            .max()
            .is_none_or(|s| st.issued > s);
        if boundary_new {
            let mut next = st.clone();
            next.spill = Some((st.issued, false));
            out.push((
                format!("spill_start(<=b{},g{})", st.issued, st.gen + 1),
                next,
            ));
        }
    }
    if let Some((seq, false)) = st.spill {
        let mut next = st.clone();
        next.spill = Some((seq, true));
        out.push((format!("snap_durable(<=b{seq})"), next));
    }
    if let Some((seq, durable)) = st.spill {
        // Correct protocol flips only once the snapshot is durable; the
        // seeded bug flips eagerly.
        if durable || config.bug == EcBugMode::ResetBeforeSnapshot {
            let mut next = st.clone();
            if durable {
                next.snaps[st.gen as usize + 1] = Some(seq);
            }
            next.gen += 1;
            next.spill = None;
            out.push((format!("gen_switch(g{},<=b{seq})", st.gen + 1), next));
        }
    }

    // --- Failures: region memory is DRAM; a crash loses it for good
    // (peer replacement is modelled in `model.rs`; here crashed peers
    // simply drop out of the recovery responder pool). ---
    if st.crashes_left > 0 {
        for p in 0..config.n {
            if st.peers[p].alive {
                let mut next = st.clone();
                next.peers[p].alive = false;
                next.crashes_left -= 1;
                out.push((format!("crash_peer(p{p})"), next));
            }
        }
    }

    out
}

/// Explores the erasure-coded model breadth-first, checking the
/// every-`k`-subset recovery invariant at each reachable state (the
/// application may crash anywhere), and reports the first violation with
/// its shortest trace.
pub fn check_ec(config: &EcModelConfig) -> CheckResult {
    assert!(config.k >= 1 && config.n > config.k, "need 1 <= k < n");
    let initial = EcState::initial(config);
    let mut index: HashMap<EcState, usize> = HashMap::new();
    let mut parents: Vec<(usize, String)> = Vec::new();
    let mut states: Vec<EcState> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    index.insert(initial.clone(), 0);
    states.push(initial);
    parents.push((usize::MAX, String::new()));
    queue.push_back(0);
    let mut transitions = 0usize;

    while let Some(cur) = queue.pop_front() {
        if config.max_states > 0 && states.len() >= config.max_states {
            break;
        }
        let st = states[cur].clone();
        // The application can crash at any reachable state; recovery is
        // the terminal check, so it is evaluated inline rather than as a
        // transition.
        if let Some(reason) = check_recovery(config, &st) {
            let mut trace = vec!["crash_app_and_recover".to_string()];
            let mut at = cur;
            while at != 0 {
                let (parent, label) = &parents[at];
                trace.push(label.clone());
                at = *parent;
            }
            trace.reverse();
            return CheckResult {
                states_explored: states.len(),
                transitions,
                violation: Some(Violation { reason, trace }),
            };
        }
        for (label, next) in successors(config, &st) {
            transitions += 1;
            if !index.contains_key(&next) {
                let id = states.len();
                index.insert(next.clone(), id);
                states.push(next);
                parents.push((cur, label));
                queue.push_back(id);
            }
        }
    }

    CheckResult {
        states_explored: states.len(),
        transitions,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec_correct_protocol_holds_for_2of3() {
        let result = check_ec(&EcModelConfig::default());
        assert!(
            result.violation.is_none(),
            "unexpected violation: {:?}",
            result.violation
        );
        assert!(result.states_explored > 1_000);
    }

    #[test]
    fn ec_correct_protocol_holds_for_2of4_with_two_crashes() {
        let config = EcModelConfig {
            k: 2,
            n: 4,
            max_bursts: 3,
            crash_budget: 2,
            ..Default::default()
        };
        let result = check_ec(&config);
        assert!(
            result.violation.is_none(),
            "unexpected violation: {:?}",
            result.violation
        );
    }

    #[test]
    fn ec_ack_at_k_bug_is_caught() {
        let config = EcModelConfig {
            bug: EcBugMode::AckAtK,
            ..Default::default()
        };
        let result = check_ec(&config);
        let v = result.violation.expect("ack-at-k must violate");
        assert!(
            v.reason.contains("acked burst lost"),
            "reason: {}",
            v.reason
        );
        // Shortest counterexample: flush one burst, deliver entry+header
        // to k peers, crash-free recovery from a subset holding < k
        // fragments of the acked burst.
        assert!(v.trace.len() <= 7, "trace not shortest: {:?}", v.trace);
    }

    #[test]
    fn ec_reset_before_snapshot_bug_is_caught() {
        let config = EcModelConfig {
            bug: EcBugMode::ResetBeforeSnapshot,
            ..Default::default()
        };
        let result = check_ec(&config);
        let v = result
            .violation
            .expect("reset-before-snapshot must violate");
        assert!(
            v.reason.contains("never became durable"),
            "reason: {}",
            v.reason
        );
        assert!(
            v.trace.iter().any(|l| l.starts_with("gen_switch")),
            "trace must include the premature flip: {:?}",
            v.trace
        );
    }

    #[test]
    fn ec_crash_budget_below_parity_never_violates() {
        // With n - k = 1 spare fragment, one peer crash is survivable by
        // construction; the model agrees.
        let config = EcModelConfig {
            crash_budget: 1,
            max_bursts: 2,
            ..Default::default()
        };
        assert!(check_ec(&config).violation.is_none());
    }
}
