//! The abstract protocol model and breadth-first state exploration.
//!
//! ## Abstraction
//!
//! Writes are abstract tokens `1..=max_writes`; a peer's region is the pair
//! `(data_applied, seq_applied)` — how many data messages and how many
//! sequence-number messages have landed, in order. The NIC's send-queue
//! ordering makes the real per-peer history exactly the alternation
//! `d1 s1 d2 s2 …`, so one "advance" step either applies the next data
//! message (when `data == seq`) or the next sequence message (when
//! `seq < data`). The seeded ordering bug swaps that rule.
//!
//! A write is acknowledgeable once **both** of its messages have landed on
//! a majority. The application issues writes one at a time (NCL's `record`
//! blocks), crashes at any point, and recovers by reading sequence numbers
//! from an adversarially chosen majority of the ap-map peers.
//!
//! With [`ModelConfig::coalesce`] the model follows the batched submission
//! path instead: issued records are staged until a nondeterministic *flush*
//! posts them as one burst — every record's data message but a single
//! header message stamped with the burst-final sequence number. The per-peer
//! history becomes `d…d h(b1) d…d h(b2) …` over the burst boundaries `bᵢ`,
//! and the checker explores every partition of the issue stream into bursts
//! alongside every crash point.

use std::collections::{HashMap, VecDeque};

/// Seeded bugs from §4.6 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BugMode {
    /// The protocol as designed; the checker must find no violation.
    None,
    /// A peer applies the sequence-number write before the data write.
    SeqBeforeData,
    /// Peer replacement publishes the new ap-map entry before the new peer
    /// is caught up (Figure 7iii).
    ApMapBeforeCatchup,
    /// Recovery returns data to the application without catching up a
    /// majority of peers first.
    NoCatchupOnRecovery,
}

/// Exploration budgets and the bug under test.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Maximum writes the application issues.
    pub max_writes: u8,
    /// Total peer + application crash events allowed along a trace.
    pub crash_budget: u8,
    /// Total peers (the first three form the initial ap-map; the rest are
    /// spares for replacement).
    pub peers: usize,
    /// Bug to seed.
    pub bug: BugMode,
    /// Hard cap on explored states (0 = unlimited).
    pub max_states: usize,
    /// Maximum writes in flight (issued but not acknowledged) at once.
    /// 1 models the paper's synchronous `record`; larger values model the
    /// pipelined `record_nowait` path, where later records' messages race
    /// the acknowledgement of earlier ones.
    pub window: u8,
    /// Model the coalesced-header submission path: issued records are
    /// *staged* until a nondeterministic flush posts them as one burst that
    /// carries every record's data message but a **single** header message,
    /// stamped with the burst-final sequence number. A crash mid-burst may
    /// lose the un-headered tail, but the acked prefix (covered by the last
    /// completed header) must survive every interleaving. `false` keeps the
    /// one-header-per-record stream.
    pub coalesce: bool,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            max_writes: 3,
            crash_budget: 3,
            peers: 4,
            bug: BugMode::None,
            max_states: 0,
            window: 1,
            coalesce: false,
        }
    }
}

/// Outcome of a [`check`] run.
#[derive(Debug, Clone)]
pub struct CheckResult {
    /// Distinct states visited.
    pub states_explored: usize,
    /// Transitions taken.
    pub transitions: usize,
    /// A violating event trace, if the invariant broke.
    pub violation: Option<Violation>,
}

/// A counterexample.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which invariant clause failed.
    pub reason: String,
    /// Event labels from the initial state to the violation.
    pub trace: Vec<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct PeerState {
    alive: bool,
    /// `(data_applied, seq_applied)`; `None` = no region (lost or never
    /// allocated).
    region: Option<(u8, u8)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum AppPhase {
    Running,
    Crashed,
    /// Quorum read done (`max_seq` chosen, data fetched) but peers not yet
    /// caught up; the data has not been returned to the application.
    NeedCatchup {
        max_seq: u8,
    },
}

/// Replacement of the ap-map slot `slot` by peer `cand`:
/// progress flags record which of the two steps (catch-up, ap-map commit)
/// have happened — the bug mode changes which order is allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Replacement {
    slot: u8,
    cand: u8,
    caught_up: bool,
    committed: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct State {
    issued: u8,
    acked: u8,
    /// Highest sequence number whose data any completed recovery handed to
    /// the application.
    externalized: u8,
    ap: [u8; 3],
    peers: Vec<PeerState>,
    pending: Option<Replacement>,
    app: AppPhase,
    crashes_left: u8,
    /// Coalesced mode only: highest sequence number flushed to the wire —
    /// records in `flushed+1..=issued` are staged in application memory and
    /// have no messages in flight. Always `0` when `coalesce` is off.
    flushed: u8,
    /// Coalesced mode only: burst boundaries, ascending. Exactly the
    /// sequence numbers that got a header message; `max(bursts) == flushed`
    /// whenever nonempty.
    bursts: Vec<u8>,
}

impl State {
    fn initial(config: &ModelConfig) -> Self {
        let mut peers = vec![
            PeerState {
                alive: true,
                region: None,
            };
            config.peers
        ];
        for p in peers.iter_mut().take(3) {
            p.region = Some((0, 0));
        }
        State {
            issued: 0,
            acked: 0,
            externalized: 0,
            ap: [0, 1, 2],
            peers,
            pending: None,
            app: AppPhase::Running,
            crashes_left: config.crash_budget,
            flushed: 0,
            bursts: Vec::new(),
        }
    }

    /// Peers (by index) currently in the ap-map.
    fn ap_peers(&self) -> [usize; 3] {
        [
            self.ap[0] as usize,
            self.ap[1] as usize,
            self.ap[2] as usize,
        ]
    }

    /// Count of ap-map peers on which write `i` is fully applied.
    fn applied_on(&self, i: u8) -> usize {
        self.ap_peers()
            .iter()
            .filter(|&&p| {
                let peer = &self.peers[p];
                peer.alive && peer.region.map(|(d, s)| d >= i && s >= i).unwrap_or(false)
            })
            .count()
    }
}

type Successor = (String, State, Option<String>);

fn successors(config: &ModelConfig, st: &State) -> Vec<Successor> {
    let mut out: Vec<Successor> = Vec::new();
    let bug = config.bug;

    // --- Message delivery: each ap-map peer advances one message. ---
    if st.app == AppPhase::Running {
        for (slot, &p) in st.ap.iter().enumerate() {
            let peer = st.peers[p as usize];
            if !peer.alive {
                continue;
            }
            let Some((d, s)) = peer.region else { continue };
            let (nd, ns) = if config.coalesce {
                // Coalesced submission: only flushed records are on the
                // wire, and the per-peer post order is
                // `d…d h(b1) d…d h(b2) …` with one header per burst,
                // stamped with the burst boundary.
                if bug == BugMode::SeqBeforeData {
                    // Seeded bug: the burst's header is posted before the
                    // burst's data.
                    let boundary = st.bursts.iter().copied().filter(|&b| b > s).min();
                    if s == d {
                        match boundary {
                            Some(b) => (d, b),
                            None => continue,
                        }
                    } else if d < s {
                        (d + 1, s)
                    } else {
                        continue;
                    }
                } else if st.bursts.contains(&d) && s < d {
                    (d, d) // The burst-final header jumps seq to the boundary.
                } else if d < st.flushed {
                    (d + 1, s) // Next data message of a flushed burst.
                } else {
                    continue; // Staged records have no messages in flight.
                }
            } else if bug == BugMode::SeqBeforeData {
                // Seeded bug: the sequence number lands first.
                if s == d && s < st.issued {
                    (d, s + 1)
                } else if d < s {
                    (d + 1, s)
                } else {
                    continue;
                }
            } else if d == s && d < st.issued {
                (d + 1, s)
            } else if s < d {
                (d, s + 1)
            } else {
                continue;
            };
            let mut next = st.clone();
            next.peers[p as usize].region = Some((nd, ns));
            out.push((format!("deliver(p{p},slot{slot})->({nd},{ns})"), next, None));
        }

        // --- Acknowledge the in-flight write. ---
        if st.issued > st.acked && st.applied_on(st.acked + 1) >= 2 {
            let mut next = st.clone();
            next.acked += 1;
            out.push((format!("ack(w{})", st.acked + 1), next, None));
        }

        // --- Issue the next write. Up to `window` records may be in
        // flight; depth 1 serialises them (the synchronous baseline). ---
        if st.issued - st.acked < config.window.max(1) && st.issued < config.max_writes {
            let mut next = st.clone();
            next.issued += 1;
            out.push((format!("issue(w{})", st.issued + 1), next, None));
        }

        // --- Flush the staged burst (coalesced mode). Nondeterministic, so
        // every partition of the issue stream into bursts is explored —
        // this subsumes window-full, `wait_durable`, and `fsync` flushes. ---
        if config.coalesce && st.flushed < st.issued {
            let mut next = st.clone();
            next.flushed = st.issued;
            next.bursts.push(st.issued);
            out.push((format!("flush(b{})", st.issued), next, None));
        }

        // --- Peer replacement (two steps whose order the bug flips). ---
        if st.pending.is_none() {
            // A slot needs replacement when its peer is dead or lost its
            // region; candidates are live peers outside the ap-map.
            for slot in 0..3usize {
                let p = st.ap[slot] as usize;
                let broken = !st.peers[p].alive || st.peers[p].region.is_none();
                if !broken {
                    continue;
                }
                for cand in 0..st.peers.len() {
                    if st.ap.contains(&(cand as u8)) {
                        continue;
                    }
                    if !st.peers[cand].alive {
                        continue;
                    }
                    let mut next = st.clone();
                    // Allocation: a fresh, empty region on the candidate.
                    next.peers[cand].region = Some((0, 0));
                    next.pending = Some(Replacement {
                        slot: slot as u8,
                        cand: cand as u8,
                        caught_up: false,
                        committed: false,
                    });
                    out.push((format!("replace_start(slot{slot},p{cand})"), next, None));
                }
            }
        }
        if let Some(rep) = st.pending {
            let cand = rep.cand as usize;
            let cand_alive = st.peers[cand].alive && st.peers[cand].region.is_some();
            // Step: catch the candidate up from the local buffer.
            if !rep.caught_up && cand_alive {
                let mut next = st.clone();
                // The implementation flushes the staged burst before the
                // catch-up write (catch-up stamps the header at the stage's
                // tip, so everything staged must be on the wire for the
                // surviving peers too).
                if config.coalesce && next.flushed < next.issued {
                    next.flushed = next.issued;
                    next.bursts.push(next.issued);
                }
                next.peers[cand].region = Some((st.issued, st.issued));
                next.pending = Some(Replacement {
                    caught_up: true,
                    ..rep
                });
                finish_replacement(&mut next);
                out.push((format!("replace_catchup(p{cand})"), next, None));
            }
            // Step: commit the new ap-map entry. Correct protocol only
            // commits after catch-up; the seeded bug commits first.
            let commit_allowed = rep.caught_up || bug == BugMode::ApMapBeforeCatchup;
            if !rep.committed && commit_allowed && cand_alive {
                let mut next = st.clone();
                next.ap[rep.slot as usize] = rep.cand;
                next.pending = Some(Replacement {
                    committed: true,
                    ..rep
                });
                finish_replacement(&mut next);
                out.push((
                    format!("replace_commit(slot{},p{cand})", rep.slot),
                    next,
                    None,
                ));
            }
        }
    }

    // --- Recovery: catch-up completes, data is handed to the app. ---
    if let AppPhase::NeedCatchup { max_seq } = st.app {
        let mut next = st.clone();
        for &p in next.ap.clone().iter() {
            let peer = &mut next.peers[p as usize];
            if peer.alive {
                // Lagging peers (and crash-restarted ones, via fresh
                // regions) are brought to the recovered image.
                peer.region = Some((max_seq, max_seq));
            }
        }
        next.app = AppPhase::Running;
        next.acked = max_seq;
        next.issued = max_seq;
        next.externalized = next.externalized.max(max_seq);
        if config.coalesce {
            // The recovered image defines a fresh stream: staged-but-lost
            // records are gone and every live ap-map peer sits at
            // `(max_seq, max_seq)`, so old burst boundaries are spent.
            next.flushed = max_seq;
            next.bursts.clear();
        }
        out.push(("recover_catchup_and_resume".to_string(), next, None));
    }

    // --- Failures. ---
    if st.crashes_left > 0 {
        for p in 0..st.peers.len() {
            if st.peers[p].alive {
                let mut next = st.clone();
                next.peers[p].alive = false;
                next.peers[p].region = None; // DRAM gone.
                next.crashes_left -= 1;
                out.push((format!("crash_peer(p{p})"), next, None));
            }
        }
        if st.app != AppPhase::Crashed {
            let mut next = st.clone();
            next.app = AppPhase::Crashed;
            next.pending = None; // In-flight replacement state is lost.
            next.crashes_left -= 1;
            out.push(("crash_app".to_string(), next, None));
        }
    }
    for p in 0..st.peers.len() {
        if !st.peers[p].alive {
            let mut next = st.clone();
            next.peers[p].alive = true; // Restart with empty memory.
            out.push((format!("restart_peer(p{p})"), next, None));
        }
    }

    // --- Recovery step 1: quorum sequence read (adversarial quorum). ---
    if st.app == AppPhase::Crashed {
        let responders: Vec<usize> = st
            .ap_peers()
            .iter()
            .copied()
            .filter(|&p| st.peers[p].alive && st.peers[p].region.is_some())
            .collect();
        // Every 2-subset of responders is a legal read quorum.
        for i in 0..responders.len() {
            for j in (i + 1)..responders.len() {
                let quorum = [responders[i], responders[j]];
                let (rp, max_seq) = quorum
                    .iter()
                    .map(|&p| (p, st.peers[p].region.expect("responder has region").1))
                    .max_by_key(|&(_, s)| s)
                    .expect("quorum nonempty");
                let label = format!(
                    "recover_read(q={{p{},p{}}},max={max_seq})",
                    quorum[0], quorum[1]
                );
                // Invariant checks happen at the moment the image is built.
                let (rd, rs) = st.peers[rp].region.expect("recovery peer region");
                debug_assert_eq!(rs, max_seq);
                let violation = if max_seq < st.acked {
                    Some(format!(
                        "acknowledged write lost: recovered seq {max_seq} < acked {}",
                        st.acked
                    ))
                } else if max_seq < st.externalized {
                    Some(format!(
                        "externalized state lost: recovered seq {max_seq} < externalized {}",
                        st.externalized
                    ))
                } else if rd < rs {
                    Some(format!(
                        "recovery peer p{rp} advertises seq {rs} but only holds {rd} data writes"
                    ))
                } else {
                    None
                };
                let mut next = st.clone();
                if config.bug == BugMode::NoCatchupOnRecovery {
                    // Seeded bug: hand the data to the application without
                    // catching up the lagging peers.
                    next.app = AppPhase::Running;
                    next.acked = max_seq;
                    next.issued = max_seq;
                    next.externalized = next.externalized.max(max_seq);
                    if config.coalesce {
                        next.flushed = max_seq;
                        next.bursts.clear();
                    }
                } else {
                    next.app = AppPhase::NeedCatchup { max_seq };
                }
                out.push((label, next, violation));
            }
        }
    }

    out
}

/// Clears the pending marker once both steps have happened.
fn finish_replacement(st: &mut State) {
    if let Some(rep) = st.pending {
        if rep.caught_up && rep.committed {
            st.pending = None;
        }
    }
}

/// Explores the model breadth-first and reports the first violation (with
/// its shortest trace) or the full state count.
pub fn check(config: &ModelConfig) -> CheckResult {
    let initial = State::initial(config);
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut parents: Vec<(usize, String)> = Vec::new();
    let mut states: Vec<State> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    index.insert(initial.clone(), 0);
    states.push(initial);
    parents.push((usize::MAX, String::new()));
    queue.push_back(0);
    let mut transitions = 0usize;

    while let Some(cur) = queue.pop_front() {
        if config.max_states > 0 && states.len() >= config.max_states {
            break;
        }
        let st = states[cur].clone();
        for (label, next, violation) in successors(config, &st) {
            transitions += 1;
            if let Some(reason) = violation {
                let mut trace = vec![label];
                let mut at = cur;
                while at != 0 {
                    let (parent, l) = &parents[at];
                    trace.push(l.clone());
                    at = *parent;
                }
                trace.reverse();
                return CheckResult {
                    states_explored: states.len(),
                    transitions,
                    violation: Some(Violation { reason, trace }),
                };
            }
            if !index.contains_key(&next) {
                let id = states.len();
                index.insert(next.clone(), id);
                states.push(next);
                parents.push((cur, label));
                queue.push_back(id);
            }
        }
    }

    CheckResult {
        states_explored: states.len(),
        transitions,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(bug: BugMode) -> ModelConfig {
        ModelConfig {
            max_writes: 2,
            crash_budget: 2,
            peers: 4,
            bug,
            max_states: 0,
            window: 1,
            coalesce: false,
        }
    }

    fn coalesced(bug: BugMode) -> ModelConfig {
        ModelConfig {
            window: 2,
            coalesce: true,
            ..small(bug)
        }
    }

    #[test]
    fn correct_protocol_has_no_violation_small() {
        let result = check(&small(BugMode::None));
        assert!(result.violation.is_none(), "{:?}", result.violation);
        assert!(result.states_explored > 1_000);
    }

    #[test]
    fn correct_protocol_has_no_violation_medium() {
        let config = ModelConfig {
            max_writes: 3,
            crash_budget: 3,
            peers: 4,
            bug: BugMode::None,
            max_states: 400_000,
            window: 1,
            coalesce: false,
        };
        let result = check(&config);
        assert!(result.violation.is_none(), "{:?}", result.violation);
        assert!(result.states_explored >= 100_000);
    }

    #[test]
    fn seq_before_data_bug_is_caught() {
        let result = check(&small(BugMode::SeqBeforeData));
        let v = result.violation.expect("bug must be found");
        assert!(v.reason.contains("data"), "{}", v.reason);
        assert!(!v.trace.is_empty());
    }

    #[test]
    fn apmap_before_catchup_bug_is_caught() {
        let result = check(&small(BugMode::ApMapBeforeCatchup));
        let v = result.violation.expect("bug must be found");
        assert!(
            v.reason.contains("acknowledged") || v.reason.contains("externalized"),
            "{}",
            v.reason
        );
    }

    #[test]
    fn no_catchup_bug_is_caught() {
        let result = check(&small(BugMode::NoCatchupOnRecovery));
        let v = result.violation.expect("bug must be found");
        assert!(
            v.reason.contains("externalized") || v.reason.contains("acknowledged"),
            "{}",
            v.reason
        );
    }

    #[test]
    fn violation_traces_start_from_initial_state() {
        let result = check(&small(BugMode::ApMapBeforeCatchup));
        let v = result.violation.unwrap();
        // The first events must be writes/delivery, and the last event is
        // always the recovery read that detected the loss.
        assert!(v.trace.last().unwrap().starts_with("recover_read"));
        assert!(v.trace.len() >= 4, "trace too short: {:?}", v.trace);
    }

    #[test]
    fn state_cap_bounds_exploration() {
        let config = ModelConfig {
            max_states: 5_000,
            ..small(BugMode::None)
        };
        let result = check(&config);
        // The cap stops the BFS shortly after the threshold.
        assert!(result.states_explored <= 6_000 + 64);
    }

    #[test]
    fn checker_is_deterministic() {
        let a = check(&small(BugMode::None));
        let b = check(&small(BugMode::None));
        assert_eq!(a.states_explored, b.states_explored);
        assert_eq!(a.transitions, b.transitions);
    }

    #[test]
    fn pipelined_window_correct_protocol_has_no_violation() {
        // With two records in flight the checker covers every interleaving
        // of a later record's messages with an earlier record's
        // acknowledgement — including peer crashes between a record's data
        // and sequence-number writes while the next record is already
        // posted. The prefix-acknowledgement protocol must survive all of
        // them.
        let mut config = small(BugMode::None);
        config.window = 2;
        let result = check(&config);
        assert!(result.violation.is_none(), "{:?}", result.violation);
    }

    #[test]
    fn pipelined_window_widens_exploration() {
        let baseline = check(&small(BugMode::None)).states_explored;
        let mut config = small(BugMode::None);
        config.window = 2;
        let pipelined = check(&config).states_explored;
        assert!(
            pipelined > baseline,
            "window 2 must strictly widen the state space ({pipelined} vs {baseline})"
        );
    }

    #[test]
    fn pipelined_window_still_catches_seeded_bugs() {
        for bug in [
            BugMode::SeqBeforeData,
            BugMode::ApMapBeforeCatchup,
            BugMode::NoCatchupOnRecovery,
        ] {
            let mut config = small(bug);
            config.window = 2;
            let result = check(&config);
            assert!(
                result.violation.is_some(),
                "{bug:?} must still be caught with pipelined records"
            );
        }
    }

    #[test]
    fn coalesced_correct_protocol_has_no_violation() {
        // Every partition of the issue stream into bursts, every crash
        // point between a burst's data and its single header, every
        // recovery quorum: the acked prefix must survive them all. A crash
        // mid-burst may lose the un-headered tail — those records were
        // never acknowledgeable, so that is not a violation.
        let result = check(&coalesced(BugMode::None));
        assert!(result.violation.is_none(), "{:?}", result.violation);
    }

    #[test]
    fn coalesced_mode_still_catches_seeded_bugs() {
        for bug in [
            BugMode::SeqBeforeData,
            BugMode::ApMapBeforeCatchup,
            BugMode::NoCatchupOnRecovery,
        ] {
            let result = check(&coalesced(bug));
            assert!(
                result.violation.is_some(),
                "{bug:?} must still be caught with coalesced headers"
            );
        }
    }

    #[test]
    fn coalesced_seq_before_data_advertises_unheld_data() {
        // The coalesced variant of the seeded ordering bug posts a burst's
        // header before the burst's data: a peer can advertise the burst
        // boundary while holding none of its data writes — exactly the
        // invariant clause 3 violation.
        let result = check(&coalesced(BugMode::SeqBeforeData));
        let v = result.violation.expect("bug must be found");
        assert!(v.reason.contains("data"), "{}", v.reason);
    }

    #[test]
    fn coalesced_mode_widens_exploration() {
        let mut pipelined = small(BugMode::None);
        pipelined.window = 2;
        let baseline = check(&pipelined).states_explored;
        let coalesced = check(&coalesced(BugMode::None)).states_explored;
        assert!(
            coalesced > baseline,
            "burst-boundary nondeterminism must widen the state space \
             ({coalesced} vs {baseline})"
        );
    }
}
