//! Explicit-state model checker for NCL's replication and recovery
//! protocols (§4.6 of the SplitFT paper).
//!
//! The paper reports model-checking the protocol over millions of states,
//! injecting peer and application failures at every point and asserting the
//! durability condition; it also describes three seeded bugs the checker
//! catches. This crate reproduces that methodology:
//!
//! * [`check`] exhaustively explores an abstract model of the protocol —
//!   writes replicated as ordered (data, sequence-number) message pairs to
//!   `2f + 1` peers, majority acknowledgement, peer crash/restart,
//!   application crash, quorum recovery with catch-up, and two-step peer
//!   replacement — from budgets on writes and failures.
//! * [`BugMode`] re-introduces the paper's seeded bugs: writing the
//!   sequence number before the data, updating the ap-map before catching
//!   up a replacement peer, and skipping the lagging-peer catch-up during
//!   recovery. [`check`] must (and does) return a counterexample trace for
//!   each.
//! * [`ModelConfig::coalesce`] switches the model to the batched submission
//!   path (one header message per flushed burst, stamped with the
//!   burst-final sequence number) and explores every burst partition; the
//!   acked prefix must survive crashes mid-burst, and every seeded bug must
//!   still be caught.
//!
//! The invariant asserted at every recovery:
//!
//! 1. the recovered sequence number covers every acknowledged write;
//! 2. it also covers everything externalized by earlier recoveries;
//! 3. the recovery peer actually holds the data for every sequence number
//!    it advertises (no sequence-number-without-data).

//!
//! [`check_ec`] applies the same methodology to the erasure-coded
//! durability path (PR 7): bursts striped as `k`-of-`n` fragments, all-`n`
//! header acknowledgement, the spill tier's snapshot/generation-switch
//! protocol, and a recovery rule that must reconstruct the acked prefix
//! from **every** `k`-subset of the surviving fragment holders. Its seeded
//! bugs ([`EcBugMode`]) are acking at `k` completions and flipping the
//! fragment generation before the spill snapshot is durable.
//!
//! [`check_revoke`] covers the multi-tenant memory plane (PR 9): a peer
//! daemon under memory pressure may unilaterally revoke a lent region, and
//! the owning application must replace the peer — catch-up before the
//! ap-map update — while the adversary keeps at most `f` peers down
//! (crashed or revoked-and-unreplaced). Its seeded bugs
//! ([`RevokeBugMode`]) are a stale daemon that keeps advertising a revoked
//! region's sequence number during recovery, and publishing the
//! replacement into the ap-map before catching it up.

pub mod ec;
pub mod model;
pub mod revoke;

pub use ec::{check_ec, EcBugMode, EcModelConfig};
pub use model::{check, BugMode, CheckResult, ModelConfig};
pub use revoke::{check_revoke, RevokeBugMode, RevokeModelConfig};
