//! Exhaustive model of voluntary memory revocation racing replication.
//!
//! Abstraction (mirroring `ncl::peer` revocation + `ncl::file` replace):
//!
//! * Writes are tokens replicated to `n = 2f + 1` peers; a peer's `applied`
//!   counter merges message apply and completion delivery (the writer
//!   learns of an apply immediately — the interleavings that matter here
//!   are on the revocation side, not the wire). The acked prefix is the
//!   high-water mark of the `(f + 1)`-th largest `applied`, so completions
//!   delivered before a later crash or revocation still count.
//! * A peer daemon under memory pressure may **revoke** a region (§4.5.2):
//!   the region's bytes are gone instantly and, in the correct protocol,
//!   the daemon stops answering recovery lookups for it. The owning
//!   application replaces the peer through the catch-up path: it writes
//!   its local image into a fresh region (`applied = issued`) **before**
//!   publishing the new membership — modelled as one atomic `replace`
//!   step, which is exactly the `catch-up-before-ap-map-update` invariant.
//! * The adversary schedules writes, applies, revocations, and peer
//!   crashes, but honours the durability contract: at most `f` peers are
//!   *down* (crashed, or revoked-and-not-yet-replaced) at any instant. A
//!   peer that has been published back into the ap-map no longer counts as
//!   down — which is what makes publishing early dangerous.
//!
//! The invariant checked at every reachable state: the application may
//! crash now, and recovery from **every** `(f + 1)`-subset of the
//! responding peers must (1) cover the acked prefix and (2) source the
//! data from a responder that actually holds the bytes it advertises (no
//! sequence-number-without-data). Both seeded [`RevokeBugMode`]s produce
//! shortest-trace counterexamples within the down budget.

use std::collections::{HashMap, VecDeque};

use crate::model::{CheckResult, Violation};

/// Seeded bugs for the revocation model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeBugMode {
    /// The correct protocol.
    None,
    /// The daemon revokes the region's memory but keeps answering recovery
    /// lookups with the pre-revocation sequence number. A recovery that
    /// picks the stale daemon as its max-advertiser sources data the peer
    /// no longer holds.
    ServeAfterRevoke,
    /// The application publishes the replacement peer into the ap-map
    /// before catching it up. The published peer stops counting against
    /// the down budget, so a second failure becomes admissible while the
    /// acked prefix exists on too few regions.
    ApMapBeforeCatchUp,
}

/// Bounds for the revocation model exploration.
#[derive(Debug, Clone, Copy)]
pub struct RevokeModelConfig {
    /// Failure budget; the model runs `n = 2f + 1` peers.
    pub f: usize,
    /// Writes the application may issue.
    pub max_writes: u8,
    /// Peer crashes the adversary may inject.
    pub crash_budget: u8,
    /// Revocations the adversary may inject.
    pub revoke_budget: u8,
    /// Seeded bug to inject.
    pub bug: RevokeBugMode,
    /// Safety valve on exploration size (0 = unbounded).
    pub max_states: usize,
}

impl Default for RevokeModelConfig {
    fn default() -> Self {
        RevokeModelConfig {
            f: 1,
            max_writes: 2,
            crash_budget: 1,
            revoke_budget: 2,
            bug: RevokeBugMode::None,
            max_states: 0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct RPeer {
    alive: bool,
    /// Holds a granted region (false after a crash or revocation).
    region: bool,
    /// Writes actually present in the region.
    applied: u8,
    /// Sequence number a stale daemon still advertises after revoking the
    /// bytes ([`RevokeBugMode::ServeAfterRevoke`] only).
    phantom: u8,
    /// Region revoked and the peer not yet replaced.
    revoked: bool,
    /// Published in the ap-map with catch-up still pending
    /// ([`RevokeBugMode::ApMapBeforeCatchUp`] only).
    needs_catchup: bool,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct RevokeState {
    issued: u8,
    /// High-water mark of the `(f + 1)`-th largest `applied`.
    acked: u8,
    peers: Vec<RPeer>,
    crashes_left: u8,
    revokes_left: u8,
}

impl RevokeState {
    fn initial(config: &RevokeModelConfig) -> Self {
        RevokeState {
            issued: 0,
            acked: 0,
            peers: vec![
                RPeer {
                    alive: true,
                    region: true,
                    applied: 0,
                    phantom: 0,
                    revoked: false,
                    needs_catchup: false,
                };
                2 * config.f + 1
            ],
            crashes_left: config.crash_budget,
            revokes_left: config.revoke_budget,
        }
    }

    /// Peers currently counting against the `f` failure budget: crashed,
    /// or revoked without a replacement. A peer published back into the
    /// ap-map no longer counts — correct only if it was caught up first.
    fn down(&self) -> usize {
        self.peers.iter().filter(|p| !p.alive || p.revoked).count()
    }

    /// Recomputes the acked high-water mark after an apply.
    fn refresh_acked(&mut self, f: usize) {
        let mut applied: Vec<u8> = self.peers.iter().map(|p| p.applied).collect();
        applied.sort_unstable_by(|a, b| b.cmp(a));
        self.acked = self.acked.max(applied[f]);
    }

    /// Does peer `p` answer a recovery lookup, and with which sequence
    /// number? Correctly, only live region holders respond; the seeded
    /// [`RevokeBugMode::ServeAfterRevoke`] daemon also answers for the
    /// region it revoked, advertising bytes it no longer has.
    fn responder(&self, p: usize, bug: RevokeBugMode) -> Option<(u8, u8)> {
        let peer = &self.peers[p];
        if !peer.alive {
            return None;
        }
        if peer.region {
            return Some((peer.applied, peer.applied));
        }
        if peer.revoked && bug == RevokeBugMode::ServeAfterRevoke {
            return Some((peer.phantom, 0));
        }
        None
    }
}

/// Runs the recovery rule for every `(f + 1)`-subset of the responders and
/// returns the first subset that loses acked data or sources an advertised
/// sequence number no responder holds.
fn check_recovery(config: &RevokeModelConfig, st: &RevokeState) -> Option<String> {
    if st.acked == 0 {
        return None;
    }
    let responders: Vec<(usize, u8, u8)> = (0..st.peers.len())
        .filter_map(|p| {
            st.responder(p, config.bug)
                .map(|(adv, held)| (p, adv, held))
        })
        .collect();
    let quorum = config.f + 1;
    if responders.len() < quorum {
        // Fewer than `f + 1` responders: recovery legitimately reports
        // `QuorumUnavailable` — outside the durability contract (and, with
        // the down budget enforced, unreachable without a stale daemon).
        return None;
    }
    let mut combos: Vec<Vec<usize>> = Vec::new();
    fn rec(len: usize, k: usize, start: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == k {
            out.push(cur.clone());
            return;
        }
        for i in start..len {
            cur.push(i);
            rec(len, k, i + 1, cur, out);
            cur.pop();
        }
    }
    let mut cur = Vec::new();
    rec(responders.len(), quorum, 0, &mut cur, &mut combos);

    for combo in &combos {
        let subset: Vec<&(usize, u8, u8)> = combo.iter().map(|&i| &responders[i]).collect();
        let recovered = subset
            .iter()
            .map(|(_, adv, _)| *adv)
            .max()
            .expect("nonempty");
        if recovered < st.acked {
            let ids: Vec<usize> = subset.iter().map(|(p, _, _)| *p).collect();
            return Some(format!(
                "acked write lost: responders {ids:?} advertise only w{recovered} \
                 < acked w{}",
                st.acked
            ));
        }
        // The recovery sources its image from a max-advertiser; every one
        // of them must actually hold the bytes behind the advertised seq.
        for (p, adv, held) in &subset {
            if *adv == recovered && *held < recovered {
                return Some(format!(
                    "seq without data: responder p{p} advertises w{recovered} but holds \
                     only w{held} (region revoked)"
                ));
            }
        }
    }
    None
}

type Successor = (String, RevokeState);

fn successors(config: &RevokeModelConfig, st: &RevokeState) -> Vec<Successor> {
    let n = st.peers.len();
    let mut out: Vec<Successor> = Vec::new();

    // --- The application issues the next write. ---
    if st.issued < config.max_writes {
        let mut next = st.clone();
        next.issued += 1;
        out.push((format!("issue(w{})", next.issued), next));
    }

    // --- Replication: a live region holder applies the next write (and
    // its completion reaches the writer). ---
    for p in 0..n {
        let peer = st.peers[p];
        if peer.alive && peer.region && !peer.needs_catchup && peer.applied < st.issued {
            let mut next = st.clone();
            next.peers[p].applied += 1;
            next.refresh_acked(config.f);
            out.push((format!("apply(p{p},w{})", peer.applied + 1), next));
        }
    }

    // --- Voluntary revocation under memory pressure. ---
    if st.revokes_left > 0 {
        for p in 0..n {
            let peer = st.peers[p];
            if !(peer.alive && peer.region && !peer.revoked) {
                continue;
            }
            let mut next = st.clone();
            next.revokes_left -= 1;
            let victim = &mut next.peers[p];
            victim.region = false;
            victim.revoked = true;
            victim.phantom = if config.bug == RevokeBugMode::ServeAfterRevoke {
                victim.applied
            } else {
                0
            };
            victim.applied = 0;
            victim.needs_catchup = false;
            if next.down() <= config.f {
                out.push((format!("revoke(p{p})"), next));
            }
        }
    }

    // --- Replacement of a revoked peer. ---
    for p in 0..n {
        let peer = st.peers[p];
        if !(peer.alive && peer.revoked) {
            continue;
        }
        match config.bug {
            RevokeBugMode::ApMapBeforeCatchUp => {
                // Seeded bug: publish first — the peer leaves the down
                // budget holding an empty region.
                let mut next = st.clone();
                let repl = &mut next.peers[p];
                repl.revoked = false;
                repl.region = true;
                repl.applied = 0;
                repl.phantom = 0;
                repl.needs_catchup = true;
                out.push((format!("publish_ap_map(p{p})"), next));
            }
            _ => {
                // Correct protocol: catch up from the application's local
                // image, then publish — one atomic step from the model's
                // point of view (`catch-up-before-ap-map-update`).
                let mut next = st.clone();
                let repl = &mut next.peers[p];
                repl.revoked = false;
                repl.region = true;
                repl.applied = st.issued;
                repl.phantom = 0;
                out.push((format!("replace(p{p},<=w{})", st.issued), next));
            }
        }
    }
    // The seeded bug's deferred catch-up.
    for p in 0..n {
        if st.peers[p].alive && st.peers[p].needs_catchup {
            let mut next = st.clone();
            let repl = &mut next.peers[p];
            repl.needs_catchup = false;
            repl.applied = st.issued;
            out.push((format!("catch_up(p{p},<=w{})", st.issued), next));
        }
    }

    // --- Failures: a crash loses the region for good. ---
    if st.crashes_left > 0 {
        for p in 0..n {
            if !st.peers[p].alive {
                continue;
            }
            let mut next = st.clone();
            next.crashes_left -= 1;
            let victim = &mut next.peers[p];
            victim.alive = false;
            victim.region = false;
            victim.applied = 0;
            victim.phantom = 0;
            victim.needs_catchup = false;
            if next.down() <= config.f {
                out.push((format!("crash_peer(p{p})"), next));
            }
        }
    }

    out
}

/// Explores the revocation model breadth-first, checking the
/// every-`(f + 1)`-subset recovery invariant at each reachable state (the
/// application may crash anywhere), and reports the first violation with
/// its shortest trace.
pub fn check_revoke(config: &RevokeModelConfig) -> CheckResult {
    assert!(config.f >= 1, "need f >= 1");
    let initial = RevokeState::initial(config);
    let mut index: HashMap<RevokeState, usize> = HashMap::new();
    let mut parents: Vec<(usize, String)> = Vec::new();
    let mut states: Vec<RevokeState> = Vec::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    index.insert(initial.clone(), 0);
    states.push(initial);
    parents.push((usize::MAX, String::new()));
    queue.push_back(0);
    let mut transitions = 0usize;

    while let Some(cur) = queue.pop_front() {
        if config.max_states > 0 && states.len() >= config.max_states {
            break;
        }
        let st = states[cur].clone();
        if let Some(reason) = check_recovery(config, &st) {
            let mut trace = vec!["crash_app_and_recover".to_string()];
            let mut at = cur;
            while at != 0 {
                let (parent, label) = &parents[at];
                trace.push(label.clone());
                at = *parent;
            }
            trace.reverse();
            return CheckResult {
                states_explored: states.len(),
                transitions,
                violation: Some(Violation { reason, trace }),
            };
        }
        for (label, next) in successors(config, &st) {
            transitions += 1;
            if !index.contains_key(&next) {
                let id = states.len();
                index.insert(next.clone(), id);
                states.push(next);
                parents.push((cur, label));
                queue.push_back(id);
            }
        }
    }

    CheckResult {
        states_explored: states.len(),
        transitions,
        violation: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn revoke_safe_protocol_holds_for_f1() {
        let result = check_revoke(&RevokeModelConfig::default());
        assert!(
            result.violation.is_none(),
            "unexpected violation: {:?}",
            result.violation
        );
        assert!(result.states_explored > 100);
    }

    #[test]
    fn revoke_storm_with_bigger_budgets_holds() {
        let config = RevokeModelConfig {
            max_writes: 3,
            revoke_budget: 3,
            ..Default::default()
        };
        let result = check_revoke(&config);
        assert!(
            result.violation.is_none(),
            "unexpected violation: {:?}",
            result.violation
        );
    }

    #[test]
    fn serve_after_revoke_bug_is_caught() {
        let config = RevokeModelConfig {
            bug: RevokeBugMode::ServeAfterRevoke,
            ..Default::default()
        };
        let result = check_revoke(&config);
        let v = result.violation.expect("serve-after-revoke must violate");
        assert!(
            v.reason.contains("seq without data"),
            "reason: {}",
            v.reason
        );
        // Shortest counterexample: one write acked by f+1 peers, revoke
        // one of the holders, recover from the stale daemon's quorum.
        assert!(v.trace.len() <= 6, "trace not shortest: {:?}", v.trace);
        assert!(
            v.trace.iter().any(|l| l.starts_with("revoke(")),
            "trace must include the revocation: {:?}",
            v.trace
        );
    }

    #[test]
    fn ap_map_before_catch_up_bug_is_caught() {
        let config = RevokeModelConfig {
            bug: RevokeBugMode::ApMapBeforeCatchUp,
            ..Default::default()
        };
        let result = check_revoke(&config);
        let v = result
            .violation
            .expect("publish-before-catch-up must violate");
        assert!(
            v.reason.contains("acked write lost"),
            "reason: {}",
            v.reason
        );
        assert!(
            v.trace.iter().any(|l| l.starts_with("publish_ap_map")),
            "trace must include the early publish: {:?}",
            v.trace
        );
        // The shortest schedule doesn't even need an explicit second
        // crash: once the empty replacement is published, the
        // every-(f+1)-subset recovery rule may pick a quorum that misses
        // the one surviving holder of the acked write.
        assert!(v.trace.len() <= 7, "trace not shortest: {:?}", v.trace);
    }

    #[test]
    fn revoke_budget_rule_blocks_double_failures() {
        // With the down budget enforced and the correct protocol, even an
        // adversary with both a crash and revocations in hand cannot take
        // two regions away at once.
        let config = RevokeModelConfig {
            crash_budget: 1,
            revoke_budget: 2,
            max_writes: 2,
            ..Default::default()
        };
        assert!(check_revoke(&config).violation.is_none());
    }
}
