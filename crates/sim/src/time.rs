//! Wall-clock helpers and calibrated delay primitives.
//!
//! The simulation charges latencies by actually waiting, so that throughput
//! and latency measured by the benchmark harnesses reflect the configured
//! models. Sub-millisecond delays are realised by busy-waiting (OS sleep has
//! far coarser granularity than the ~1.5 µs RDMA latencies we model); longer
//! delays fall back to `thread::sleep`.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Delays at or below this poll the clock in a tight loop — short enough
/// that the burned CPU is negligible, and exact even on a loaded host.
/// Longer delays use `thread::sleep`, whose wake-ups are scheduled fairly
/// even when other simulation threads are CPU-bound (a yield-based wait can
/// balloon by whole timeslices per yield under such co-runners).
const SPIN_THRESHOLD: Duration = Duration::from_micros(20);

/// Waits for `d`: a tight clock poll for RDMA-scale micro-delays, `sleep`
/// otherwise (see [`SPIN_THRESHOLD`]).
///
/// A zero duration returns immediately without touching the clock, so tests
/// configured with [`crate::LatencyModel::ZERO`] run at full speed.
pub fn delay(d: Duration) {
    if d.is_zero() {
        return;
    }
    let deadline = Instant::now() + d;
    if d > SPIN_THRESHOLD {
        loop {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep(deadline - now);
        }
    } else {
        // Micro-delays (RDMA-scale): a tight clock poll. Sleeping or
        // yielding here would cost (far) more than the modelled latency.
        while Instant::now() < deadline {
            std::hint::spin_loop();
        }
    }
}

/// Waits until `deadline` (a no-op if it has already passed), with the same
/// spin-vs-sleep policy as [`delay`]. Used by components that model a
/// pipelined resource — e.g. a NIC engine completing work requests at
/// absolute target instants so that the propagation delays of back-to-back
/// requests overlap instead of accumulating serially.
pub fn delay_until(deadline: Instant) {
    let now = Instant::now();
    if deadline > now {
        delay(deadline - now);
    }
}

/// Nanoseconds since the Unix epoch; used for coarse event timestamps in
/// traces and logs (monotonic measurement uses [`Stopwatch`]).
pub fn now_nanos() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// A small monotonic stopwatch for measuring elapsed intervals.
///
/// # Examples
///
/// ```
/// let sw = sim::Stopwatch::start();
/// let _elapsed = sw.elapsed();
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts a new stopwatch at the current instant.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in whole nanoseconds (saturating).
    pub fn elapsed_nanos(&self) -> u64 {
        self.elapsed().as_nanos() as u64
    }

    /// Elapsed time in microseconds as a float, convenient for reporting.
    pub fn elapsed_micros_f64(&self) -> f64 {
        self.elapsed().as_secs_f64() * 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_delay_returns_immediately() {
        let sw = Stopwatch::start();
        delay(Duration::ZERO);
        assert!(sw.elapsed() < Duration::from_millis(5));
    }

    #[test]
    fn short_delay_is_at_least_requested() {
        let want = Duration::from_micros(50);
        let sw = Stopwatch::start();
        delay(want);
        assert!(sw.elapsed() >= want);
    }

    #[test]
    fn long_delay_is_at_least_requested() {
        let want = Duration::from_millis(2);
        let sw = Stopwatch::start();
        delay(want);
        assert!(sw.elapsed() >= want);
        // Not absurdly longer either (sleep + spin tail should be tight).
        assert!(sw.elapsed() < want + Duration::from_millis(20));
    }

    #[test]
    fn stopwatch_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }

    #[test]
    fn now_nanos_nonzero() {
        assert!(now_nanos() > 0);
    }
}
