//! Typed request/response services over channels (simulated control plane).
//!
//! The paper's control-plane traffic — controller RPCs (ZooKeeper in the
//! original), peer memory-region setup, and DFS client↔OSD messages — is
//! modelled as in-process RPC: a service thread per server consuming typed
//! requests from a channel. Every call consults the [`Cluster`] for
//! reachability in both directions and charges the link's [`LatencyModel`],
//! so crashing or partitioning a node transparently fails its RPCs.
//!
//! Bandwidth-dependent costs are charged by the *caller* via
//! [`RpcClient::call_sized`]; plain [`RpcClient::call`] charges only the
//! base round-trip latency. This keeps the request/response types free of a
//! size-reporting trait.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};

use crate::cluster::{Cluster, NodeId};
use crate::error::SimError;
use crate::latency::LatencyModel;

/// Default per-call timeout; generous because delays are real waits.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(30);

type Envelope<Req, Resp> = (Req, Sender<Resp>);

/// Handle to a running RPC service thread.
///
/// Dropping the handle stops the service and joins its thread. While the
/// service's node is crashed, requests are drained and dropped without
/// executing the handler — mimicking a dead process whose clients observe
/// connection failures.
pub struct RpcServer<Req, Resp> {
    cluster: Cluster,
    node: NodeId,
    tx: Sender<Envelope<Req, Resp>>,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl<Req: Send + 'static, Resp: Send + 'static> RpcServer<Req, Resp> {
    /// Spawns a service thread on `node` running `handler` for each request.
    ///
    /// The handler owns its state (captured by the closure). Crash semantics:
    /// whenever `node` is down, incoming requests are dropped on the floor,
    /// and the component is expected to watch
    /// [`Cluster::generation`] if it must discard volatile state after a
    /// restart (see e.g. the NCL peer daemon).
    pub fn spawn<F>(cluster: Cluster, node: NodeId, name: &str, mut handler: F) -> Self
    where
        F: FnMut(Req) -> Resp + Send + 'static,
    {
        type Channel<Req, Resp> = (Sender<Envelope<Req, Resp>>, Receiver<Envelope<Req, Resp>>);
        let (tx, rx): Channel<Req, Resp> = unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let cluster2 = cluster.clone();
        let thread = std::thread::Builder::new()
            .name(format!("rpc-{name}"))
            .spawn(move || {
                while !stop2.load(Ordering::Relaxed) {
                    match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok((req, reply)) => {
                            if !cluster2.is_alive(node) {
                                // Dead process: drop the request; the reply
                                // sender is dropped, failing the caller.
                                continue;
                            }
                            let resp = handler(req);
                            let _ = reply.send(resp);
                        }
                        Err(RecvTimeoutError::Timeout) => continue,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            })
            .expect("spawn rpc thread");
        RpcServer {
            cluster,
            node,
            tx,
            stop,
            thread: Some(thread),
        }
    }

    /// The node this service runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Creates a client handle that charges `latency` per direction.
    pub fn client(&self, latency: LatencyModel) -> RpcClient<Req, Resp> {
        RpcClient {
            cluster: self.cluster.clone(),
            server_node: self.node,
            tx: self.tx.clone(),
            latency,
            timeout: DEFAULT_TIMEOUT,
        }
    }
}

impl<Req, Resp> Drop for RpcServer<Req, Resp> {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Client handle for calling an [`RpcServer`].
///
/// Cloneable; each clone shares the server connection but can be used from a
/// different calling node.
pub struct RpcClient<Req, Resp> {
    cluster: Cluster,
    server_node: NodeId,
    tx: Sender<Envelope<Req, Resp>>,
    latency: LatencyModel,
    timeout: Duration,
}

impl<Req, Resp> Clone for RpcClient<Req, Resp> {
    fn clone(&self) -> Self {
        RpcClient {
            cluster: self.cluster.clone(),
            server_node: self.server_node,
            tx: self.tx.clone(),
            latency: self.latency,
            timeout: self.timeout,
        }
    }
}

impl<Req: Send + 'static, Resp: Send + 'static> RpcClient<Req, Resp> {
    /// The node hosting the remote service.
    pub fn server_node(&self) -> NodeId {
        self.server_node
    }

    /// Overrides the per-call timeout (default 30 s).
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Issues a call from `from`, charging only the base link latency in each
    /// direction.
    pub fn call(&self, from: NodeId, req: Req) -> Result<Resp, SimError> {
        self.call_sized(from, req, 0, 0)
    }

    /// Issues a call charging bandwidth for `req_bytes` on the request leg
    /// and `resp_bytes` on the response leg.
    pub fn call_sized(
        &self,
        from: NodeId,
        req: Req,
        req_bytes: usize,
        resp_bytes: usize,
    ) -> Result<Resp, SimError> {
        // Control-plane fault point: advances any armed schedule (which may
        // cut this very link) before the reachability check observes it.
        let verdict =
            self.cluster
                .fault_point(crate::fault::FaultSite::Control, from, self.server_node);
        if let crate::fault::WireFault::Delay(d) = verdict {
            crate::time::delay(d);
        }
        self.cluster.can_reach(from, self.server_node)?;
        self.latency.charge(req_bytes);
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send((req, reply_tx))
            .map_err(|_| SimError::ServiceStopped)?;
        let resp = match reply_rx.recv_timeout(self.timeout) {
            Ok(r) => r,
            Err(RecvTimeoutError::Timeout) => return Err(SimError::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                // Server dropped the reply without answering: the remote
                // process is dead from the caller's point of view.
                return Err(SimError::NodeDown(self.server_node));
            }
        };
        // The response must also traverse the network.
        self.cluster.can_reach(self.server_node, from)?;
        self.latency.charge(resp_bytes);
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_service(c: &Cluster) -> (RpcServer<u32, u32>, NodeId) {
        let server_node = c.add_node("server");
        let srv = RpcServer::spawn(c.clone(), server_node, "echo", |x: u32| x + 1);
        (srv, server_node)
    }

    #[test]
    fn basic_call_roundtrip() {
        let c = Cluster::new();
        let client_node = c.add_node("client");
        let (srv, _) = echo_service(&c);
        let cli = srv.client(LatencyModel::ZERO);
        assert_eq!(cli.call(client_node, 41).unwrap(), 42);
    }

    #[test]
    fn call_fails_when_server_crashed() {
        let c = Cluster::new();
        let client_node = c.add_node("client");
        let (srv, server_node) = echo_service(&c);
        let cli = srv
            .client(LatencyModel::ZERO)
            .with_timeout(Duration::from_millis(200));
        c.crash(server_node);
        match cli.call(client_node, 1) {
            Err(SimError::NodeDown(n)) => assert_eq!(n, server_node),
            other => panic!("expected NodeDown, got {other:?}"),
        }
    }

    #[test]
    fn call_fails_when_partitioned() {
        let c = Cluster::new();
        let client_node = c.add_node("client");
        let (srv, server_node) = echo_service(&c);
        let cli = srv.client(LatencyModel::ZERO);
        c.partition(client_node, server_node);
        assert!(matches!(
            cli.call(client_node, 1),
            Err(SimError::Partitioned(_, _))
        ));
        c.heal(client_node, server_node);
        assert_eq!(cli.call(client_node, 1).unwrap(), 2);
    }

    #[test]
    fn server_recovers_after_restart() {
        let c = Cluster::new();
        let client_node = c.add_node("client");
        let (srv, server_node) = echo_service(&c);
        let cli = srv
            .client(LatencyModel::ZERO)
            .with_timeout(Duration::from_millis(200));
        c.crash(server_node);
        assert!(cli.call(client_node, 1).is_err());
        c.restart(server_node);
        assert_eq!(cli.call(client_node, 1).unwrap(), 2);
    }

    #[test]
    fn stateful_handler_accumulates() {
        let c = Cluster::new();
        let client_node = c.add_node("client");
        let server_node = c.add_node("server");
        let mut total = 0u32;
        let srv = RpcServer::spawn(c.clone(), server_node, "acc", move |x: u32| {
            total += x;
            total
        });
        let cli = srv.client(LatencyModel::ZERO);
        assert_eq!(cli.call(client_node, 5).unwrap(), 5);
        assert_eq!(cli.call(client_node, 7).unwrap(), 12);
    }

    #[test]
    fn concurrent_clients_all_answered() {
        let c = Cluster::new();
        let (srv, _) = echo_service(&c);
        let mut handles = Vec::new();
        for i in 0..8u32 {
            let node = c.add_node(format!("client-{i}"));
            let cli = srv.client(LatencyModel::ZERO);
            handles.push(std::thread::spawn(move || cli.call(node, i).unwrap()));
        }
        let mut results: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        results.sort_unstable();
        assert_eq!(results, (1..=8).collect::<Vec<_>>());
    }
}
