//! Error type shared by the simulation substrate and the layers above it.

use std::fmt;

use crate::cluster::NodeId;

/// Errors surfaced by the simulated environment.
///
/// The variants mirror the failure classes of the paper's fail-recover model
/// (§4.2): nodes can crash and later recover, and the network between any two
/// nodes can be partitioned. Higher layers map these onto their own error
/// domains (e.g. an RDMA work-request completing with a flush error).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The target node is crashed (not reachable and has lost volatile state).
    NodeDown(NodeId),
    /// The two nodes are partitioned from each other; state is retained but
    /// messages are dropped.
    Partitioned(NodeId, NodeId),
    /// The remote service exists but has shut down (channel closed).
    ServiceStopped,
    /// A call did not complete within the caller-supplied timeout.
    Timeout,
    /// Catch-all for invalid requests rejected by a simulated service.
    Rejected(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::NodeDown(n) => write!(f, "node {n} is down"),
            SimError::Partitioned(a, b) => write!(f, "nodes {a} and {b} are partitioned"),
            SimError::ServiceStopped => write!(f, "service stopped"),
            SimError::Timeout => write!(f, "request timed out"),
            SimError::Rejected(msg) => write!(f, "request rejected: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}
