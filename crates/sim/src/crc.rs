//! CRC-32C (Castagnoli) checksums.
//!
//! Used by the NCL region header to detect torn metadata, and by the ported
//! applications for record-level integrity (the paper notes POSIX
//! applications handle partial writes with application-level checksums,
//! §4.5.1). Table-driven software implementation; the polynomial matches
//! what RocksDB, Redis and iSCSI use.

/// CRC-32C polynomial (reflected form).
const POLY: u32 = 0x82F6_3B78;

/// Lazily built 256-entry lookup table.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32C of `data`.
pub fn crc32c(data: &[u8]) -> u32 {
    crc32c_extend(0, data)
}

/// Extends a running CRC-32C with more data (for chunked hashing).
pub fn crc32c_extend(crc: u32, data: &[u8]) -> u32 {
    let t = table();
    let mut crc = !crc;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 test vectors.
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(crc32c(&[]), 0);
    }

    #[test]
    fn extend_equals_oneshot() {
        let data = b"hello crc world";
        let oneshot = crc32c(data);
        let part = crc32c_extend(crc32c(&data[..5]), &data[5..]);
        assert_eq!(oneshot, part);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = b"some log record".to_vec();
        let orig = crc32c(&data);
        data[3] ^= 1;
        assert_ne!(orig, crc32c(&data));
    }
}
