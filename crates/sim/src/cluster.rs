//! Simulated cluster: node registry, liveness, crash generations, partitions.
//!
//! A [`Cluster`] is the root object of every simulation. Components (RDMA
//! devices, DFS OSDs, NCL peers, application servers) are bound to a
//! [`NodeId`] at construction and consult the cluster before delivering any
//! message. Failure injection therefore composes across all layers: crashing
//! a node makes its RDMA memory unreachable, its RPC services unresponsive,
//! and — because the crash bumps the node's *generation* — lets long-running
//! service threads detect that they must discard volatile state, exactly as
//! a restarted process would have lost it.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::error::SimError;
use crate::fault::{ClusterOp, FaultScheduler, FaultSite, WireFault};

/// Identifier of a simulated node (machine) within a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Point-in-time information about a node.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// The node's identifier.
    pub id: NodeId,
    /// Human-readable name given at registration.
    pub name: String,
    /// Whether the node is currently up.
    pub alive: bool,
    /// Crash generation: incremented every time the node crashes. A service
    /// thread that observes a generation different from the one it started
    /// with knows its "process" has been killed and must drop all state.
    pub generation: u64,
}

#[derive(Debug)]
struct NodeState {
    name: String,
    alive: bool,
    generation: u64,
}

#[derive(Debug, Default)]
struct ClusterState {
    nodes: Vec<NodeState>,
    /// Symmetric set of partitioned pairs, stored with `a < b`.
    partitions: Vec<(NodeId, NodeId)>,
    /// Pending memory-pressure signals: node → target used percentage.
    /// Posted by fault injection (or an operator), consumed once by the
    /// peer daemon living on the node via [`Cluster::take_pressure`].
    pressure: Vec<(NodeId, u8)>,
}

/// A registry of simulated nodes with injectable crashes and partitions.
///
/// Cloning a `Cluster` is cheap (it is an `Arc` handle); all clones observe
/// the same state.
///
/// # Examples
///
/// ```
/// let cluster = sim::Cluster::new();
/// let a = cluster.add_node("app-server");
/// let b = cluster.add_node("peer-1");
/// assert!(cluster.can_reach(a, b).is_ok());
/// cluster.crash(b);
/// assert!(cluster.can_reach(a, b).is_err());
/// cluster.restart(b);
/// assert!(cluster.can_reach(a, b).is_ok());
/// assert_eq!(cluster.generation(b), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cluster {
    state: Arc<RwLock<ClusterState>>,
    /// Optional armed fault schedule; kept outside `state` so consulting it
    /// never nests inside the node-table lock.
    faults: Arc<RwLock<Option<FaultScheduler>>>,
}

impl Cluster {
    /// Creates an empty cluster.
    pub fn new() -> Self {
        Cluster::default()
    }

    /// Registers a new node and returns its id. Nodes start alive.
    pub fn add_node(&self, name: impl Into<String>) -> NodeId {
        let mut st = self.state.write();
        let id = NodeId(st.nodes.len() as u32);
        st.nodes.push(NodeState {
            name: name.into(),
            alive: true,
            generation: 0,
        });
        id
    }

    /// Registers `count` nodes named `{prefix}-{i}`.
    pub fn add_nodes(&self, prefix: &str, count: usize) -> Vec<NodeId> {
        (0..count)
            .map(|i| self.add_node(format!("{prefix}-{i}")))
            .collect()
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.state.read().nodes.len()
    }

    /// True when no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn check(&self, id: NodeId) -> usize {
        let idx = id.0 as usize;
        assert!(idx < self.state.read().nodes.len(), "unknown node {id}");
        idx
    }

    /// Returns a snapshot of the node's state.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not returned by [`Cluster::add_node`].
    pub fn info(&self, id: NodeId) -> NodeInfo {
        let idx = self.check(id);
        let st = self.state.read();
        let n = &st.nodes[idx];
        NodeInfo {
            id,
            name: n.name.clone(),
            alive: n.alive,
            generation: n.generation,
        }
    }

    /// Whether the node is currently up.
    pub fn is_alive(&self, id: NodeId) -> bool {
        let idx = self.check(id);
        self.state.read().nodes[idx].alive
    }

    /// The node's crash generation (0 until the first crash).
    pub fn generation(&self, id: NodeId) -> u64 {
        let idx = self.check(id);
        self.state.read().nodes[idx].generation
    }

    /// Crashes a node: it loses volatile state (its generation is bumped) and
    /// becomes unreachable until [`Cluster::restart`]. Crashing an already
    /// crashed node is a no-op.
    pub fn crash(&self, id: NodeId) {
        let idx = self.check(id);
        let mut st = self.state.write();
        let n = &mut st.nodes[idx];
        if n.alive {
            n.alive = false;
            n.generation += 1;
        }
    }

    /// Restarts a crashed node. State lost at crash time stays lost — the
    /// generation keeps its post-crash value so services know to reinitialise.
    pub fn restart(&self, id: NodeId) {
        let idx = self.check(id);
        self.state.write().nodes[idx].alive = true;
    }

    fn pair(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a.0 <= b.0 {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Partitions two nodes from each other: messages between them are
    /// dropped, but neither loses state (the paper's "lagging peer" case).
    pub fn partition(&self, a: NodeId, b: NodeId) {
        self.check(a);
        self.check(b);
        let key = Self::pair(a, b);
        let mut st = self.state.write();
        if !st.partitions.contains(&key) {
            st.partitions.push(key);
        }
    }

    /// Heals a partition between two nodes (no-op if none exists).
    pub fn heal(&self, a: NodeId, b: NodeId) {
        let key = Self::pair(a, b);
        self.state.write().partitions.retain(|&p| p != key);
    }

    /// Checks whether `from` can currently exchange messages with `to`.
    ///
    /// Returns the specific failure so callers can distinguish a crashed
    /// remote (state lost) from a partition (state retained but unreachable).
    pub fn can_reach(&self, from: NodeId, to: NodeId) -> Result<(), SimError> {
        self.check(from);
        self.check(to);
        let st = self.state.read();
        if !st.nodes[from.0 as usize].alive {
            return Err(SimError::NodeDown(from));
        }
        if !st.nodes[to.0 as usize].alive {
            return Err(SimError::NodeDown(to));
        }
        if st.partitions.contains(&Self::pair(from, to)) {
            return Err(SimError::Partitioned(from, to));
        }
        Ok(())
    }

    /// Posts a memory-pressure signal for `id`: the peer daemon on that
    /// node must shrink its used memory to at most `pct` percent of its
    /// budget. Repeated posts before consumption keep the lowest target.
    pub fn set_pressure(&self, id: NodeId, pct: u8) {
        self.check(id);
        let mut st = self.state.write();
        match st.pressure.iter_mut().find(|(n, _)| *n == id) {
            Some(entry) => entry.1 = entry.1.min(pct),
            None => st.pressure.push((id, pct)),
        }
    }

    /// Consumes the pending pressure signal for `id`, if any.
    pub fn take_pressure(&self, id: NodeId) -> Option<u8> {
        self.check(id);
        let mut st = self.state.write();
        let pos = st.pressure.iter().position(|(n, _)| *n == id)?;
        Some(st.pressure.swap_remove(pos).1)
    }

    /// Arms a fault schedule. Every subsequent [`Cluster::fault_point`]
    /// consultation advances it; replaces any schedule already armed.
    pub fn install_faults(&self, scheduler: FaultScheduler) {
        *self.faults.write() = Some(scheduler);
    }

    /// Disarms the fault schedule (subsequent consultations are free).
    pub fn clear_faults(&self) {
        *self.faults.write() = None;
    }

    /// The armed fault schedule, if any.
    pub fn faults(&self) -> Option<FaultScheduler> {
        self.faults.read().clone()
    }

    /// Consults the armed fault schedule (if any) for the message
    /// `from → to` at decision point `site`: fires due events — applying
    /// their crashes/partitions to this cluster — and returns the wire
    /// verdict for the message itself. With no schedule armed this is a
    /// single uncontended read-lock acquisition.
    pub fn fault_point(&self, site: FaultSite, from: NodeId, to: NodeId) -> WireFault {
        let Some(scheduler) = self.faults.read().clone() else {
            return WireFault::None;
        };
        let (ops, verdict) = scheduler.advance(site, from, to);
        // The scheduler lock is released; cluster mutations are safe here.
        for op in ops {
            match op {
                ClusterOp::Crash(n) => self.crash(n),
                ClusterOp::Restart(n) => self.restart(n),
                ClusterOp::Partition(a, b) => self.partition(a, b),
                ClusterOp::Heal(a, b) => self.heal(a, b),
                ClusterOp::Pressure(n, pct) => self.set_pressure(n, pct),
            }
        }
        verdict
    }

    /// Lists all registered nodes.
    pub fn nodes(&self) -> Vec<NodeInfo> {
        let st = self.state.read();
        st.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeInfo {
                id: NodeId(i as u32),
                name: n.name.clone(),
                alive: n.alive,
                generation: n.generation,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_start_alive_with_generation_zero() {
        let c = Cluster::new();
        let n = c.add_node("a");
        assert!(c.is_alive(n));
        assert_eq!(c.generation(n), 0);
        assert_eq!(c.info(n).name, "a");
    }

    #[test]
    fn crash_bumps_generation_once() {
        let c = Cluster::new();
        let n = c.add_node("a");
        c.crash(n);
        c.crash(n); // Idempotent while down.
        assert!(!c.is_alive(n));
        assert_eq!(c.generation(n), 1);
        c.restart(n);
        assert_eq!(c.generation(n), 1);
        c.crash(n);
        assert_eq!(c.generation(n), 2);
    }

    #[test]
    fn reachability_respects_crashes_both_ways() {
        let c = Cluster::new();
        let a = c.add_node("a");
        let b = c.add_node("b");
        assert!(c.can_reach(a, b).is_ok());
        c.crash(b);
        assert_eq!(c.can_reach(a, b), Err(SimError::NodeDown(b)));
        assert_eq!(c.can_reach(b, a), Err(SimError::NodeDown(b)));
        c.restart(b);
        assert!(c.can_reach(a, b).is_ok());
    }

    #[test]
    fn partitions_are_symmetric_and_healable() {
        let c = Cluster::new();
        let a = c.add_node("a");
        let b = c.add_node("b");
        let x = c.add_node("x");
        c.partition(b, a);
        assert!(matches!(
            c.can_reach(a, b),
            Err(SimError::Partitioned(_, _))
        ));
        assert!(matches!(
            c.can_reach(b, a),
            Err(SimError::Partitioned(_, _))
        ));
        // Unrelated nodes unaffected.
        assert!(c.can_reach(a, x).is_ok());
        c.heal(a, b);
        assert!(c.can_reach(a, b).is_ok());
    }

    #[test]
    fn duplicate_partition_entries_are_collapsed() {
        let c = Cluster::new();
        let a = c.add_node("a");
        let b = c.add_node("b");
        c.partition(a, b);
        c.partition(b, a);
        c.heal(a, b);
        assert!(c.can_reach(a, b).is_ok());
    }

    #[test]
    fn add_nodes_names_sequentially() {
        let c = Cluster::new();
        let ids = c.add_nodes("peer", 3);
        assert_eq!(ids.len(), 3);
        assert_eq!(c.info(ids[2]).name, "peer-2");
        assert_eq!(c.nodes().len(), 3);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn unknown_node_panics() {
        let c = Cluster::new();
        c.is_alive(NodeId(3));
    }

    #[test]
    fn fault_point_applies_scheduled_crashes() {
        use crate::fault::{Binding, FaultAction, FaultPlan, FaultScheduler, Trigger};
        let c = Cluster::new();
        let peer = c.add_node("peer");
        let ctrl = c.add_node("ctrl");
        let app = c.add_node("app");
        let plan = FaultPlan::new(7).push(Trigger::Step(1), FaultAction::CrashPeer(0));
        let binding = Binding {
            peers: vec![peer],
            controller: ctrl,
            app,
        };
        c.install_faults(FaultScheduler::new(&plan, binding));
        assert_eq!(c.fault_point(FaultSite::Wire, app, peer), WireFault::None);
        assert!(!c.is_alive(peer), "scheduled crash must have been applied");
        c.clear_faults();
        assert!(c.faults().is_none());
        c.fault_point(FaultSite::Wire, app, peer); // Disarmed: free no-op.
    }
}
