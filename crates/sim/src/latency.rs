//! Latency models for network links and storage media.
//!
//! Every simulated device (RDMA NIC, DFS OSD, local SSD) is parameterised by
//! a [`LatencyModel`]: a fixed base cost plus a per-byte bandwidth term and
//! optional multiplicative jitter. The calibrated defaults in
//! [`LatencyModel::rdma_write`], [`LatencyModel::dfs_hop`], etc. were chosen
//! so the reproduction matches the *shape* of the paper's numbers (§5):
//! ~4.6 µs 128-B NCL writes, ~2 ms small synchronous CephFS writes, and a
//! three-orders-of-magnitude gap between 512-B and 64-MB DFS write
//! throughput (Figure 1d).

use std::time::Duration;

use crate::rng::Xoshiro256StarStar;
use crate::time::delay;

/// A base + per-byte latency model with optional jitter.
///
/// The cost of an operation touching `bytes` bytes is
/// `base + bytes * per_byte`, scaled by a jitter factor drawn uniformly from
/// `[1 - jitter, 1 + jitter]` when a PRNG is supplied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Fixed cost per operation.
    pub base: Duration,
    /// Cost per byte transferred in nanoseconds (i.e. inverse bandwidth).
    /// Stored as `f64` because fast links cost well under 1 ns per byte.
    pub per_byte_ns: f64,
    /// Relative jitter amplitude in `[0, 1)`; 0 disables jitter.
    pub jitter: f64,
}

impl LatencyModel {
    /// A model that charges nothing — used by unit tests so they run at full
    /// speed while exercising identical code paths.
    pub const ZERO: LatencyModel = LatencyModel {
        base: Duration::ZERO,
        per_byte_ns: 0.0,
        jitter: 0.0,
    };

    /// Creates a model from explicit parameters.
    pub const fn new(base: Duration, per_byte_ns: f64, jitter: f64) -> Self {
        LatencyModel {
            base,
            per_byte_ns,
            jitter,
        }
    }

    /// Convenience constructor from nanosecond counts.
    ///
    /// `gbps` is the link bandwidth in gigabits per second used to derive the
    /// per-byte term; pass 0.0 for an infinite-bandwidth link.
    pub fn from_nanos(base_ns: u64, gbps: f64, jitter: f64) -> Self {
        let per_byte_ns = if gbps > 0.0 {
            // ns per byte = 8 bits / (gbps bits/ns)
            8.0 / gbps
        } else {
            0.0
        };
        LatencyModel {
            base: Duration::from_nanos(base_ns),
            per_byte_ns,
            jitter,
        }
    }

    /// One-sided RDMA write/read over a 25 Gb/s RoCE fabric.
    ///
    /// Calibration: the paper reports a 4.6 µs NCL latency for a 128-B
    /// application write, which NCL turns into a data WR plus a sequence
    /// number WR replicated to three peers with a majority wait — roughly two
    /// NIC round trips on the critical path.
    pub fn rdma_write() -> Self {
        LatencyModel::from_nanos(1_500, 25.0, 0.05)
    }

    /// Control-plane RPC within the compute cluster (TCP-like).
    pub fn rpc() -> Self {
        LatencyModel::from_nanos(60_000, 10.0, 0.10)
    }

    /// RDMA memory-region registration (page pinning + NIC translation-table
    /// install). Table 3 of the paper attributes ~50 ms to allocating and
    /// registering a 60 MB region on a new peer; this model reproduces that
    /// (1 ms base + ~0.8 ns/byte).
    pub fn mr_register() -> Self {
        LatencyModel::from_nanos(1_000_000, 10.0, 0.10)
    }

    /// One network hop of the disaggregated file system (client→OSD or
    /// OSD→OSD replication) — kernel TCP stack, no kernel bypass.
    pub fn dfs_hop() -> Self {
        LatencyModel::from_nanos(150_000, 8.0, 0.10)
    }

    /// OSD commit cost: the time for a CephFS server to accept a write into
    /// its buffer cache / journal and acknowledge it (the paper configures
    /// CephFS to ack once data is replicated to the server buffer caches).
    pub fn dfs_commit() -> Self {
        LatencyModel::from_nanos(800_000, 4.0, 0.10)
    }

    /// Local SATA-SSD write (the `ext4` comparison point of Figure 11b).
    pub fn local_ssd_write() -> Self {
        LatencyModel::from_nanos(80_000, 4.0, 0.10)
    }

    /// Local SATA-SSD read.
    pub fn local_ssd_read() -> Self {
        LatencyModel::from_nanos(60_000, 4.0, 0.10)
    }

    /// In-memory buffered write on the application server (the "weak" mode's
    /// critical-path cost: a memcpy into the OS page cache). The paper
    /// measures 1.2 µs for a 128-B buffered write.
    pub fn page_cache_write() -> Self {
        LatencyModel::from_nanos(900, 120.0, 0.05)
    }

    /// Computes the duration charged for an operation on `bytes` bytes,
    /// without jitter.
    pub fn cost(&self, bytes: usize) -> Duration {
        self.base + Duration::from_nanos((self.per_byte_ns * bytes as f64) as u64)
    }

    /// Computes the duration with jitter drawn from `rng`.
    pub fn cost_jittered(&self, bytes: usize, rng: &mut Xoshiro256StarStar) -> Duration {
        let d = self.cost(bytes);
        if self.jitter <= 0.0 || d.is_zero() {
            return d;
        }
        let factor = 1.0 + self.jitter * (2.0 * rng.next_f64() - 1.0);
        d.mul_f64(factor.max(0.0))
    }

    /// Charges the cost of an operation by actually waiting (no jitter).
    pub fn charge(&self, bytes: usize) {
        delay(self.cost(bytes));
    }

    /// Charges the jittered cost of an operation by actually waiting.
    pub fn charge_jittered(&self, bytes: usize, rng: &mut Xoshiro256StarStar) {
        delay(self.cost_jittered(bytes, rng));
    }

    /// True when this model never waits (all parameters zero).
    pub fn is_zero(&self) -> bool {
        self.base.is_zero() && self.per_byte_ns == 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_charges_nothing() {
        assert!(LatencyModel::ZERO.is_zero());
        assert_eq!(LatencyModel::ZERO.cost(1 << 20), Duration::ZERO);
    }

    #[test]
    fn cost_scales_with_bytes() {
        let m = LatencyModel::from_nanos(1_000, 8.0, 0.0);
        assert!(m.cost(4096) > m.cost(128));
        assert_eq!(m.cost(0), Duration::from_nanos(1_000));
    }

    #[test]
    fn bandwidth_term_matches_link_speed() {
        // 25 Gb/s => 1 MiB should take ~335 µs of serialisation time.
        let m = LatencyModel::from_nanos(0, 25.0, 0.0);
        let d = m.cost(1 << 20);
        let us = d.as_secs_f64() * 1e6;
        assert!((300.0..380.0).contains(&us), "got {us} µs");
    }

    #[test]
    fn jitter_bounded() {
        let m = LatencyModel::from_nanos(1_000_000, 0.0, 0.2);
        let mut rng = Xoshiro256StarStar::new(1);
        for _ in 0..100 {
            let d = m.cost_jittered(0, &mut rng).as_secs_f64();
            assert!((0.0008..=0.0012001).contains(&d), "jittered {d}");
        }
    }

    #[test]
    fn rdma_small_write_is_microseconds() {
        let us = LatencyModel::rdma_write().cost(128).as_secs_f64() * 1e6;
        assert!((1.0..4.0).contains(&us), "got {us} µs");
    }

    #[test]
    fn dfs_sync_write_is_milliseconds() {
        // One hop + one commit on a small write is already ~0.75 ms; a full
        // replicated fsync (client→primary→replicas) lands near 2 ms.
        let hop = LatencyModel::dfs_hop().cost(512);
        let commit = LatencyModel::dfs_commit().cost(512);
        let total = 2 * (hop + commit);
        let ms = total.as_secs_f64() * 1e3;
        assert!((1.0..4.0).contains(&ms), "got {ms} ms");
    }
}
