//! Simulation substrate for the SplitFT reproduction.
//!
//! The SplitFT paper evaluates on a CloudLab cluster: an application server,
//! three log peers reachable over RDMA, and a three-node CephFS cluster. This
//! crate provides the in-process stand-in for that hardware:
//!
//! * [`Cluster`] — a registry of simulated nodes with liveness, crash
//!   generations, and pairwise network partitions. Components built on top
//!   (the RDMA NIC engine, the DFS OSDs, the NCL controller and peers) consult
//!   the cluster before delivering any message, so failure injection composes
//!   across every layer.
//! * [`LatencyModel`] — calibrated base + per-byte delays with optional
//!   jitter, realised by [`delay`] (busy-wait below a threshold so that
//!   microsecond-scale RDMA latencies are actually observable, `sleep`
//!   above it).
//! * [`rng`] — small deterministic PRNGs (SplitMix64, xoshiro256**) so that
//!   workloads and failure schedules are reproducible from a seed.
//! * [`fault`] — seeded fault plans ([`FaultPlan`]) armed as a
//!   [`FaultScheduler`] the wire model and control plane consult at decision
//!   points: crashes, partitions, delayed/dropped/duplicated completions,
//!   stalled doorbells and gray peers, all replayable from a `u64` seed.
//! * [`rpc`] — a typed request/response service abstraction over crossbeam
//!   channels used for *control-plane* traffic (controller RPCs, peer setup,
//!   DFS client/OSD messages). Data-plane RDMA lives in the `rdma` crate.
//! * [`stats`] — log-bucketed latency histograms and a windowed throughput
//!   sampler (used to regenerate Figure 12 of the paper).
//!
//! Everything here is deliberately free of global state: a test constructs a
//! `Cluster`, wires components to it, and drops it at the end.

pub mod cluster;
pub mod crc;
pub mod error;
pub mod fault;
pub mod latency;
pub mod rng;
pub mod rpc;
pub mod stats;
pub mod time;

pub use cluster::{Cluster, NodeId, NodeInfo};
pub use crc::{crc32c, crc32c_extend};
pub use error::SimError;
pub use fault::{
    Binding, ClusterOp, FaultAction, FaultEvent, FaultPlan, FaultScheduler, FaultSite, PlanParams,
    Trigger, WireFault,
};
pub use latency::LatencyModel;
pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use rpc::{RpcClient, RpcServer};
pub use stats::ThroughputSampler;
pub use time::{delay, delay_until, now_nanos, Stopwatch};
