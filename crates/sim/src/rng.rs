//! Deterministic pseudo-random number generators.
//!
//! Workload generation, jitter, and failure schedules must be reproducible
//! from a seed so that tests and benchmark runs are comparable. We implement
//! two tiny, well-known generators rather than depending on `rand`'s evolving
//! API: SplitMix64 (used for seeding and cheap one-off streams) and
//! xoshiro256** (the main workhorse).

/// SplitMix64: a fast 64-bit generator with excellent seeding behaviour.
///
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA '14). Primarily used here to expand a single `u64`
/// seed into the state of larger generators.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the general-purpose generator used throughout the simulator.
///
/// Reference: Blackman & Vigna — "Scrambled linear pseudorandom number
/// generators" (TOMS 2021).
#[derive(Debug, Clone)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed` with
    /// SplitMix64 (the construction recommended by the xoshiro authors).
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; nudge it if the seed expansion
        // somehow produced one.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Xoshiro256StarStar { s }
    }

    /// Returns the next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`. Uses Lemire's multiply-shift rejection
    /// method to avoid modulo bias.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound {
                return (m >> 64) as u64;
            }
            // Rejection zone: retry only for the tiny biased band.
            let t = bound.wrapping_neg() % bound;
            if lo >= t {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform value in the inclusive-exclusive range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256StarStar::new(1);
        let mut b = Xoshiro256StarStar::new(1);
        let mut c = Xoshiro256StarStar::new(2);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = Xoshiro256StarStar::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn gen_range_within_bounds() {
        let mut r = Xoshiro256StarStar::new(9);
        for _ in 0..1000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Xoshiro256StarStar::new(3);
        for _ in 0..1000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = Xoshiro256StarStar::new(5);
        for len in [0usize, 1, 7, 8, 9, 31] {
            let mut buf = vec![0u8; len];
            r.fill_bytes(&mut buf);
            // Non-trivially sized buffers should not remain all-zero (with
            // overwhelming probability for a correct implementation).
            if len >= 8 {
                assert!(buf.iter().any(|&b| b != 0));
            }
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256StarStar::new(11);
        let mut v: Vec<u32> = (0..64).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn uniformity_rough_check() {
        // Chi-squared-ish sanity: 10 buckets, 100k draws, each bucket within
        // 10% of the expectation.
        let mut r = Xoshiro256StarStar::new(13);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.next_below(10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }
}
