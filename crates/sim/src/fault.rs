//! Deterministic fault injection: seeded schedules of crashes, partitions
//! and wire misbehaviour, consulted by the RDMA model and the control plane
//! at their decision points.
//!
//! A [`FaultPlan`] is a pure description — a list of `(Trigger, FaultAction)`
//! pairs derived entirely from a `u64` seed (or built explicitly). Actions
//! name *roles* (peer index `k`, "the controller", "the app") rather than
//! node ids, so one plan can be replayed against any topology; a [`Binding`]
//! resolves roles to [`NodeId`]s when the plan is armed.
//!
//! A [`FaultScheduler`] is the armed plan: every consultation through
//! [`Cluster::fault_point`](crate::Cluster::fault_point) advances a step
//! counter, fires any due events (crashing nodes, cutting links, queueing
//! wire effects) and returns the [`WireFault`] verdict for the work request
//! at hand. Because the schedule is a pure function of the seed, printing
//! `FAULT_SEED=<seed>` on a test failure is enough to reproduce the exact
//! same injection sequence. (The *interleaving* of fault firing with
//! application threads still depends on the OS scheduler — which is why the
//! chaos assertions are safety properties, valid under every interleaving,
//! not exact-trace comparisons.)

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::cluster::NodeId;
use crate::rng::Xoshiro256StarStar;

/// Which decision point is consulting the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// An RDMA work request about to traverse the wire model.
    Wire,
    /// A doorbell ring (work-request submission) on the requester NIC.
    Doorbell,
    /// A control-plane RPC (controller, registry, DFS metadata).
    Control,
}

/// Verdict for one work request at a wire decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Proceed normally.
    None,
    /// Stall this work request (or doorbell) for the given extra time.
    Delay(Duration),
    /// Apply the work request but swallow its completion — the classic
    /// "write landed, ack lost" case the prefix-acknowledgement rule must
    /// tolerate.
    DropCompletion,
    /// Deliver the completion twice; absorption must be idempotent.
    DuplicateCompletion,
}

/// When a planned fault fires: at the Nth consultation overall, or once the
/// armed schedule is at least this old.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trigger {
    /// Fire at (or after) the given global consultation count.
    Step(u64),
    /// Fire once the scheduler has been armed for at least this long.
    Tick(Duration),
}

/// A role-addressed fault. Peer roles are indices into
/// [`Binding::peers`]; the controller/app roles are single nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Crash peer role `k` (volatile state lost, generation bumped).
    CrashPeer(usize),
    /// Restart peer role `k`.
    RestartPeer(usize),
    /// Cut the app ↔ controller link (peers stay reachable).
    PartitionController,
    /// Heal the app ↔ controller link.
    HealController,
    /// Gray peer: the next `wrs` work requests towards peer role `k` each
    /// take `per_wr_us` extra microseconds.
    SlowPeer {
        peer: usize,
        per_wr_us: u64,
        wrs: u32,
    },
    /// Delay the next single work request towards peer role `k`.
    DelayWr { peer: usize, by_us: u64 },
    /// Swallow the completion of the next work request towards peer `k`.
    DropWr { peer: usize },
    /// Duplicate the completion of the next work request towards peer `k`.
    DupWr { peer: usize },
    /// Stall the next doorbell ring towards peer role `k`.
    StallDoorbell { peer: usize, by_us: u64 },
    /// Put peer role `k` under memory pressure: the peer daemon must shrink
    /// its used memory to at most `pct` percent of its budget, voluntarily
    /// revoking its coldest regions to get there.
    MemPressure { peer: usize, pct: u8 },
}

impl fmt::Display for FaultAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultAction::CrashPeer(k) => write!(f, "crash-peer#{k}"),
            FaultAction::RestartPeer(k) => write!(f, "restart-peer#{k}"),
            FaultAction::PartitionController => write!(f, "partition-controller"),
            FaultAction::HealController => write!(f, "heal-controller"),
            FaultAction::SlowPeer {
                peer,
                per_wr_us,
                wrs,
            } => {
                write!(f, "slow-peer#{peer} +{per_wr_us}us x{wrs}")
            }
            FaultAction::DelayWr { peer, by_us } => write!(f, "delay-wr peer#{peer} +{by_us}us"),
            FaultAction::DropWr { peer } => write!(f, "drop-wr peer#{peer}"),
            FaultAction::DupWr { peer } => write!(f, "dup-wr peer#{peer}"),
            FaultAction::StallDoorbell { peer, by_us } => {
                write!(f, "stall-doorbell peer#{peer} +{by_us}us")
            }
            FaultAction::MemPressure { peer, pct } => {
                write!(f, "mem-pressure peer#{peer} to {pct}%")
            }
        }
    }
}

/// One scheduled fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// When it fires.
    pub trigger: Trigger,
    /// What happens.
    pub action: FaultAction,
}

/// Knobs for [`FaultPlan::random`].
#[derive(Debug, Clone)]
pub struct PlanParams {
    /// Number of peer roles actions may target.
    pub peers: usize,
    /// Number of fault events to schedule.
    pub events: usize,
    /// Step horizon: triggers are drawn from `[1, horizon_steps]`.
    pub horizon_steps: u64,
    /// Never leave more than this many peers crashed at once (the `f`
    /// budget of the deployment under test).
    pub max_concurrent_crashed: usize,
    /// Whether app ↔ controller partitions may be scheduled.
    pub allow_controller_partition: bool,
    /// A crash's matching restart fires this many steps later.
    pub restart_after_steps: u64,
    /// Whether memory-pressure events (peer revocation storms) may be
    /// scheduled. Defaults to `false` in [`PlanParams::light`]; when off,
    /// the random draw sequence is identical to plans generated before the
    /// knob existed, so historical seeds keep replaying byte-for-byte.
    pub pressure_events: bool,
}

impl PlanParams {
    /// A light schedule suited to functional chaos runs: at most `f` peers
    /// down concurrently, controller partitions allowed.
    pub fn light(peers: usize, f: usize) -> Self {
        PlanParams {
            peers,
            events: 8,
            horizon_steps: 600,
            max_concurrent_crashed: f,
            allow_controller_partition: true,
            restart_after_steps: 150,
            pressure_events: false,
        }
    }

    /// A multi-tenant schedule: [`PlanParams::light`] plus memory-pressure
    /// events, so shared peers revoke regions while the fleet is writing.
    pub fn multi_tenant(peers: usize, f: usize) -> Self {
        PlanParams {
            events: 12,
            pressure_events: true,
            ..Self::light(peers, f)
        }
    }
}

/// A seeded, replayable schedule of faults.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// The seed the schedule was derived from (0 for hand-built plans).
    pub seed: u64,
    /// The scheduled faults. Order is irrelevant; triggers decide firing.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan to extend with [`FaultPlan::push`].
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Appends one event (builder style).
    pub fn push(mut self, trigger: Trigger, action: FaultAction) -> Self {
        self.events.push(FaultEvent { trigger, action });
        self
    }

    /// Derives a schedule from `seed` alone. The same `(seed, params)` pair
    /// always yields the same plan. Crash events respect
    /// `params.max_concurrent_crashed` (every crash schedules a matching
    /// restart, and no crash is emitted while the budget is exhausted), so a
    /// plan from this constructor never exceeds the `f` failure budget.
    pub fn random(seed: u64, params: &PlanParams) -> Self {
        assert!(params.peers > 0, "need at least one peer role");
        let mut rng = Xoshiro256StarStar::new(seed ^ 0x5eed_fa17);
        let mut events = Vec::with_capacity(params.events);
        // Crash budget tracking: (peer role, restart step) for in-flight
        // crashes, swept as the step cursor advances.
        let mut down: Vec<(usize, u64)> = Vec::new();
        let mut partitioned = false;
        let mut step = 0u64;
        while events.len() < params.events {
            step += 1 + rng.next_below(params.horizon_steps / (params.events as u64 + 1) + 1);
            down.retain(|&(_, until)| until > step);
            let peer = rng.next_below(params.peers as u64) as usize;
            let kind = rng.next_below(8);
            let action = match kind {
                0 if down.len() < params.max_concurrent_crashed
                    && !down.iter().any(|&(p, _)| p == peer) =>
                {
                    let restart_at = step + params.restart_after_steps;
                    down.push((peer, restart_at));
                    events.push(FaultEvent {
                        trigger: Trigger::Step(step),
                        action: FaultAction::CrashPeer(peer),
                    });
                    events.push(FaultEvent {
                        trigger: Trigger::Step(restart_at),
                        action: FaultAction::RestartPeer(peer),
                    });
                    continue;
                }
                // At most one partition window per plan; the heal is
                // scheduled with it so the link never stays cut.
                1 if params.allow_controller_partition && !partitioned => {
                    partitioned = true;
                    events.push(FaultEvent {
                        trigger: Trigger::Step(step),
                        action: FaultAction::PartitionController,
                    });
                    events.push(FaultEvent {
                        trigger: Trigger::Step(step + params.restart_after_steps),
                        action: FaultAction::HealController,
                    });
                    continue;
                }
                2 => FaultAction::SlowPeer {
                    peer,
                    per_wr_us: 50 + rng.next_below(400),
                    wrs: 4 + rng.next_below(12) as u32,
                },
                3 => FaultAction::DropWr { peer },
                4 => FaultAction::DupWr { peer },
                5 => FaultAction::StallDoorbell {
                    peer,
                    by_us: 100 + rng.next_below(2_000),
                },
                // Guarded on the opt-in so that plans generated with the
                // knob off consume the same rng draws as before it existed.
                6 if params.pressure_events => FaultAction::MemPressure {
                    peer,
                    pct: (20 + rng.next_below(60)) as u8,
                },
                _ => FaultAction::DelayWr {
                    peer,
                    by_us: 50 + rng.next_below(1_000),
                },
            };
            events.push(FaultEvent {
                trigger: Trigger::Step(step),
                action,
            });
        }
        events.truncate(params.events);
        FaultPlan { seed, events }
    }

    /// Human-readable schedule dump, one event per line.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "fault plan seed={} ({} events)\n",
            self.seed,
            self.events.len()
        );
        for ev in &self.events {
            match ev.trigger {
                Trigger::Step(s) => out.push_str(&format!("  @step {s:>6}: {}\n", ev.action)),
                Trigger::Tick(d) => out.push_str(&format!("  @tick {d:>6?}: {}\n", ev.action)),
            }
        }
        out
    }
}

/// Resolves plan roles to concrete nodes.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Peer role `k` lives on `peers[k]`.
    pub peers: Vec<NodeId>,
    /// The controller node (partition target).
    pub controller: NodeId,
    /// The application node (partition source).
    pub app: NodeId,
}

/// A cluster mutation a fired fault requires. Returned by
/// [`FaultScheduler::advance`] and applied by the caller *after* the
/// scheduler lock is released, so fault evaluation never nests inside the
/// cluster state lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterOp {
    /// Crash this node.
    Crash(NodeId),
    /// Restart this node.
    Restart(NodeId),
    /// Cut the link between the pair.
    Partition(NodeId, NodeId),
    /// Restore the link between the pair.
    Heal(NodeId, NodeId),
    /// Put this node under memory pressure: any peer daemon living on it
    /// must shrink its used memory to at most the given percentage of its
    /// budget (consumed via [`Cluster::take_pressure`](crate::Cluster)).
    Pressure(NodeId, u8),
}

#[derive(Debug)]
struct SchedulerState {
    /// `(event, fired)` — events fire exactly once.
    events: Vec<(FaultEvent, bool)>,
    binding: Binding,
    /// Global consultation counter (drives `Trigger::Step`).
    step: u64,
    /// Arming time (drives `Trigger::Tick`).
    origin: Instant,
    /// Gray peers: per-destination `(extra per WR, WRs remaining)`.
    slow: HashMap<NodeId, (Duration, u32)>,
    /// One-shot per-destination wire effects, consumed FIFO.
    delay_once: HashMap<NodeId, Vec<Duration>>,
    drop_once: HashMap<NodeId, u32>,
    dup_once: HashMap<NodeId, u32>,
    stall_doorbell: HashMap<NodeId, Vec<Duration>>,
    /// Injection log for failure reports.
    log: Vec<String>,
    injected: u64,
}

/// An armed [`FaultPlan`]: shared, thread-safe, consulted via
/// [`Cluster::fault_point`](crate::Cluster::fault_point).
#[derive(Debug, Clone)]
pub struct FaultScheduler {
    inner: Arc<Mutex<SchedulerState>>,
}

impl FaultScheduler {
    /// Arms `plan` against a concrete topology.
    ///
    /// # Panics
    ///
    /// Panics if an action names a peer role outside `binding.peers`.
    pub fn new(plan: &FaultPlan, binding: Binding) -> Self {
        for ev in &plan.events {
            let role = match ev.action {
                FaultAction::CrashPeer(k)
                | FaultAction::RestartPeer(k)
                | FaultAction::SlowPeer { peer: k, .. }
                | FaultAction::DelayWr { peer: k, .. }
                | FaultAction::DropWr { peer: k }
                | FaultAction::DupWr { peer: k }
                | FaultAction::StallDoorbell { peer: k, .. }
                | FaultAction::MemPressure { peer: k, .. } => Some(k),
                FaultAction::PartitionController | FaultAction::HealController => None,
            };
            if let Some(k) = role {
                assert!(
                    k < binding.peers.len(),
                    "plan names peer role {k} but binding has {}",
                    binding.peers.len()
                );
            }
        }
        FaultScheduler {
            inner: Arc::new(Mutex::new(SchedulerState {
                events: plan.events.iter().map(|&e| (e, false)).collect(),
                binding,
                step: 0,
                origin: Instant::now(),
                slow: HashMap::new(),
                delay_once: HashMap::new(),
                drop_once: HashMap::new(),
                dup_once: HashMap::new(),
                stall_doorbell: HashMap::new(),
                log: Vec::new(),
                injected: 0,
            })),
        }
    }

    /// One consultation: advances the step counter, fires due events and
    /// returns (cluster mutations to apply, verdict for this work request).
    ///
    /// `from`/`to` identify the message under consideration; wire effects
    /// keyed to a peer apply to traffic *towards* that peer, from any source
    /// (replication and recovery QPs alike).
    pub fn advance(
        &self,
        site: FaultSite,
        _from: NodeId,
        to: NodeId,
    ) -> (Vec<ClusterOp>, WireFault) {
        let mut st = self.inner.lock();
        st.step += 1;
        let step = st.step;
        let elapsed = st.origin.elapsed();

        let mut ops = Vec::new();
        for i in 0..st.events.len() {
            let (ev, fired) = st.events[i];
            if fired {
                continue;
            }
            let due = match ev.trigger {
                Trigger::Step(s) => step >= s,
                Trigger::Tick(d) => elapsed >= d,
            };
            if !due {
                continue;
            }
            st.events[i].1 = true;
            st.injected += 1;
            let line = format!("step {step} {:?}: {}", elapsed, ev.action);
            st.log.push(line);
            let app = st.binding.app;
            let controller = st.binding.controller;
            match ev.action {
                FaultAction::CrashPeer(k) => ops.push(ClusterOp::Crash(st.binding.peers[k])),
                FaultAction::RestartPeer(k) => ops.push(ClusterOp::Restart(st.binding.peers[k])),
                FaultAction::PartitionController => ops.push(ClusterOp::Partition(app, controller)),
                FaultAction::HealController => ops.push(ClusterOp::Heal(app, controller)),
                FaultAction::SlowPeer {
                    peer,
                    per_wr_us,
                    wrs,
                } => {
                    let node = st.binding.peers[peer];
                    st.slow
                        .insert(node, (Duration::from_micros(per_wr_us), wrs));
                }
                FaultAction::DelayWr { peer, by_us } => {
                    let node = st.binding.peers[peer];
                    st.delay_once
                        .entry(node)
                        .or_default()
                        .push(Duration::from_micros(by_us));
                }
                FaultAction::DropWr { peer } => {
                    let node = st.binding.peers[peer];
                    *st.drop_once.entry(node).or_default() += 1;
                }
                FaultAction::DupWr { peer } => {
                    let node = st.binding.peers[peer];
                    *st.dup_once.entry(node).or_default() += 1;
                }
                FaultAction::StallDoorbell { peer, by_us } => {
                    let node = st.binding.peers[peer];
                    st.stall_doorbell
                        .entry(node)
                        .or_default()
                        .push(Duration::from_micros(by_us));
                }
                FaultAction::MemPressure { peer, pct } => {
                    ops.push(ClusterOp::Pressure(st.binding.peers[peer], pct));
                }
            }
        }

        // Resolve the verdict for this message.
        let verdict = match site {
            FaultSite::Wire => {
                if let Some(count) = st.drop_once.get_mut(&to) {
                    *count -= 1;
                    if *count == 0 {
                        st.drop_once.remove(&to);
                    }
                    WireFault::DropCompletion
                } else if let Some(count) = st.dup_once.get_mut(&to) {
                    *count -= 1;
                    if *count == 0 {
                        st.dup_once.remove(&to);
                    }
                    WireFault::DuplicateCompletion
                } else if let Some(queue) = st.delay_once.get_mut(&to) {
                    let d = queue.remove(0);
                    if queue.is_empty() {
                        st.delay_once.remove(&to);
                    }
                    WireFault::Delay(d)
                } else if let Some((per_wr, left)) = st.slow.get_mut(&to) {
                    let d = *per_wr;
                    *left -= 1;
                    if *left == 0 {
                        st.slow.remove(&to);
                    }
                    WireFault::Delay(d)
                } else {
                    WireFault::None
                }
            }
            FaultSite::Doorbell => {
                if let Some(queue) = st.stall_doorbell.get_mut(&to) {
                    let d = queue.remove(0);
                    if queue.is_empty() {
                        st.stall_doorbell.remove(&to);
                    }
                    WireFault::Delay(d)
                } else {
                    WireFault::None
                }
            }
            // Control RPCs are only perturbed through partitions, which the
            // reachability check realises; no per-message verdict.
            FaultSite::Control => WireFault::None,
        };
        if verdict != WireFault::None {
            st.injected += 1;
            let line = format!("step {step}: wire {verdict:?} -> {to}");
            st.log.push(line);
        }
        (ops, verdict)
    }

    /// Number of consultations so far.
    pub fn steps(&self) -> u64 {
        self.inner.lock().step
    }

    /// Number of faults actually injected (fired events + wire verdicts).
    pub fn injected(&self) -> u64 {
        self.inner.lock().injected
    }

    /// True once every scheduled event has fired.
    pub fn exhausted(&self) -> bool {
        self.inner.lock().events.iter().all(|&(_, fired)| fired)
    }

    /// The injection log, one line per fired fault / wire verdict.
    pub fn log(&self) -> Vec<String> {
        self.inner.lock().log.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binding(peers: usize) -> Binding {
        Binding {
            peers: (0..peers).map(|i| NodeId(i as u32)).collect(),
            controller: NodeId(peers as u32),
            app: NodeId(peers as u32 + 1),
        }
    }

    #[test]
    fn random_plans_are_reproducible_from_the_seed() {
        let params = PlanParams::light(5, 1);
        let a = FaultPlan::random(0xDEAD_BEEF, &params);
        let b = FaultPlan::random(0xDEAD_BEEF, &params);
        assert_eq!(a.events, b.events);
        let c = FaultPlan::random(0xDEAD_BEF0, &params);
        assert_ne!(a.events, c.events, "distinct seeds should differ");
    }

    #[test]
    fn random_plans_respect_the_crash_budget() {
        for seed in 0..200u64 {
            let params = PlanParams {
                peers: 6,
                events: 16,
                horizon_steps: 1_000,
                max_concurrent_crashed: 2,
                allow_controller_partition: true,
                restart_after_steps: 100,
                pressure_events: false,
            };
            let plan = FaultPlan::random(seed, &params);
            // Replay the step-ordered crash/restart sequence and check the
            // concurrent-down watermark.
            let mut timeline: Vec<(u64, bool, usize)> = plan
                .events
                .iter()
                .filter_map(|ev| match (ev.trigger, ev.action) {
                    (Trigger::Step(s), FaultAction::CrashPeer(k)) => Some((s, true, k)),
                    (Trigger::Step(s), FaultAction::RestartPeer(k)) => Some((s, false, k)),
                    _ => None,
                })
                .collect();
            timeline.sort_by_key(|&(s, is_crash, _)| (s, is_crash));
            let mut down = std::collections::HashSet::new();
            for (_, is_crash, k) in timeline {
                if is_crash {
                    down.insert(k);
                    assert!(down.len() <= 2, "seed {seed}: crash budget exceeded");
                } else {
                    down.remove(&k);
                }
            }
        }
    }

    #[test]
    fn scheduler_fires_step_events_once_and_returns_ops() {
        let plan = FaultPlan::new(0)
            .push(Trigger::Step(2), FaultAction::CrashPeer(0))
            .push(Trigger::Step(4), FaultAction::RestartPeer(0));
        let sched = FaultScheduler::new(&plan, binding(2));
        let (ops, _) = sched.advance(FaultSite::Wire, NodeId(3), NodeId(0));
        assert!(ops.is_empty(), "step 1: nothing due");
        let (ops, _) = sched.advance(FaultSite::Wire, NodeId(3), NodeId(0));
        assert_eq!(ops, vec![ClusterOp::Crash(NodeId(0))]);
        let (ops, _) = sched.advance(FaultSite::Wire, NodeId(3), NodeId(0));
        assert!(ops.is_empty(), "already fired");
        let (ops, _) = sched.advance(FaultSite::Wire, NodeId(3), NodeId(0));
        assert_eq!(ops, vec![ClusterOp::Restart(NodeId(0))]);
        assert!(sched.exhausted());
        assert_eq!(sched.injected(), 2);
    }

    #[test]
    fn wire_effects_are_destination_keyed_and_one_shot() {
        let plan = FaultPlan::new(0)
            .push(Trigger::Step(1), FaultAction::DropWr { peer: 1 })
            .push(Trigger::Step(1), FaultAction::DupWr { peer: 0 })
            .push(Trigger::Step(1), FaultAction::DelayWr { peer: 0, by_us: 5 });
        let sched = FaultScheduler::new(&plan, binding(2));
        // Towards peer 1: the drop fires exactly once.
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(9), NodeId(1));
        assert_eq!(v, WireFault::DropCompletion);
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(9), NodeId(1));
        assert_eq!(v, WireFault::None);
        // Towards peer 0: dup first, then the queued delay.
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(9), NodeId(0));
        assert_eq!(v, WireFault::DuplicateCompletion);
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(9), NodeId(0));
        assert_eq!(v, WireFault::Delay(Duration::from_micros(5)));
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(9), NodeId(0));
        assert_eq!(v, WireFault::None);
    }

    #[test]
    fn slow_peer_decays_after_its_wr_count() {
        let plan = FaultPlan::new(0).push(
            Trigger::Step(1),
            FaultAction::SlowPeer {
                peer: 0,
                per_wr_us: 7,
                wrs: 2,
            },
        );
        let sched = FaultScheduler::new(&plan, binding(1));
        for _ in 0..2 {
            let (_, v) = sched.advance(FaultSite::Wire, NodeId(2), NodeId(0));
            assert_eq!(v, WireFault::Delay(Duration::from_micros(7)));
        }
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(2), NodeId(0));
        assert_eq!(v, WireFault::None);
    }

    #[test]
    fn doorbell_stalls_only_affect_doorbell_sites() {
        let plan = FaultPlan::new(0).push(
            Trigger::Step(1),
            FaultAction::StallDoorbell { peer: 0, by_us: 11 },
        );
        let sched = FaultScheduler::new(&plan, binding(1));
        let (_, v) = sched.advance(FaultSite::Wire, NodeId(2), NodeId(0));
        assert_eq!(v, WireFault::None, "wire site unaffected");
        let (_, v) = sched.advance(FaultSite::Doorbell, NodeId(2), NodeId(0));
        assert_eq!(v, WireFault::Delay(Duration::from_micros(11)));
        let (_, v) = sched.advance(FaultSite::Doorbell, NodeId(2), NodeId(0));
        assert_eq!(v, WireFault::None);
    }

    #[test]
    fn controller_partition_binds_app_and_controller() {
        let plan = FaultPlan::new(0)
            .push(Trigger::Step(1), FaultAction::PartitionController)
            .push(Trigger::Step(2), FaultAction::HealController);
        let b = binding(1);
        let (app, ctrl) = (b.app, b.controller);
        let sched = FaultScheduler::new(&plan, b);
        let (ops, _) = sched.advance(FaultSite::Control, app, ctrl);
        assert_eq!(ops, vec![ClusterOp::Partition(app, ctrl)]);
        let (ops, _) = sched.advance(FaultSite::Control, app, ctrl);
        assert_eq!(ops, vec![ClusterOp::Heal(app, ctrl)]);
    }

    #[test]
    fn describe_lists_every_event() {
        let params = PlanParams::light(3, 1);
        let plan = FaultPlan::random(42, &params);
        let desc = plan.describe();
        assert!(desc.contains("seed=42"));
        assert_eq!(desc.lines().count(), plan.events.len() + 1);
    }
}
