//! Measurement utilities: latency histograms and throughput time series.
//!
//! The benchmark harnesses report the same quantities as the paper: average
//! and tail latency per operation (Figures 8, 9, 11), aggregate throughput
//! (Figures 9, 10), and a real-time throughput series sampled every 10 ms
//! (Figure 12). [`Histogram`] is a log-linear bucketed histogram in the
//! spirit of HdrHistogram; [`ThroughputSampler`] is a lock-free windowed op
//! counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sub-buckets per power of two; 32 gives ~3% relative value error.
const SUBBUCKETS: usize = 32;
const SUBBUCKET_BITS: u32 = 5;
/// Values below this are counted exactly (one bucket per nanosecond value).
const LINEAR_LIMIT: u64 = 64;
const NUM_BUCKETS: usize = LINEAR_LIMIT as usize + SUBBUCKETS * 64;

/// A log-linear histogram of `u64` samples (typically nanoseconds).
///
/// Recording is O(1); percentile queries walk the bucket array. Relative
/// error of reported values is bounded by `1/SUBBUCKETS` (~3%). Histograms
/// from different worker threads are combined with [`Histogram::merge`].
#[derive(Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value < LINEAR_LIMIT {
            return value as usize;
        }
        let msb = 63 - value.leading_zeros(); // >= 6 here
        let sub = ((value >> (msb - SUBBUCKET_BITS)) & (SUBBUCKETS as u64 - 1)) as usize;
        let octave = (msb - 6) as usize + 1; // Octave 1 starts at 64.
        let idx = LINEAR_LIMIT as usize + (octave - 1) * SUBBUCKETS + sub;
        idx.min(NUM_BUCKETS - 1)
    }

    fn bucket_value(index: usize) -> u64 {
        if index < LINEAR_LIMIT as usize {
            return index as u64;
        }
        let rel = index - LINEAR_LIMIT as usize;
        let octave = rel / SUBBUCKETS + 1;
        let sub = (rel % SUBBUCKETS) as u64;
        let base_msb = 6 + (octave as u32 - 1);
        let lo = (1u64 << base_msb) | (sub << (base_msb - SUBBUCKET_BITS));
        // Midpoint of the bucket's value range.
        lo + (1u64 << (base_msb - SUBBUCKET_BITS)) / 2
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records a [`Duration`] in nanoseconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (exact, not bucketed), 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at percentile `p` in `[0, 100]`, 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_value(i);
            }
        }
        self.max
    }

    /// Adds all samples of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Produces a compact summary snapshot.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean_ns: self.mean(),
            min_ns: self.min(),
            p50_ns: self.percentile(50.0),
            p99_ns: self.percentile(99.0),
            max_ns: self.max(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("mean_ns", &self.mean())
            .field("p50_ns", &self.percentile(50.0))
            .field("p99_ns", &self.percentile(99.0))
            .field("max_ns", &self.max)
            .finish()
    }
}

/// Point-in-time summary of a [`Histogram`] (all values in nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Exact arithmetic mean.
    pub mean_ns: f64,
    /// Minimum sample.
    pub min_ns: u64,
    /// Median (bucketed).
    pub p50_ns: u64,
    /// 99th percentile (bucketed).
    pub p99_ns: u64,
    /// Maximum sample.
    pub max_ns: u64,
}

impl Summary {
    /// Mean in microseconds, the unit most of the paper's tables use.
    pub fn mean_us(&self) -> f64 {
        self.mean_ns / 1e3
    }
}

/// Windowed operation counter for real-time throughput plots (Figure 12).
///
/// Worker threads call [`ThroughputSampler::record`] after each completed
/// operation; the harness later reads one ops/s value per window.
pub struct ThroughputSampler {
    start: Instant,
    window: Duration,
    windows: Vec<AtomicU64>,
}

impl ThroughputSampler {
    /// Creates a sampler covering `total` time in `window`-sized buckets.
    /// Events past `total` are folded into the last bucket.
    pub fn new(window: Duration, total: Duration) -> Self {
        let n = (total.as_nanos() / window.as_nanos().max(1)).max(1) as usize + 1;
        ThroughputSampler {
            start: Instant::now(),
            window,
            windows: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one completed operation at the current time.
    pub fn record(&self) {
        let idx = (self.start.elapsed().as_nanos() / self.window.as_nanos().max(1)) as usize;
        let idx = idx.min(self.windows.len() - 1);
        self.windows[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Elapsed time since the sampler was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns `(window_start_seconds, ops_per_second)` per window, trimmed
    /// to the elapsed portion of the run.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let elapsed = self.start.elapsed();
        let w = self.window.as_secs_f64();
        self.windows
            .iter()
            .enumerate()
            .take_while(|(i, _)| (*i as f64) * w <= elapsed.as_secs_f64())
            .map(|(i, c)| (i as f64 * w, c.load(Ordering::Relaxed) as f64 / w))
            .collect()
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.windows.iter().map(|w| w.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 5, 63] {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_are_ordered_and_close() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v * 100); // 100 ns .. 1 ms
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        // Within ~5% of the true values.
        assert!((450_000..550_000).contains(&p50), "p50={p50}");
        assert!((940_000..1_060_000).contains(&p99), "p99={p99}");
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.mean(), 200.0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn merge_with_empty_preserves_extremes() {
        let mut a = Histogram::new();
        a.record(42);
        let b = Histogram::new();
        a.merge(&b);
        assert_eq!(a.min(), 42);
        assert_eq!(a.max(), 42);
    }

    #[test]
    fn bucket_roundtrip_error_is_bounded() {
        for v in [64u64, 100, 1_000, 65_536, 1_000_000, u32::MAX as u64] {
            let idx = Histogram::bucket_index(v);
            let back = Histogram::bucket_value(idx);
            let err = (back as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.05, "v={v} back={back} err={err}");
        }
    }

    #[test]
    fn summary_fields_consistent() {
        let mut h = Histogram::new();
        for v in [100u64, 200, 300] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 3);
        assert_eq!(s.mean_ns, 200.0);
        assert_eq!(s.max_ns, 300);
        assert!((s.mean_us() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn throughput_sampler_counts_all_events() {
        let s = ThroughputSampler::new(Duration::from_millis(10), Duration::from_secs(1));
        for _ in 0..100 {
            s.record();
        }
        assert_eq!(s.total(), 100);
        let series = s.series();
        assert!(!series.is_empty());
        let sum: f64 = series.iter().map(|(_, ops)| ops * 0.01).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_sampler_overflow_goes_to_last_window() {
        let s = ThroughputSampler::new(Duration::from_millis(1), Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(10));
        s.record(); // Past the configured total; must not panic.
        assert_eq!(s.total(), 1);
    }
}
