//! Measurement utilities: latency histograms and throughput time series.
//!
//! The benchmark harnesses report the same quantities as the paper: average
//! and tail latency per operation (Figures 8, 9, 11), aggregate throughput
//! (Figures 9, 10), and a real-time throughput series sampled every 10 ms
//! (Figure 12). The log-linear histogram lives in the `telemetry` crate
//! (use `telemetry::{Histogram, Summary}` directly); this module keeps only
//! [`ThroughputSampler`], a lock-free windowed op counter.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Windowed operation counter for real-time throughput plots (Figure 12).
///
/// Worker threads call [`ThroughputSampler::record`] after each completed
/// operation; the harness later reads one ops/s value per window.
pub struct ThroughputSampler {
    start: Instant,
    window: Duration,
    windows: Vec<AtomicU64>,
}

impl ThroughputSampler {
    /// Creates a sampler covering `total` time in `window`-sized buckets.
    /// Events past `total` are folded into the last bucket.
    pub fn new(window: Duration, total: Duration) -> Self {
        let n = (total.as_nanos() / window.as_nanos().max(1)).max(1) as usize + 1;
        ThroughputSampler {
            start: Instant::now(),
            window,
            windows: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one completed operation at the current time.
    pub fn record(&self) {
        let idx = (self.start.elapsed().as_nanos() / self.window.as_nanos().max(1)) as usize;
        let idx = idx.min(self.windows.len() - 1);
        self.windows[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Elapsed time since the sampler was created.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Returns `(window_start_seconds, ops_per_second)` per window, trimmed
    /// to the elapsed portion of the run.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let elapsed = self.start.elapsed();
        let w = self.window.as_secs_f64();
        self.windows
            .iter()
            .enumerate()
            .take_while(|(i, _)| (*i as f64) * w <= elapsed.as_secs_f64())
            .map(|(i, c)| (i as f64 * w, c.load(Ordering::Relaxed) as f64 / w))
            .collect()
    }

    /// Total operations recorded.
    pub fn total(&self) -> u64 {
        self.windows.iter().map(|w| w.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_sampler_counts_all_events() {
        let s = ThroughputSampler::new(Duration::from_millis(10), Duration::from_secs(1));
        for _ in 0..100 {
            s.record();
        }
        assert_eq!(s.total(), 100);
        let series = s.series();
        assert!(!series.is_empty());
        let sum: f64 = series.iter().map(|(_, ops)| ops * 0.01).sum();
        assert!((sum - 100.0).abs() < 1e-6);
    }

    #[test]
    fn throughput_sampler_overflow_goes_to_last_window() {
        let s = ThroughputSampler::new(Duration::from_millis(1), Duration::from_millis(2));
        std::thread::sleep(Duration::from_millis(10));
        s.record(); // Past the configured total; must not panic.
        assert_eq!(s.total(), 1);
    }
}
